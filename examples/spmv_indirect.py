"""Indirect streams: sparse matrix-vector multiply (MachSuite spmv-crs).

Demonstrates the indirect-access half of the ISA: column indices stream
into an *indirect port*, an ``SD_IndPort_Port`` gather fetches the matching
vector elements (the AGU coalescing up to four same-line addresses per
request), and a single multiply-accumulate datapath reduces each row.

Run:  python examples/spmv_indirect.py
"""

from repro.workloads.characterization import characterize
from repro.workloads.common import run_and_verify
from repro.workloads.machsuite import build_spmv_crs


def main() -> None:
    built = build_spmv_crs(n=48)
    row = characterize(built)
    print(f"workload: {row.name}")
    print(f"stream patterns used: {', '.join(row.patterns)}")
    print(f"datapath: {row.datapath}  (Table 4's spmv-crs row)\n")

    result = run_and_verify(built)
    nnz = built.meta["nnz"]
    print(f"verified {built.meta['n']} rows ({nnz} non-zeros) "
          f"in {result.cycles} cycles")
    print(f"  {result.stats.instances_fired} multiply-accumulate instances")
    print(f"  memory requests: {result.memory.stats.requests} "
          f"({result.memory.stats.hits} L2 hits, "
          f"{result.memory.stats.misses} misses)")
    gather_efficiency = nnz / result.memory.stats.reads
    print(f"  ~{gather_efficiency:.1f} elements per read request "
          f"(indirect-AGU coalescing at work)")


if __name__ == "__main__":
    main()
