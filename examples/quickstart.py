"""Quickstart: the paper's Figure 4 dot-product on Softbrain.

Builds the dataflow graph from Figure 3, compiles it onto the
DNN-provisioned fabric, streams two arrays of 3-vectors through it, and
prints the command-lifetime timeline in the style of Figure 4(b).

Run:  python examples/quickstart.py
"""

from repro.cgra import dnn_provisioned
from repro.core.compiler import schedule
from repro.core.dfg import parse_dfg
from repro.core.isa import StreamProgram
from repro.sim import MemorySystem, render_timeline, run_program
from repro.workloads.common import read_words, write_words

# Figure 3's dataflow graph: r[i] = a[i].x*b[i].x + a[i].y*b[i].y + a[i].z*b[i].z
# (vectors padded to 4 words so instances align with 32-byte accesses).
DOT_PRODUCT = """
; dot product of 3-vectors (x, y, z, pad)
input A 4
input B 4
m0 = mul A.0 B.0
m1 = mul A.1 B.1
m2 = mul A.2 B.2
s0 = add m0 m1
s1 = add s0 m2
output C s1
"""


def main() -> None:
    n = 16
    dfg = parse_dfg(DOT_PRODUCT, "dotprod")
    fabric = dnn_provisioned()
    config = schedule(dfg, fabric)
    print(f"compiled: {config.summary()}\n")

    # Lay out the input vectors in memory.
    memory = MemorySystem()
    a = [(i + 1, i + 2, i + 3, 0) for i in range(n)]
    b = [(2, 3, 4, 0)] * n
    a_addr, b_addr, r_addr = 0x1000, 0x8000, 0x10000
    write_words(memory, a_addr, [v for vec in a for v in vec])
    write_words(memory, b_addr, [v for vec in b for v in vec])

    # The stream-dataflow program of Figure 4(a):
    #   Load a[0:n] -> Port_A;  Load b[0:n] -> Port_B
    #   Store Port_C -> r[0:n];  Barrier_All
    program = StreamProgram("dotprod", config)
    program.mem_port(a_addr, 32, 32, n, "A")
    program.mem_port(b_addr, 32, 32, n, "B")
    program.port_mem("C", 8, 8, n, r_addr)
    program.barrier_all()

    result = run_program(program, fabric=fabric, memory=memory)

    got = read_words(memory, r_addr, n)
    expected = [2 * v[0] + 3 * v[1] + 4 * v[2] for v in a]
    assert got == expected, (got, expected)
    print(f"results OK: r = {got}\n")
    print(
        f"{result.cycles} cycles for {result.stats.instances_fired} "
        f"computation instances "
        f"({result.stats.ops_executed} CGRA ops, "
        f"{result.stats.ops_per_cycle:.2f} ops/cycle)\n"
    )
    print("command lifetimes (Figure 4(b) style):")
    print(render_timeline(result.timeline))


if __name__ == "__main__":
    main()
