"""Multi-unit scaling: one layer across 1, 2, 4 and 8 Softbrain tiles.

Simulates the paper's scaled-out configuration (Section 7.1 uses 8 units
against DianNao) with *real* memory contention: every unit shares one
memory interface that accepts a single 64-byte request per cycle, so the
speedup curve bends exactly where the workload stops being compute-bound.

Run:  python examples/multi_unit_scaling.py
"""

from repro.cgra import dnn_provisioned
from repro.sim import MemorySystem, run_multi_unit
from repro.workloads.dnn import build_conv
from repro.workloads.dnn.layers import ConvLayer


def main() -> None:
    layer = ConvLayer("scaling", out_w=16, out_h=16, n_in=4, k=3, n_out=8)
    print(f"layer: conv {layer.out_w}x{layer.out_h}x{layer.n_out}, "
          f"{layer.k}x{layer.k} kernels over {layer.n_in} input maps "
          f"({layer.mac_ops} MACs, {layer.unique_bytes} unique bytes)\n")
    print(f"{'units':>6} {'device cycles':>14} {'speedup':>9} {'efficiency':>11}")

    baseline = None
    for units in (1, 2, 4, 8):
        builts = [
            build_conv(layer, unit_id=u, num_units=units)
            for u in range(units)
        ]
        memory = MemorySystem()
        memory.store = builts[0].memory.store  # same seed => same image
        result = run_multi_unit(
            [b.program for b in builts], dnn_provisioned, memory=memory
        )
        for built in builts:
            built.memory = memory
            built.verify(memory)
        baseline = baseline or result.cycles
        speedup = baseline / result.cycles
        print(f"{units:>6} {result.cycles:>14} {speedup:>8.2f}x "
              f"{speedup / units:>10.0%}")

    print(
        "\nConvolution is compute-bound, so units scale well until the"
        "\nshared memory interface (one 64-byte request per cycle, all"
        "\nunits contending) starts to bite — the regime where the paper"
        "\ncompares 8 Softbrain units against DianNao."
    )


if __name__ == "__main__":
    main()
