"""The paper's Figure 6: a neural-network classifier layer, end to end.

Walks through the same transformation the paper illustrates: input neurons
staged in the scratchpad, synapses streamed from memory, a packed 16-bit
multiply/adder-tree/accumulator/sigmoid datapath, accumulator reset driven
by the ``Port_R`` constant stream, and ``SD_Clean`` discarding all but the
final accumulator output per neuron.

Run:  python examples/neural_classifier.py
"""

from repro.sim import render_timeline
from repro.workloads.common import run_and_verify
from repro.workloads.dnn import build_classifier
from repro.workloads.dnn.layers import ClassifierLayer


def main() -> None:
    # Ni=784 inputs (e.g. 28x28 pixels), Nn=10 output classes — the sizes
    # the paper's Figure 6 uses.
    layer = ClassifierLayer("figure6", ni=784, nn=10)
    built = build_classifier(layer)

    config = next(iter(built.program.config_images.values()))
    print(f"DFG: {config.dfg.name} with {config.dfg.num_instructions} "
          f"instructions, ops = {config.dfg.op_histogram()}")
    print(f"mapped: {config.summary()}")
    print(f"program: {built.program.num_commands} stream commands, "
          f"{built.program.control_instructions} control-core instructions")
    print(f"  (vs ~{2 * layer.ni * layer.nn} instructions a scalar core "
          f"would execute — the Figure 6 reduction)\n")

    result = run_and_verify(built)

    print(f"verified {layer.nn} output neurons in {result.cycles} cycles")
    print(f"  {result.stats.instances_fired} instances x 16 MACs = "
          f"{16 * result.stats.instances_fired} MACs")
    print(f"  memory traffic: {result.memory.stats.bytes_read} B read, "
          f"{result.memory.stats.bytes_written} B written")
    print(f"  scratchpad: {result.scratchpad.stats.bytes_read} B re-read "
          f"(input-neuron reuse)\n")

    print("first commands' lifetimes (Figure 6 bottom):")
    text = render_timeline(result.timeline)
    print("\n".join(text.splitlines()[:16]))


if __name__ == "__main__":
    main()
