"""Execution-model timelines: regenerate Figures 4(b) and 6 (bottom).

Shows how the stream dispatcher exposes concurrency: commands are enqueued
by the control core, dispatched when their resources free up, and complete
out of order while the barrier holds the core.  ``q`` = enqueued/waiting,
``=`` = resource active, ``#`` = completion.

Run:  python examples/timeline_trace.py
"""

from repro.cgra import dnn_provisioned
from repro.core.compiler import schedule
from repro.core.dfg import parse_dfg
from repro.core.isa import StreamProgram
from repro.sim import MemorySystem, render_timeline, run_program
from repro.workloads.common import write_words
from repro.workloads.dnn import build_classifier
from repro.workloads.dnn.layers import ClassifierLayer


def figure4() -> None:
    print("=" * 72)
    print("Figure 4(b): dot-product execution")
    print("=" * 72)
    dfg = parse_dfg(
        "input A 4\ninput B 4\n"
        "m0 = mul A.0 B.0\nm1 = mul A.1 B.1\nm2 = mul A.2 B.2\n"
        "s0 = add m0 m1\ns1 = add s0 m2\noutput C s1",
        "dotprod",
    )
    fabric = dnn_provisioned()
    config = schedule(dfg, fabric)
    memory = MemorySystem()
    n = 32
    write_words(memory, 0x1000, list(range(4 * n)))
    write_words(memory, 0x8000, list(range(4 * n)))
    program = StreamProgram("fig4", config)
    program.mem_port(0x1000, 32, 32, n, "A")
    program.mem_port(0x8000, 32, 32, n, "B")
    program.port_mem("C", 8, 8, n, 0x10000)
    program.barrier_all()
    result = run_program(program, fabric=fabric, memory=memory)
    print(render_timeline(result.timeline))
    print()


def figure6() -> None:
    print("=" * 72)
    print("Figure 6 (bottom): classifier execution")
    print("=" * 72)
    built = build_classifier(ClassifierLayer("fig6", ni=128, nn=4))
    result = run_program(built.program, fabric=built.fabric, memory=built.memory)
    built.verify(built.memory)
    print(render_timeline(result.timeline))


if __name__ == "__main__":
    figure4()
    figure6()
