"""Property tests: the batched fast path is observationally invisible.

Two properties, both over the fuzz layer's random generators:

* **whole-simulation equivalence** — 100 random legal stream programs per
  seed x 3 seeds: running each under ``fast_path=True`` and
  ``fast_path=False`` must produce identical :class:`SimStats`, identical
  ``BackingStore.snapshot_pages()``, identical scratchpad images and
  identical command timelines (docs/PERFORMANCE.md states the contract);
* **compiled-DFG equivalence** — the fast path's specialised per-step
  closures (:func:`repro.sim.cgra_exec._compile_step`) must agree with
  the reference :meth:`Dfg.execute` on random DFGs and random inputs,
  including accumulator state across a firing sequence.
"""

import random

import pytest

from repro.fuzz.case import build_case
from repro.fuzz.generators import random_dfg, random_inputs, random_plan
from repro.sim.cgra_exec import CompiledDfg
from repro.sim.softbrain import SoftbrainParams, run_program

SEEDS = (0, 1, 2)
PLANS_PER_SEED = 100


def _run(built, fast: bool):
    return run_program(
        built.program, fabric=built.fabric, memory=built.fresh_memory(),
        params=SoftbrainParams(fast_path=fast),
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_random_plans_mode_equivalent(seed):
    for index in range(PLANS_PER_SEED):
        rng = random.Random(f"fastpath:{seed}:{index}")
        plan = random_plan(rng, name=f"fastpath-{seed}-{index}")
        built = build_case(plan)
        fast = _run(built, fast=True)
        slow = _run(built, fast=False)
        label = f"{plan.name}"
        assert fast.stats.to_dict() == slow.stats.to_dict(), label
        assert vars(fast.memory.stats) == vars(slow.memory.stats), label
        assert (fast.memory.store.snapshot_pages()
                == slow.memory.store.snapshot_pages()), label
        assert fast.scratchpad.snapshot() == slow.scratchpad.snapshot(), label
        assert (
            [(t.index, t.enqueued, t.dispatched, t.completed)
             for t in fast.timeline]
            == [(t.index, t.enqueued, t.dispatched, t.completed)
                for t in slow.timeline]
        ), label


@pytest.mark.parametrize("seed", range(40))
def test_compiled_dfg_specialisation_matches_reference(seed):
    rng = random.Random(f"compile:{seed}")
    dfg = random_dfg(seed, num_inputs=rng.randint(1, 3),
                     num_insts=rng.randint(1, 8))
    generic = CompiledDfg(dfg, specialize=False)
    fast = CompiledDfg(dfg, specialize=True)
    ref_state = dfg.make_state()
    gen_state = generic.make_state()
    fast_state = fast.make_state()
    for fire in range(8):
        inputs = random_inputs(dfg, seed * 1000 + fire)
        want = dfg.execute(inputs, ref_state)
        assert generic.run(inputs, gen_state) == want
        assert fast.run(inputs, fast_state) == want
    assert gen_state == fast_state
