"""Unit tests for the CPU, GPU and DianNao analytical baselines."""

import pytest

from repro.baselines import (
    CpuParams,
    DnnLayerCost,
    GpuWorkload,
    ScalarWorkload,
    cpu_energy_mj,
    diannao_energy_mj,
    estimate_cpu_cycles,
    estimate_diannao_cycles,
    estimate_gpu_cycles,
)
from repro.baselines.diannao import DIANNAO_AREA_MM2, DIANNAO_POWER_MW, DianNaoParams
from repro.power.tech import scale_area, scale_power


class TestCpuModel:
    def test_issue_bound(self):
        w = ScalarWorkload("w", int_ops=2800, mispredict_rate=0.0)
        estimate = estimate_cpu_cycles(w)
        assert estimate.cycles == pytest.approx(1000)
        assert estimate.limiting_factor == "issue"

    def test_memory_port_bound(self):
        w = ScalarWorkload("w", loads=10_000, mispredict_rate=0.0)
        estimate = estimate_cpu_cycles(w)
        assert estimate.cycles == pytest.approx(5000)
        assert estimate.limiting_factor == "memory_ports"

    def test_divide_bound(self):
        w = ScalarWorkload("w", div_ops=100, mispredict_rate=0.0)
        assert estimate_cpu_cycles(w).cycles == pytest.approx(2000)

    def test_bandwidth_bound(self):
        w = ScalarWorkload("w", memory_bytes=120_000, mispredict_rate=0.0)
        assert estimate_cpu_cycles(w).cycles == pytest.approx(10_000)

    def test_critical_path_bound(self):
        w = ScalarWorkload("w", int_ops=10, critical_path=5000,
                           mispredict_rate=0.0)
        assert estimate_cpu_cycles(w).cycles == pytest.approx(5000)

    def test_mispredicts_add(self):
        w = ScalarWorkload("w", int_ops=2800, branches=100, mispredict_rate=0.5)
        estimate = estimate_cpu_cycles(w)
        issue = (2800 + 100) / (4.0 * 0.70)
        assert estimate.cycles == pytest.approx(issue + 0.5 * 100 * 14)

    def test_minimum_one_cycle(self):
        assert estimate_cpu_cycles(ScalarWorkload("empty")).cycles >= 1

    def test_energy(self):
        params = CpuParams()
        assert cpu_energy_mj(1e9, params) == pytest.approx(params.power_mw)

    def test_cpu_power_is_watts_class(self):
        assert 3000 < CpuParams().power_mw < 20_000


class TestGpuModel:
    def test_compute_bound_conv(self):
        w = GpuWorkload("c", "conv", mac_ops=10**7, simple_ops=0, memory_bytes=0)
        cycles = estimate_gpu_cycles(w)
        assert cycles > 2 * 10**7 / 512  # utilisation < 1 slows it down

    def test_memory_bound_pool(self):
        w = GpuWorkload("p", "pool", mac_ops=0, simple_ops=100,
                        memory_bytes=10**6)
        cycles = estimate_gpu_cycles(w)
        assert cycles >= 10**6 / 80

    def test_launch_overhead_counts(self):
        w = GpuWorkload("p", "pool", mac_ops=0, simple_ops=1, memory_bytes=1,
                        kernels=2)
        assert estimate_gpu_cycles(w) > 15_000

    def test_unknown_kind_rejected(self):
        with pytest.raises(KeyError):
            estimate_gpu_cycles(
                GpuWorkload("x", "raytrace", mac_ops=1, simple_ops=0,
                            memory_bytes=0)
            )


class TestDianNaoModel:
    def test_compute_bound(self):
        layer = DnnLayerCost("l", mac_ops=256_000, simple_ops=0, unique_bytes=0)
        assert estimate_diannao_cycles(layer) == pytest.approx(1000)

    def test_memory_bound(self):
        layer = DnnLayerCost("l", mac_ops=100, simple_ops=0, unique_bytes=160_000)
        assert estimate_diannao_cycles(layer) == pytest.approx(10_000)

    def test_refetch_factor_inflates_traffic(self):
        base = DnnLayerCost("l", 0, 0, 16_000)
        inflated = DnnLayerCost("l", 0, 0, 16_000, refetch_factor=1.5)
        assert estimate_diannao_cycles(inflated) == pytest.approx(
            1.5 * estimate_diannao_cycles(base)
        )

    def test_published_figures(self):
        assert DIANNAO_AREA_MM2 == pytest.approx(2.16)
        assert DIANNAO_POWER_MW == pytest.approx(418.3)

    def test_energy(self):
        assert diannao_energy_mj(1e9) == pytest.approx(DIANNAO_POWER_MW)


class TestTechScaling:
    def test_area_scales_quadratically(self):
        assert scale_area(1.0, 28, 56) == pytest.approx(4.0)

    def test_power_scales_linearly(self):
        assert scale_power(1.0, 28, 56) == pytest.approx(2.0)

    def test_identity(self):
        assert scale_area(3.3, 55, 55) == pytest.approx(3.3)

    def test_invalid_nodes(self):
        with pytest.raises(ValueError):
            scale_area(1.0, 0, 55)
        with pytest.raises(ValueError):
            scale_power(1.0, 55, -1)
