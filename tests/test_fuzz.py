"""Tests for the differential-fuzzing subsystem (repro.fuzz).

Covers the tentpole pieces — generator legality, the three-way oracle,
shrinking against an intentionally corrupted interpreter, JSON replay —
plus the satellite guarantees: seed determinism (byte-identical programs)
and the injectable-RNG plumbing through ``run_and_verify``.
"""

import pathlib
import random

import pytest

import repro.core.isa.interpreter as interpreter_module
from repro.core.isa.encoding import encode_items
from repro.fuzz import (
    CasePlan,
    DrainSegment,
    FeedSegment,
    PlanError,
    build_case,
    plan_from_json,
    plan_to_json,
    random_plan,
    run_case,
    shrink,
    trivial_plan,
    validate_plan,
)
from repro.fuzz.cli import corpus_paths
from repro.fuzz.generators import passthrough_dfg_spec
from repro.fuzz.oracle import evaluate_case
from repro.__main__ import main


def _plan(tag: str) -> CasePlan:
    return random_plan(random.Random(tag), name=f"test-{tag}")


class TestGenerator:
    @pytest.mark.parametrize("index", range(6))
    def test_plans_validate_and_build(self, index):
        plan = _plan(f"gen:{index}")
        validate_plan(plan)  # raises on any legality violation
        built = build_case(plan)
        commands = built.program.commands
        # Shape invariants: exactly one config first, one full barrier last.
        assert type(commands[0]).__name__ == "SDConfig"
        assert type(commands[-1]).__name__ == "SDBarrierAll"
        assert built.program.num_commands >= 4

    def test_json_roundtrip_is_identity(self):
        plan = _plan("roundtrip")
        text = plan_to_json(plan)
        assert plan_to_json(plan_from_json(text)) == text

    def test_validation_rejects_illegal_plans(self):
        plan = trivial_plan()
        # Wrong element total for the port width.
        bad = plan_from_json(plan_to_json(plan))
        bad.feeds["A"][0].count = 2
        with pytest.raises(PlanError):
            validate_plan(bad)
        # const after a memory-engine segment on the same port (in-flight
        # data could be overtaken by the recurrence engine).
        bad = plan_from_json(plan_to_json(plan))
        bad.num_instances = 2
        bad.feeds["A"] = [
            FeedSegment(kind="mem", per_access=1, num_strides=1,
                        stride_elems=0, array=[5]),
            FeedSegment(kind="const", count=1, value=1),
        ]
        bad.drains["Z"] = [DrainSegment(kind="clean", count=2)]
        with pytest.raises(PlanError):
            validate_plan(bad)
        # Overlapping write pattern (write completion order is timing-
        # dependent).
        bad = plan_from_json(plan_to_json(plan))
        bad.num_instances = 4
        bad.feeds["A"] = [FeedSegment(kind="const", count=4, value=1)]
        bad.drains["Z"] = [DrainSegment(kind="mem", per_access=2,
                                        num_strides=2, stride_elems=1)]
        with pytest.raises(PlanError):
            validate_plan(bad)


class TestOracle:
    @pytest.mark.parametrize("index", range(4))
    def test_generated_cases_agree(self, index):
        report = run_case(_plan(f"oracle:{index}"))
        assert report.ok, [str(d) for d in report.divergences]

    def test_trivial_case_agrees(self):
        assert run_case(trivial_plan()).ok

    def test_evaluator_predicts_full_output_streams(self):
        """The pure evaluation produces width x instances words per
        output port — the exact stream the drains consume."""
        plan = _plan("eval")
        built = build_case(plan)
        expected = evaluate_case(built)
        widths = {p["name"]: len(p["sources"])
                  for p in plan.dfg_spec["outputs"]}
        for port, stream in expected.out_streams.items():
            assert len(stream) == widths[port] * plan.num_instances

    def test_detects_corrupted_interpreter(self, monkeypatch):
        _corrupt_interpreter_writes(monkeypatch)
        report = run_case(trivial_plan())
        assert not report.ok
        assert any(d.kind.startswith("interp-") for d in report.divergences)


class TestSeedDeterminism:
    def test_same_seed_same_program_bytes(self):
        """Same fuzz seed => byte-identical case JSON, byte-identical
        encoded command stream, identical oracle verdict."""
        plan_a = _plan("determinism")
        plan_b = _plan("determinism")
        assert plan_to_json(plan_a) == plan_to_json(plan_b)
        bytes_a = encode_items(build_case(plan_a).program.commands)
        bytes_b = encode_items(build_case(plan_b).program.commands)
        assert bytes_a == bytes_b
        verdict_a = [d.kind for d in run_case(plan_a).divergences]
        verdict_b = [d.kind for d in run_case(plan_b).divergences]
        assert verdict_a == verdict_b

    def test_different_seeds_differ(self):
        assert plan_to_json(_plan("a")) != plan_to_json(_plan("b"))

    def test_rebuild_from_json_gives_same_bytes(self):
        plan = _plan("rebuild")
        reloaded = plan_from_json(plan_to_json(plan))
        assert (encode_items(build_case(plan).program.commands)
                == encode_items(build_case(reloaded).program.commands))


def _corrupt_interpreter_writes(monkeypatch):
    """Make the functional interpreter write every element off by one —
    the 'intentionally corrupted implementation' the shrinker acceptance
    criterion calls for."""
    original = interpreter_module._State.write_elem

    def corrupted(self, to_scratch, addr, word, size):
        original(self, to_scratch, addr, word + 1, size)

    monkeypatch.setattr(interpreter_module._State, "write_elem", corrupted)


class TestShrinker:
    def test_corrupted_interpreter_shrinks_to_tiny_repro(
        self, monkeypatch, tmp_path
    ):
        _corrupt_interpreter_writes(monkeypatch)
        plan = _plan("shrink")
        assert not run_case(plan).ok

        def diverges(candidate):
            return bool(run_case(candidate).divergences)

        small = shrink(plan, diverges)
        built = build_case(small)
        assert built.program.num_commands <= 5

        # The minimised case replays deterministically from its JSON file.
        case_path = tmp_path / "repro.json"
        case_path.write_text(plan_to_json(small))
        reloaded = plan_from_json(case_path.read_text())
        assert plan_to_json(reloaded) == plan_to_json(small)
        assert (encode_items(build_case(reloaded).program.commands)
                == encode_items(built.program.commands))
        assert not run_case(reloaded).ok

    def test_shrunk_case_is_clean_without_the_bug(self, tmp_path):
        """A repro minimised under the corrupted interpreter passes once
        the corruption is gone — the divergence was the bug, not the case."""
        assert run_case(trivial_plan()).ok

    def test_shrinker_respects_check_budget(self, monkeypatch):
        _corrupt_interpreter_writes(monkeypatch)
        calls = []

        def diverges(candidate):
            calls.append(1)
            return bool(run_case(candidate).divergences)

        shrink(_plan("budget"), diverges, max_checks=3)
        assert len(calls) <= 3


class TestCorpus:
    def test_corpus_exists(self):
        assert len(corpus_paths()) >= 5

    @pytest.mark.parametrize(
        "path", corpus_paths(), ids=lambda p: p.stem
    )
    def test_corpus_case_replays_clean(self, path):
        plan = plan_from_json(path.read_text())
        assert plan_to_json(plan) == path.read_text()  # canonical on disk
        report = run_case(plan)
        assert report.ok, [str(d) for d in report.divergences]

    def test_corpus_covers_the_isa_surface(self):
        kinds = set()
        recur = False
        for path in corpus_paths():
            plan = plan_from_json(path.read_text())
            for segments in plan.feeds.values():
                kinds.update(f"feed:{s.kind}" for s in segments)
            for segments in plan.drains.values():
                kinds.update(f"drain:{s.kind}" for s in segments)
            recur = recur or bool(plan.recur_in)
        assert {"feed:indirect", "feed:scratch", "feed:const",
                "drain:scatter", "drain:scratch", "drain:mem"} <= kinds
        assert recur


class TestInjectableRng:
    def test_run_and_verify_forwards_rng(self):
        from repro.workloads.common import BuiltWorkload, run_and_verify

        plan = trivial_plan()
        built = build_case(plan)
        seen = []

        def verify(memory, rng=None):
            seen.append(rng)

        workload = BuiltWorkload(plan.name, built.program, built.fabric,
                                 built.fresh_memory(), verify)
        run_and_verify(workload, rng=1234)
        assert isinstance(seen[0], random.Random)

    def test_run_and_verify_leaves_global_rng_alone(self):
        state = random.getstate()
        assert run_case(_plan("rngstate"), rng=99).ok
        assert random.getstate() == state

    def test_coerce_rng(self):
        from repro.workloads.common import coerce_rng

        assert coerce_rng(None) is None
        instance = random.Random(7)
        assert coerce_rng(instance) is instance
        assert coerce_rng(7).random() == coerce_rng(7).random()


class TestCli:
    def test_fuzz_small_batch(self, capsys):
        assert main(["fuzz", "--count", "3", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "3 generated" in out
        assert "0 divergence(s)" in out

    def test_fuzz_replay_corpus_case(self, capsys):
        path = corpus_paths()[0]
        assert main(["fuzz", "--replay", str(path)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_fuzz_smoke_replays_corpus(self, capsys):
        assert main(["fuzz", "--smoke", "--count", "2"]) == 0
        out = capsys.readouterr().out
        assert f"{len(corpus_paths())} corpus cases" in out

    def test_fuzz_time_budget(self, capsys):
        assert main(["fuzz", "--count", "100000", "--seed", "2",
                     "--time-budget", "2"]) == 0
        assert "time budget" in capsys.readouterr().out


def test_passthrough_spec_builds_minimal_dfg():
    spec = passthrough_dfg_spec({"A": 2, "B": 1}, {"Z": 3})
    from repro.fuzz.generators import dfg_from_spec

    dfg = dfg_from_spec(spec)
    assert {n: p.width for n, p in dfg.inputs.items()} == {"A": 2, "B": 1}
    assert dfg.outputs["Z"].width == 3
