"""Tests for the multi-unit simulator and its bandwidth-sharing behaviour."""

import pytest

from repro.cgra import dnn_provisioned
from repro.sim import MemoryParams, MemorySystem, run_multi_unit, run_program
from repro.workloads.dnn import build_classifier
from repro.workloads.dnn.layers import ClassifierLayer


def build_units(layer, units):
    builts = [
        build_classifier(layer, unit_id=u, num_units=units) for u in range(units)
    ]
    memory = MemorySystem()
    memory.store = builts[0].memory.store  # identical preloads (same seed)
    return builts, memory


class TestMultiUnit:
    def test_results_verify_across_units(self):
        layer = ClassifierLayer("mu", ni=128, nn=16)
        builts, memory = build_units(layer, 4)
        result = run_multi_unit(
            [b.program for b in builts], dnn_provisioned, memory=memory
        )
        for built in builts:
            built.memory = memory
            built.verify(memory)
        assert len(result.unit_results) == 4
        assert result.total_instances == 16 * (128 // 16)

    def test_device_cycles_is_slowest_unit(self):
        layer = ClassifierLayer("mu2", ni=64, nn=8)
        builts, memory = build_units(layer, 2)
        result = run_multi_unit(
            [b.program for b in builts], dnn_provisioned, memory=memory
        )
        assert result.cycles == max(r.cycles for r in result.unit_results)

    def test_shared_interface_creates_contention(self):
        # One unit alone vs the same share with three competing units:
        # the shared single-accept-per-cycle interface must slow it down.
        layer = ClassifierLayer("cont", ni=256, nn=16)
        solo_built = build_classifier(layer, unit_id=0, num_units=4)
        solo = run_program(
            solo_built.program, fabric=solo_built.fabric,
            memory=solo_built.memory,
        )

        builts, memory = build_units(layer, 4)
        shared = run_multi_unit(
            [b.program for b in builts], dnn_provisioned, memory=memory
        )
        assert shared.unit_results[0].cycles > solo.cycles

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            run_multi_unit([], dnn_provisioned)

    def test_single_unit_multi_matches_run_program(self):
        layer = ClassifierLayer("solo", ni=64, nn=4)
        built = build_classifier(layer)
        expected = run_program(
            built.program, fabric=built.fabric, memory=built.memory
        )
        built2 = build_classifier(layer)
        result = run_multi_unit(
            [built2.program], dnn_provisioned, memory=built2.memory
        )
        assert result.cycles == expected.cycles

    def test_bandwidth_approximation_sane(self):
        # The DNN harness approximates N units by giving one unit 1/N DRAM
        # bandwidth.  Cross-validate: the approximation must land within
        # 2x of the true multi-unit simulation.
        layer = ClassifierLayer("xval", ni=256, nn=16)
        units = 4

        builts, memory = build_units(layer, units)
        true_result = run_multi_unit(
            [b.program for b in builts], dnn_provisioned, memory=memory
        )

        approx_built = build_classifier(layer, unit_id=0, num_units=units)
        base = MemoryParams()
        approx_memory = MemorySystem(
            MemoryParams(
                dram_gap_cycles=base.dram_gap_cycles * units,
            )
        )
        approx_memory.store = approx_built.memory.store
        approx = run_program(
            approx_built.program, fabric=approx_built.fabric,
            memory=approx_memory,
        )
        ratio = approx.cycles / true_result.cycles
        assert 0.5 < ratio < 2.0, ratio
