"""Unit tests for affine/indirect access patterns and AGU coalescing."""

import pytest

from repro.core.isa.patterns import (
    Affine2D,
    LINE_BYTES,
    PatternError,
    affine_requests,
    indirect_requests,
    line_requests,
)


class TestAffine2D:
    def test_linear_helper(self):
        p = Affine2D.linear(0x100, 64)
        assert p.total_bytes == 64
        assert p.num_elements == 8
        assert p.classify() == "linear"

    def test_total_bytes_and_elements(self):
        p = Affine2D(0, access_size=16, stride=32, num_strides=4)
        assert p.total_bytes == 64
        assert p.num_elements == 8

    def test_extent(self):
        p = Affine2D(100, access_size=16, stride=32, num_strides=4)
        assert p.extent == 100 + 3 * 32 + 16

    def test_element_addresses_strided(self):
        p = Affine2D(0, access_size=8, stride=32, num_strides=3)
        assert list(p.element_addresses()) == [0, 32, 64]

    def test_element_addresses_2d(self):
        p = Affine2D(0, access_size=16, stride=32, num_strides=2, elem_bytes=8)
        assert list(p.element_addresses()) == [0, 8, 32, 40]

    def test_element_addresses_narrow(self):
        p = Affine2D(0, access_size=4, stride=10, num_strides=2, elem_bytes=2)
        assert list(p.element_addresses()) == [0, 2, 10, 12]

    def test_classify_families(self):
        assert Affine2D(0, 8, 8, 4).classify() == "linear"
        assert Affine2D(0, 8, 32, 4).classify() == "strided"
        assert Affine2D(0, 32, 8, 4).classify() == "overlapped"
        assert Affine2D(0, 8, 0, 4).classify() == "repeating"

    def test_single_stride_is_linear(self):
        assert Affine2D(0, 8, 999, 1).classify() == "linear"

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(start=0, access_size=0, stride=8, num_strides=1),
            dict(start=0, access_size=8, stride=8, num_strides=0),
            dict(start=0, access_size=8, stride=-8, num_strides=1),
            dict(start=-1, access_size=8, stride=8, num_strides=1),
            dict(start=0, access_size=8, stride=8, num_strides=1, elem_bytes=3),
            dict(start=0, access_size=6, stride=8, num_strides=1, elem_bytes=4),
        ],
    )
    def test_invalid_patterns_rejected(self, kwargs):
        with pytest.raises(PatternError):
            Affine2D(**kwargs)


class TestLineRequests:
    def test_linear_one_request_per_line(self):
        p = Affine2D.linear(0, 128)  # 16 words over 2 lines
        requests = list(affine_requests(p))
        assert len(requests) == 2
        assert requests[0].line_addr == 0
        assert requests[1].line_addr == 64
        assert requests[0].num_elements == 8

    def test_unaligned_start_splits(self):
        p = Affine2D.linear(32, 64)  # straddles one line boundary
        requests = list(affine_requests(p))
        assert [r.line_addr for r in requests] == [0, 64]
        assert [r.num_elements for r in requests] == [4, 4]

    def test_strided_one_request_per_access(self):
        p = Affine2D(0, access_size=8, stride=256, num_strides=4)
        requests = list(affine_requests(p))
        assert len(requests) == 4
        assert [r.line_addr for r in requests] == [0, 256, 512, 768]

    def test_small_stride_coalesces_within_line(self):
        # 2-byte elements every 4 bytes: 16 fit in one line
        p = Affine2D(0, access_size=2, stride=4, num_strides=16, elem_bytes=2)
        requests = list(affine_requests(p))
        assert len(requests) == 1
        assert requests[0].num_elements == 16

    def test_stream_order_preserved(self):
        p = Affine2D(0, access_size=16, stride=8, num_strides=3)  # overlapped
        addrs = [a for r in affine_requests(p) for a in r.element_addrs]
        assert addrs == list(p.element_addresses())

    def test_repeating_pattern_refetches(self):
        p = Affine2D(0, access_size=8, stride=0, num_strides=3)
        requests = list(affine_requests(p))
        # same word three times, coalesced into one request per line visit
        total = sum(r.num_elements for r in requests)
        assert total == 3

    def test_bytes_used(self):
        p = Affine2D.linear(0, 64, elem_bytes=2)
        (request,) = list(affine_requests(p))
        assert request.bytes_used == 64

    def test_max_elements_cap(self):
        addrs = iter([0] * 100)
        requests = list(line_requests(addrs, 2, max_elements=32))
        assert all(r.num_elements <= 32 for r in requests)
        assert sum(r.num_elements for r in requests) == 100


class TestIndirectRequests:
    def test_coalesces_up_to_four_in_line(self):
        requests = list(indirect_requests([0, 8, 16, 24, 32], 8))
        assert [r.num_elements for r in requests] == [4, 1]

    def test_does_not_coalesce_across_lines(self):
        requests = list(indirect_requests([0, 64], 8))
        assert len(requests) == 2

    def test_does_not_coalesce_decreasing(self):
        requests = list(indirect_requests([16, 8], 8))
        assert len(requests) == 2

    def test_duplicate_addresses_coalesce(self):
        requests = list(indirect_requests([8, 8, 8], 8))
        assert len(requests) == 1
        assert requests[0].num_elements == 3

    def test_empty(self):
        assert list(indirect_requests([], 8)) == []

    def test_scattered_addresses(self):
        addrs = [0, 200, 100, 104]
        requests = list(indirect_requests(addrs, 8))
        flat = [a for r in requests for a in r.element_addrs]
        assert flat == addrs
