"""Tests for the power model, Table 3/Table 1/Table 4 harnesses."""

import pytest

from repro.cgra import dnn_provisioned
from repro.experiments import (
    capability_scores,
    format_table1,
    format_table3,
    format_table4,
    geomean,
    table3,
)
from repro.power import (
    SOFTBRAIN_COMPONENTS,
    estimate_power,
    softbrain_area_mm2,
    softbrain_peak_power_mw,
)
from repro.workloads.characterization import UNSUITABLE, characterize
from repro.workloads.common import run_and_verify
from repro.workloads.machsuite import build_spmv_ellpack, build_stencil2d


class TestPowerModel:
    def test_unit_area_matches_table3(self):
        assert softbrain_area_mm2() == pytest.approx(0.47, abs=0.01)

    def test_unit_peak_power_matches_table3(self):
        assert softbrain_peak_power_mw() == pytest.approx(119.3, abs=1.0)

    def test_eight_units_match_table3(self):
        assert softbrain_area_mm2(8) == pytest.approx(3.76, abs=0.05)
        assert softbrain_peak_power_mw(8) == pytest.approx(954.4, abs=5.0)

    def test_component_set(self):
        assert set(SOFTBRAIN_COMPONENTS) == {
            "control_core", "cgra_network", "fus", "stream_engines",
            "scratchpad", "vector_ports",
        }

    def test_measured_power_below_peak(self):
        built = build_spmv_ellpack(n=16)
        result = run_and_verify(built)
        breakdown = estimate_power(result, built.fabric)
        assert 0 < breakdown.total_mw <= softbrain_peak_power_mw()

    def test_busier_run_uses_more_power(self):
        light = run_and_verify(build_spmv_ellpack(n=16))
        heavy = run_and_verify(build_stencil2d(width=18, height=10))
        light_power = estimate_power(light, dnn_provisioned()).total_mw
        heavy_power = estimate_power(heavy, dnn_provisioned()).total_mw
        assert heavy_power > light_power * 0.8  # same order; busier >= lighter

    def test_activity_override(self):
        built = build_spmv_ellpack(n=16)
        result = run_and_verify(built)
        maxed = estimate_power(
            result,
            built.fabric,
            activity_override={name: 1.0 for name in SOFTBRAIN_COMPONENTS},
        )
        assert maxed.total_mw == pytest.approx(softbrain_peak_power_mw())

    def test_breakdown_table_renders(self):
        built = build_spmv_ellpack(n=16)
        result = run_and_verify(built)
        text = estimate_power(result, built.fabric).table()
        assert "TOTAL" in text

    def test_energy(self):
        built = build_spmv_ellpack(n=16)
        result = run_and_verify(built)
        breakdown = estimate_power(result, built.fabric)
        assert breakdown.energy_mj(10**9) == pytest.approx(breakdown.total_mw)


class TestTable3:
    def test_overheads_match_paper(self):
        data = table3()
        assert data.area_overhead == pytest.approx(1.74, abs=0.05)
        assert data.power_overhead == pytest.approx(2.28, abs=0.05)

    def test_render(self):
        text = format_table3(table3())
        assert "DianNao" in text
        assert "Softbrain/DianNao overhead" in text


class TestTable1:
    def test_stream_dataflow_scores_highest(self):
        scores = {s.architecture: s.score for s in capability_scores()}
        best = max(scores.values())
        assert scores["Stream-Dataflow"] == best

    def test_render_includes_all_architectures(self):
        text = format_table1()
        for arch in ("SIMD", "SIMT", "Vector Threads", "Spatial Dataflow",
                     "Stream-Dataflow"):
            assert arch in text


class TestTable4:
    def test_characterization_matches_paper_rows(self):
        built = build_spmv_ellpack(n=16)
        row = characterize(built)
        assert "Indirect Loads" in row.patterns
        assert "Linear" in row.patterns
        assert "Recurrence" in row.patterns
        assert row.datapath == "4-Way Multiply-Accumulate"

    def test_stencil_has_affine_and_recurrence(self):
        row = characterize(build_stencil2d(width=10, height=6))
        assert "Affine" in row.patterns or "Overlapped" in row.patterns
        assert "Recurrence" in row.patterns
        assert row.datapath == "8-Way Multiply-Accumulate"

    def test_unsuitable_list_matches_paper(self):
        assert [name for name, _ in UNSUITABLE] == [
            "aes", "kmp", "merge-sort", "radix-sort",
        ]


class TestHelpers:
    def test_geomean(self):
        assert geomean([1, 100]) == pytest.approx(10.0)
        assert geomean([]) == 0.0
