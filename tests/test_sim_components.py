"""Unit tests for vector ports, dispatcher behaviour and the control core."""

import pytest

from repro.cgra.fabric import HwVectorPort, dnn_provisioned
from repro.core.compiler import schedule
from repro.core.dfg import parse_dfg
from repro.core.isa import StreamProgram, in_port, out_port
from repro.sim import (
    COMMAND_QUEUE_DEPTH,
    PortRuntimeError,
    SoftbrainSim,
    VectorPortState,
)


def make_port(width=4, depth=4, direction="in"):
    return VectorPortState(HwVectorPort(0, direction, width, depth))


class TestVectorPortState:
    def test_push_pop_fifo_order(self):
        port = make_port()
        port.push([1, 2, 3], reserved=False)
        assert port.pop_words(2) == [1, 2]
        assert port.pop_words(1) == [3]

    def test_capacity(self):
        port = make_port(width=2, depth=3)
        assert port.capacity_words == 6
        port.push([0] * 6, reserved=False)
        assert port.free_words == 0
        with pytest.raises(PortRuntimeError):
            port.push([1], reserved=False)

    def test_reservation_accounting(self):
        port = make_port(width=2, depth=4)
        port.reserve(3)
        assert port.free_words == 5
        port.push([1, 2, 3])
        assert port.reserved == 0
        assert port.occupancy == 3

    def test_over_reserve_rejected(self):
        port = make_port(width=1, depth=2)
        with pytest.raises(PortRuntimeError):
            port.reserve(3)

    def test_push_beyond_reservation_rejected(self):
        port = make_port()
        port.reserve(1)
        with pytest.raises(PortRuntimeError):
            port.push([1, 2])

    def test_underflow_rejected(self):
        port = make_port()
        with pytest.raises(PortRuntimeError):
            port.pop_words(1)

    def test_counters(self):
        port = make_port()
        port.push([5, 6], reserved=False)
        port.pop_words(2)
        assert port.total_pushed == 2
        assert port.total_popped == 2


@pytest.fixture()
def sim():
    dfg = parse_dfg("input A\nx = pass A\noutput O x", "passthrough")
    fabric = dnn_provisioned()
    config = schedule(dfg, fabric)
    program = StreamProgram("p", config)
    program.barrier_all()
    return SoftbrainSim(program, fabric=fabric)


class TestDispatcher:
    def test_queue_depth_enforced(self, sim):
        for _ in range(COMMAND_QUEUE_DEPTH):
            assert sim.dispatcher.can_enqueue()
            sim.dispatcher.enqueue(
                sim.program.commands[0], 0
            )
        assert not sim.dispatcher.can_enqueue()

    def test_barrier_all_stalls_enqueue(self, sim):
        from repro.core.isa import SDBarrierAll

        sim.dispatcher.enqueue(SDBarrierAll(), 0)
        assert not sim.dispatcher.can_enqueue()

    def test_same_port_same_role_serialises(self, sim):
        from repro.core.isa import SDConstPort

        a = SDConstPort(1, 4, in_port(5))
        b = SDConstPort(2, 4, in_port(5))
        sim.dispatcher.enqueue(a, 0)
        sim.dispatcher.enqueue(b, 0)
        assert sim.dispatcher.tick(1)  # issues a
        assert not sim.dispatcher.tick(2)  # b blocked on port in5 writer

    def test_different_ports_issue_out_of_order(self, sim):
        from repro.core.isa import SDConstPort

        sim.dispatcher.enqueue(SDConstPort(1, 4, in_port(5)), 0)
        sim.dispatcher.enqueue(SDConstPort(2, 4, in_port(5)), 0)  # blocked
        sim.dispatcher.enqueue(SDConstPort(3, 4, in_port(6)), 0)  # free port
        assert sim.dispatcher.tick(1)
        assert sim.dispatcher.tick(2)  # the in6 command passes the stalled one
        issued = [s.command.value for s in sim.engines["rse"].streams]
        assert issued == [1, 3]

    def test_release_port_counts(self, sim):
        sim.dispatcher.busy_ports[("in", 1, "w")] = 2
        sim.dispatcher.release_port("in", 1, "w")
        assert sim.dispatcher.busy_ports[("in", 1, "w")] == 1
        sim.dispatcher.release_port("in", 1, "w")
        assert ("in", 1, "w") not in sim.dispatcher.busy_ports


class TestControlCore:
    def test_multi_instruction_commands_take_cycles(self, sim):
        # program items: SDConfig (1 inst) + SDBarrierAll (1 inst)
        core = sim.core
        assert core.tick(0)  # config enqueued
        assert sim.dispatcher.queue
        assert not core.finished

    def test_host_compute_consumes_cycles(self):
        from repro.core.isa.program import HostCompute

        dfg = parse_dfg("input A\nx = pass A\noutput O x", "p2")
        fabric = dnn_provisioned()
        config = schedule(dfg, fabric)
        program = StreamProgram("p2", config)
        program.host(3)
        sim2 = SoftbrainSim(program, fabric=fabric)
        core = sim2.core
        core.tick(0)  # config
        ticks = 0
        while not core.finished:
            core.tick(ticks + 1)
            ticks += 1
        assert ticks >= 3
