"""Integration tests: every DNN layer verifies end-to-end on the simulator.

Small layer instances keep these fast; the full Figure 11 sizes run in the
benchmark harness.
"""

import pytest

from repro.workloads.common import run_and_verify
from repro.workloads.dnn import (
    ClassifierLayer,
    ConvLayer,
    DNN_LAYERS,
    PoolLayer,
    build_classifier,
    build_conv,
    build_dnn_layer,
    build_pool,
    classifier_dfg,
    reference_classifier,
)
from repro.core.dfg.instructions import fixed_point_sigmoid


class TestClassifier:
    def test_dfg_one_instance(self):
        dfg = classifier_dfg()
        state = dfg.make_state()
        # 16 MACs: s.n with all ones = 16, reset -> sigmoid(16)
        packed_ones = 0x0001000100010001
        out = dfg.execute(
            {"S": [packed_ones] * 4, "N": [packed_ones] * 4, "R": [1]}, state
        )
        assert out["C"] == [fixed_point_sigmoid(16)]

    def test_reference_matches_manual(self):
        assert reference_classifier([[2, 3]], [4, 5]) == [
            fixed_point_sigmoid(23)
        ]

    def test_small_layer_end_to_end(self):
        layer = ClassifierLayer("tiny", ni=32, nn=4)
        result = run_and_verify(build_classifier(layer))
        assert result.stats.instances_fired == 4 * 2  # nn * ni/16

    def test_unit_partitioning(self):
        layer = ClassifierLayer("split", ni=32, nn=8)
        for unit in range(2):
            run_and_verify(build_classifier(layer, unit_id=unit, num_units=2))

    def test_bad_shapes_rejected(self):
        with pytest.raises(ValueError):
            build_classifier(ClassifierLayer("odd", ni=20, nn=4))
        with pytest.raises(ValueError):
            build_classifier(
                ClassifierLayer("odd2", ni=32, nn=5), num_units=2
            )


class TestConv:
    def test_small_conv_end_to_end(self):
        layer = ConvLayer("tiny", out_w=8, out_h=4, n_in=2, k=3, n_out=2)
        result = run_and_verify(build_conv(layer))
        assert result.stats.instances_fired > 0

    def test_conv_5x5_kernel(self):
        layer = ConvLayer("k5", out_w=4, out_h=2, n_in=2, k=5, n_out=1)
        run_and_verify(build_conv(layer))

    def test_conv_unit_partitioning(self):
        layer = ConvLayer("split", out_w=8, out_h=4, n_in=2, k=3, n_out=2)
        for unit in range(2):
            run_and_verify(build_conv(layer, unit_id=unit, num_units=2))

    def test_scratch_capacity_checked(self):
        huge = ConvLayer("huge", out_w=64, out_h=64, n_in=8, k=3, n_out=2)
        with pytest.raises(ValueError, match="scratchpad"):
            build_conv(huge)


class TestPool:
    def test_avg_pool_end_to_end(self):
        layer = PoolLayer("tinyavg", in_w=16, in_h=8, maps=2, window=2)
        run_and_verify(build_pool(layer))

    def test_max_pool_end_to_end(self):
        layer = PoolLayer("tinymax", in_w=16, in_h=8, maps=2, window=2,
                          mode="max")
        run_and_verify(build_pool(layer))

    def test_4x4_two_pass(self):
        layer = PoolLayer("two", in_w=16, in_h=16, maps=1, window=4)
        built = build_pool(layer)
        assert built.meta["passes"] == 2
        run_and_verify(built)

    def test_negative_data_avg_rounding(self):
        # avg uses arithmetic shift: floor division semantics on negatives
        from repro.workloads.dnn.pooling import reference_pool2

        rows = [[-1, -1], [-1, -1]]
        assert reference_pool2(rows, "avg") == [[-1]]

    def test_bad_window(self):
        with pytest.raises(ValueError):
            PoolLayer("bad", in_w=8, in_h=8, maps=1, window=3)


class TestLayerSet:
    def test_figure11_set_complete(self):
        names = [l.name for l in DNN_LAYERS]
        assert names == [
            "class1p", "class3p", "pool1p", "pool3p", "pool5p",
            "conv1p", "conv2p", "conv3p", "conv4p", "conv5p",
        ]

    def test_build_by_name(self):
        built = build_dnn_layer("pool1p", unit_id=0, num_units=8)
        assert built.name == "pool1p"

    def test_cost_models_positive(self):
        from repro.workloads.dnn import gpu_workload, layer_cost

        for layer in DNN_LAYERS:
            cost = layer_cost(layer)
            assert cost.unique_bytes > 0
            gpu = gpu_workload(layer)
            assert gpu.kind in ("classifier", "conv", "pool")
            census = layer.cpu_census()
            assert census.total_instructions > 0

    def test_pool_refetch_factor(self):
        from repro.workloads.dnn import layer_cost
        from repro.workloads.dnn.layers import DNN_LAYERS_BY_NAME

        assert layer_cost(DNN_LAYERS_BY_NAME["pool1p"]).refetch_factor > 1.0
        assert layer_cost(DNN_LAYERS_BY_NAME["conv1p"]).refetch_factor == 1.0
