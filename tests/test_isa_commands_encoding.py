"""Unit + property tests for stream commands, port roles and the codec."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.isa import (
    Affine2D,
    EncodingError,
    HostCompute,
    SDBarrierAll,
    SDBarrierScratchRd,
    SDBarrierScratchWr,
    SDCleanPort,
    SDConfig,
    SDConstPort,
    SDIndPortMem,
    SDIndPortPort,
    SDMemPort,
    SDMemScratch,
    SDPortMem,
    SDPortPort,
    SDPortScratch,
    SDScratchPort,
    decode_item,
    decode_items,
    encode_item,
    encode_items,
    in_port,
    ind_port,
    is_barrier,
    out_port,
)
from repro.core.isa.commands import PortRef, port_uses


def pattern(**kw):
    defaults = dict(start=0x1000, access_size=64, stride=64, num_strides=4)
    defaults.update(kw)
    return Affine2D(**defaults)


class TestPortRef:
    def test_str(self):
        assert str(in_port(3)) == "in3"
        assert str(out_port(0)) == "out0"
        assert str(ind_port(2)) == "ind2"

    def test_bad_kind(self):
        with pytest.raises(ValueError):
            PortRef("sideways", 0)

    def test_negative_id(self):
        with pytest.raises(ValueError):
            in_port(-1)


class TestCommandValidation:
    def test_mem_port_dest_must_be_input_or_indirect(self):
        with pytest.raises(ValueError):
            SDMemPort(pattern(), out_port(0))
        SDMemPort(pattern(), in_port(0))
        SDMemPort(pattern(), ind_port(0))

    def test_const_port_positive_count(self):
        with pytest.raises(ValueError):
            SDConstPort(1, 0, in_port(0))

    def test_clean_source_must_be_output(self):
        with pytest.raises(ValueError):
            SDCleanPort(4, in_port(0))

    def test_port_port_direction(self):
        with pytest.raises(ValueError):
            SDPortPort(in_port(0), 4, in_port(1))
        SDPortPort(out_port(0), 4, in_port(1))
        SDPortPort(out_port(0), 4, ind_port(1))

    def test_indirect_index_port_kind(self):
        with pytest.raises(ValueError):
            SDIndPortPort(in_port(0), 0, in_port(1), 4)

    def test_ind_port_mem_source_must_be_output(self):
        with pytest.raises(ValueError):
            SDIndPortMem(ind_port(0), in_port(0), 0, 4)

    def test_is_barrier(self):
        assert is_barrier(SDBarrierAll())
        assert is_barrier(SDBarrierScratchRd())
        assert is_barrier(SDBarrierScratchWr())
        assert not is_barrier(SDMemPort(pattern(), in_port(0)))

    def test_engine_assignment(self):
        assert SDMemPort(pattern(), in_port(0)).engine == "mse_read"
        assert SDPortMem(out_port(0), pattern()).engine == "mse_write"
        assert SDScratchPort(pattern(), in_port(0)).engine == "sse"
        assert SDPortScratch(out_port(0), 4, 0).engine == "sse"
        assert SDConstPort(0, 1, in_port(0)).engine == "rse"
        assert SDPortPort(out_port(0), 1, in_port(0)).engine == "rse"
        assert SDConfig(0, 64).engine == "mse_read"

    def test_instruction_counts_in_bounds(self):
        commands = [
            SDConfig(0, 64),
            SDMemPort(pattern(), in_port(0)),
            SDBarrierAll(),
            SDPortMem(out_port(0), pattern()),
        ]
        for command in commands:
            assert 1 <= command.instruction_count <= 3


class TestPortRoles:
    def test_writer_roles(self):
        (use,) = port_uses(SDMemPort(pattern(), in_port(3)))
        assert use == (in_port(3), "w")

    def test_reader_roles(self):
        (use,) = port_uses(SDCleanPort(4, out_port(2)))
        assert use == (out_port(2), "r")

    def test_indirect_gather_reads_index_writes_dest(self):
        uses = dict(port_uses(SDIndPortPort(ind_port(1), 0, in_port(2), 4)))
        assert uses[ind_port(1)] == "r"
        assert uses[in_port(2)] == "w"

    def test_indirect_scatter_reads_both(self):
        uses = dict(port_uses(SDIndPortMem(ind_port(0), out_port(1), 0, 4)))
        assert uses[ind_port(0)] == "r"
        assert uses[out_port(1)] == "r"

    def test_recurrence_reads_source_writes_dest(self):
        uses = dict(port_uses(SDPortPort(out_port(0), 4, in_port(1))))
        assert uses[out_port(0)] == "r"
        assert uses[in_port(1)] == "w"

    def test_barriers_use_no_ports(self):
        assert port_uses(SDBarrierAll()) == ()


ALL_COMMANDS = [
    HostCompute(7),
    SDConfig(0xC0000000, 368),
    SDMemPort(pattern(elem_bytes=2, signed=True), in_port(1)),
    SDMemScratch(pattern(), 128),
    SDScratchPort(pattern(start=0, access_size=32, stride=0, num_strides=9),
                  in_port(2)),
    SDConstPort(0xDEADBEEF, 48, in_port(3)),
    SDCleanPort(47, out_port(0)),
    SDPortPort(out_port(1), 64, in_port(4)),
    SDPortScratch(out_port(2), 16, 256, 8),
    SDPortMem(out_port(3), pattern(start=0x2000)),
    SDIndPortPort(ind_port(0), 0x3000, in_port(5), 12, 8, 8, True),
    SDIndPortMem(ind_port(1), out_port(4), 0x4000, 12, 2, 4),
    SDBarrierScratchRd(),
    SDBarrierScratchWr(),
    SDBarrierAll(),
]


class TestEncoding:
    @pytest.mark.parametrize("item", ALL_COMMANDS, ids=lambda c: type(c).__name__)
    def test_round_trip_each_command(self, item):
        decoded, offset = decode_item(encode_item(item))
        assert decoded == item
        assert offset == len(encode_item(item))

    def test_round_trip_program(self):
        data = encode_items(ALL_COMMANDS)
        assert decode_items(data) == ALL_COMMANDS

    def test_unknown_opcode(self):
        with pytest.raises(EncodingError, match="opcode"):
            decode_item(b"\xff")

    def test_decode_past_end(self):
        with pytest.raises(EncodingError):
            decode_item(b"", 0)

    @given(
        start=st.integers(0, 2**40),
        access=st.integers(1, 64).map(lambda v: v * 8),
        stride=st.integers(0, 2**20),
        n=st.integers(1, 10_000),
        elem=st.sampled_from([1, 2, 4, 8]),
        signed=st.booleans(),
        port=st.integers(0, 255),
    )
    @settings(max_examples=200)
    def test_mem_port_round_trip_property(
        self, start, access, stride, n, elem, signed, port
    ):
        p = Affine2D(start, access, stride, n, elem, signed)
        command = SDMemPort(p, in_port(port))
        decoded, _ = decode_item(encode_item(command))
        assert decoded == command

    @given(
        value=st.integers(0, 2**64 - 1),
        n=st.integers(1, 2**31 - 1),
        port=st.integers(0, 255),
    )
    @settings(max_examples=100)
    def test_const_round_trip_property(self, value, n, port):
        command = SDConstPort(value, n, in_port(port))
        decoded, _ = decode_item(encode_item(command))
        assert decoded == command
