"""Unit + property tests for mini-Aladdin: DDG, scheduler, power/area, DSE."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.asic import (
    AsicDesign,
    TraceBuilder,
    estimate_power_area,
    explore_design_space,
    local_sram_kb,
    schedule_ddg,
    select_iso_performance,
)


def vector_scale_ddg(n=32, factor=3):
    t = TraceBuilder("scale")
    t.array("a", list(range(n)))
    t.array("out", [0] * n)
    c = t.const(factor)
    for i in range(n):
        t.store("out", i, t.mul(t.load("a", i), c))
    return t


class TestTraceBuilder:
    def test_computes_real_values(self):
        t = vector_scale_ddg(8, 5)
        assert t.array_values("out") == [i * 5 for i in range(8)]

    def test_all_ops_recorded(self):
        t = vector_scale_ddg(8)
        histogram = t.ddg.op_histogram()
        assert histogram == {"load": 8, "mul": 8, "store": 8}

    def test_data_dependences(self):
        t = TraceBuilder("dep")
        t.array("a", [1])
        t.array("o", [0])
        x = t.load("a", 0)
        y = t.add(x, t.const(1))
        t.store("o", 0, y)
        store_node = t.ddg.nodes[-1]
        assert y.node in store_node.deps

    def test_load_after_store_dependence(self):
        t = TraceBuilder("raw")
        t.array("a", [0])
        t.store("a", 0, t.const(5))
        loaded = t.load("a", 0)
        assert loaded.value == 5
        load_node = t.ddg.nodes[loaded.node]
        assert t.ddg.nodes[0].node_id in load_node.deps

    def test_store_after_load_dependence(self):
        t = TraceBuilder("war")
        t.array("a", [1])
        loaded = t.load("a", 0)
        t.store("a", 0, t.const(2))
        store_node = t.ddg.nodes[-1]
        assert loaded.node in store_node.deps

    def test_independent_elements_no_dependence(self):
        t = TraceBuilder("indep")
        t.array("a", [1, 2])
        t.store("a", 0, t.const(9))
        loaded = t.load("a", 1)
        assert t.ddg.nodes[loaded.node].deps == ()

    def test_traced_arithmetic(self):
        t = TraceBuilder("ops")
        t.array("x", [0])
        a, b = t.const(10), t.const(3)
        assert t.sub(a, b).value == 7
        assert t.div(a, b).value == 3
        assert t.minimum(a, b).value == 3
        assert t.maximum(a, b).value == 10
        assert t.compare_eq(a, a).value == 1
        assert t.select(t.const(0), a, b).value == 3
        assert t.shift_right(a, 1).value == 5
        assert t.special(lambda v: v + 100, a).value == 110

    def test_critical_path(self):
        t = TraceBuilder("chain")
        t.array("a", [1])
        v = t.load("a", 0)  # latency 2
        for _ in range(5):
            v = t.add(v, t.const(1))  # 5 x latency 1
        assert t.ddg.critical_path() == 7

    def test_unknown_op_kind(self):
        t = TraceBuilder("bad")
        with pytest.raises(KeyError):
            t.ddg.add("teleport", [])


class TestScheduling:
    def test_critical_path_is_lower_bound(self):
        ddg = vector_scale_ddg(16).ddg
        result = schedule_ddg(ddg, AsicDesign(unroll=16, partition=8))
        assert result.cycles >= ddg.critical_path()

    def test_more_resources_never_slower(self):
        ddg = vector_scale_ddg(64).ddg
        slow = schedule_ddg(ddg, AsicDesign(unroll=1, partition=1))
        fast = schedule_ddg(ddg, AsicDesign(unroll=8, partition=8))
        assert fast.cycles <= slow.cycles

    def test_resource_limits_respected(self):
        # 1 memory port: 64 loads + 64 stores serialise to >= 128 cycles
        ddg = vector_scale_ddg(64).ddg
        design = AsicDesign(unroll=1, partition=1, mem_ports_per_partition=1)
        result = schedule_ddg(ddg, design)
        assert result.cycles >= 128

    def test_busy_counters(self):
        ddg = vector_scale_ddg(8).ddg
        result = schedule_ddg(ddg, AsicDesign())
        assert result.resource_busy["mem"] == 16
        assert result.resource_busy["mul"] == 8

    @given(unroll=st.sampled_from([1, 2, 4, 8]), partition=st.sampled_from([1, 2, 4]))
    @settings(max_examples=12, deadline=None)
    def test_schedule_deterministic(self, unroll, partition):
        ddg = vector_scale_ddg(32).ddg
        design = AsicDesign(unroll=unroll, partition=partition)
        assert schedule_ddg(ddg, design).cycles == schedule_ddg(ddg, design).cycles


class TestPowerArea:
    def test_bigger_designs_cost_more(self):
        ddg = vector_scale_ddg(64).ddg
        small = estimate_power_area(ddg, schedule_ddg(ddg, AsicDesign(unroll=1)))
        big = estimate_power_area(ddg, schedule_ddg(ddg, AsicDesign(unroll=8)))
        assert big.area_mm2 > small.area_mm2
        assert big.power_mw > small.power_mw  # leakage dominates

    def test_sram_grows_with_partitioning(self):
        ddg = vector_scale_ddg(64).ddg
        assert local_sram_kb(ddg, AsicDesign(partition=8)) > local_sram_kb(
            ddg, AsicDesign(partition=1)
        )

    def test_energy_positive(self):
        ddg = vector_scale_ddg(16).ddg
        estimate = estimate_power_area(ddg, schedule_ddg(ddg, AsicDesign()))
        assert estimate.energy_mj > 0


class TestDse:
    def test_sweep_covers_grid(self):
        points = explore_design_space(vector_scale_ddg(32).ddg)
        assert len(points) == 20  # 5 unrolls x 4 partitions
        labels = {p.design.label() for p in points}
        assert "u1p1" in labels and "u16p8" in labels

    def test_iso_selection_prefers_band(self):
        points = explore_design_space(vector_scale_ddg(64).ddg)
        slowest = max(p.cycles for p in points)
        chosen = select_iso_performance(points, target_cycles=slowest)
        assert chosen.cycles <= slowest * 1.1

    def test_iso_selection_power_priority(self):
        points = explore_design_space(vector_scale_ddg(64).ddg)
        target = max(p.cycles for p in points) * 2  # everything qualifies
        chosen = select_iso_performance(points, target)
        assert chosen.power_mw == min(p.power_mw for p in points)

    def test_unreachable_target_picks_fastest_available(self):
        points = explore_design_space(vector_scale_ddg(64).ddg)
        chosen = select_iso_performance(points, target_cycles=1)
        fastest = min(p.cycles for p in points)
        assert chosen.cycles == fastest

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            select_iso_performance([], 100)
