"""Integration tests: every MachSuite kernel verifies end-to-end (small sizes)."""

import pytest

from repro.workloads.common import run_and_verify
from repro.workloads.machsuite import (
    MACHSUITE,
    build_bfs,
    build_gemm,
    build_md_knn,
    build_spmv_crs,
    build_spmv_ellpack,
    build_stencil2d,
    build_stencil3d,
    build_viterbi,
)


class TestGemm:
    def test_small(self):
        result = run_and_verify(build_gemm(n=8))
        assert result.stats.instances_fired == 8 * 8 * 1

    def test_shape_checked(self):
        with pytest.raises(ValueError):
            build_gemm(n=10)

    def test_reference(self):
        from repro.workloads.machsuite.gemm import reference_gemm

        a = [[1, 2], [3, 4]]
        b = [[5, 6], [7, 8]]
        assert reference_gemm(a, b) == [[19, 22], [43, 50]]


class TestStencils:
    def test_stencil2d_small(self):
        run_and_verify(build_stencil2d(width=10, height=6))

    def test_stencil2d_shape_checked(self):
        with pytest.raises(ValueError):
            build_stencil2d(width=11, height=6)

    def test_stencil3d_small(self):
        run_and_verify(build_stencil3d(side=6))

    def test_stencil3d_reference_boundary(self):
        from repro.workloads.machsuite.stencil3d import (
            C0,
            C1,
            reference_stencil3d,
        )

        side = 3
        grid = list(range(27))
        out = reference_stencil3d(grid, side)
        assert len(out) == 1
        centre = grid[13]
        neighbours = grid[14] + grid[12] + grid[16] + grid[10] + grid[22] + grid[4]
        assert out[0] == C0 * centre + C1 * neighbours


class TestSpmv:
    def test_crs_small(self):
        run_and_verify(build_spmv_crs(n=16))

    def test_ellpack_small(self):
        run_and_verify(build_spmv_ellpack(n=16, ell=8))

    def test_crs_single_element_rows_possible(self):
        # generator may produce rows with nnz as low as 2; run a few seeds
        for seed in (1, 2, 3):
            run_and_verify(build_spmv_crs(n=12, seed=seed))

    def test_reference(self):
        from repro.workloads.machsuite.spmv import reference_spmv

        values = [[2, 3], [4]]
        columns = [[0, 2], [1]]
        vector = [10, 20, 30]
        assert reference_spmv(values, columns, vector) == [110, 80]


class TestBfs:
    def test_small(self):
        built = build_bfs(n=24, e=60)
        assert built.meta["depth"] >= 1
        run_and_verify(built)

    def test_reference_levels(self):
        from repro.workloads.machsuite.bfs import reference_bfs

        edges = [(0, 1), (1, 2), (0, 3)]
        assert reference_bfs(edges, 5, 0) == [0, 1, 2, 1, -1]

    def test_pull_formulation_handles_unreachable(self):
        # node with no in-edges stays at the sentinel
        run_and_verify(build_bfs(n=16, e=20, seed=7))


class TestMdKnn:
    def test_small(self):
        run_and_verify(build_md_knn(n=16, k=4))

    def test_reference_symmetry(self):
        from repro.workloads.machsuite.md_knn import reference_md

        pos = [(0, 0, 0), (2, 0, 0)]
        forces = reference_md(pos, [[1], [0]])
        # equal and opposite forces along x
        assert forces[0][0] == -forces[1][0]
        assert forces[0][1] == 0 and forces[0][2] == 0

    def test_div_semantics_match_hardware(self):
        from repro.core.dfg.instructions import get_operation
        from repro.workloads.machsuite.md_knn import _div_trunc

        div = get_operation("div")
        for a, b in [(7, 2), (-7, 2), (100, 7), (5, 0)]:
            hw = div.evaluate([a & (2**64 - 1), b & (2**64 - 1)])
            hw_signed = hw - 2**64 if hw >= 2**63 else hw
            assert hw_signed == _div_trunc(a, b)


class TestViterbi:
    def test_small(self):
        run_and_verify(build_viterbi(n_states=8, n_steps=6))

    def test_shape_checked(self):
        with pytest.raises(ValueError):
            build_viterbi(n_states=6)

    def test_reference_dp(self):
        from repro.workloads.machsuite.viterbi import reference_viterbi

        init = [0, 10]
        trans = [[1, 5], [5, 1]]
        emit = [[0, 0], [2, 3]]
        # state 0: 2 + min(0+1, 10+5) = 3; state 1: 3 + min(0+5, 10+1) = 8
        assert reference_viterbi(init, trans, emit) == [3, 8]


class TestFft:
    def test_small(self):
        from repro.workloads.machsuite import build_fft

        run_and_verify(build_fft(n=16))

    def test_power_of_two_checked(self):
        from repro.workloads.machsuite import build_fft

        with pytest.raises(ValueError):
            build_fft(n=24)

    def test_reference_against_dft(self):
        # The fixed-point FFT must approximate the exact DFT closely.
        import cmath

        from repro.workloads.machsuite.fft import reference_fft

        n = 16
        real = [(i * 37) % 101 - 50 for i in range(n)]
        imag = [0] * n
        got_re, got_im = reference_fft(real, imag)
        for k in range(n):
            exact = sum(
                real[j] * cmath.exp(-2j * cmath.pi * j * k / n)
                for j in range(n)
            )
            assert abs(got_re[k] - exact.real) < 8  # Q12 rounding error
            assert abs(got_im[k] - exact.imag) < 8


class TestRegistry:
    def test_paper_workloads_plus_extensions_registered(self):
        assert set(MACHSUITE) == {
            "bfs", "spmv-crs", "spmv-ellpack", "stencil", "stencil3d",
            "gemm", "md", "viterbi", "fft", "nw", "backprop",
        }

    def test_registry_entries_complete(self):
        for name, (builder, ddg_fn, census_fn, base_fn) in MACHSUITE.items():
            census = census_fn()
            assert census.total_instructions > 0
            base = base_fn()
            assert base.resources["mem"] >= 1

    @pytest.mark.parametrize("name", sorted(MACHSUITE))
    def test_ddg_builders_produce_graphs(self, name):
        ddg = MACHSUITE[name][1]()
        assert ddg.num_ops > 100
        assert ddg.critical_path() > 0


class TestNw:
    def test_small(self):
        from repro.workloads.machsuite.nw import build_nw

        run_and_verify(build_nw(length=10))

    def test_reference_known_alignment(self):
        from repro.workloads.machsuite.nw import GAP, MATCH, reference_nw

        # identical sequences: diagonal of matches
        score = reference_nw([1, 2, 3], [1, 2, 3])
        assert score[3][3] == 3 * MATCH
        assert score[0][3] == 3 * GAP

    def test_rectangularish_wavefront(self):
        # non-trivial sequences still verify end-to-end
        from repro.workloads.machsuite.nw import build_nw

        for seed in (3, 9):
            run_and_verify(build_nw(length=8, seed=seed))


class TestBackprop:
    def test_small(self):
        from repro.workloads.machsuite.backprop import build_backprop

        run_and_verify(build_backprop(n_in=6, n_out=8))

    def test_shape_checked(self):
        from repro.workloads.machsuite.backprop import build_backprop

        with pytest.raises(ValueError):
            build_backprop(n_out=10)

    def test_reference_learning_direction(self):
        from repro.workloads.machsuite.backprop import reference_backprop

        # positive activation x positive delta must decrease the weight
        new_w, err = reference_backprop([[100]], [32], [32])
        assert new_w[0][0] < 100
        assert err == [100 * 32]


class TestExtensionsRegistered:
    def test_all_footnote3_extensions(self):
        assert {"fft", "nw", "backprop"} <= set(MACHSUITE)
