"""Golden-stats regression suite: every workload, both execution modes.

Each workload in ``repro.workloads`` (the full MachSuite port and every
DNN layer) runs through the simulator twice — batched fast path and
per-cycle slow path — and the complete observable fingerprint (SimStats,
memory traffic, scratchpad traffic, command timeline) must:

1. match *between the two modes* bit-for-bit (the fast path is a pure
   optimisation — docs/PERFORMANCE.md), and
2. match the checked-in golden JSON under ``tests/golden/`` (the
   regression lock: any change to simulator timing shows up as a diff
   here and must be re-blessed with ``--update-golden``).
"""

import json
import pathlib

import pytest

from repro.sim.softbrain import SoftbrainParams
from repro.workloads import run_and_verify
from repro.workloads.dnn import DNN_LAYERS, build_dnn_layer
from repro.workloads.machsuite import MACHSUITE

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


def fingerprint(result):
    """Everything a simulation observably produced, as JSON-stable data."""
    return {
        "stats": result.stats.to_dict(),
        "memory": dict(sorted(vars(result.memory.stats).items())),
        "scratchpad": dict(sorted(vars(result.scratchpad.stats).items())),
        "timeline": [
            [t.index, t.enqueued, t.dispatched, t.completed]
            for t in result.timeline
        ],
    }


def _machsuite_case(name):
    build = MACHSUITE[name][0]
    return lambda: build()


def _dnn_case(layer):
    return lambda: build_dnn_layer(layer)


CASES = [(f"machsuite-{name}", _machsuite_case(name)) for name in MACHSUITE]
CASES += [(f"dnn-{layer.name}", _dnn_case(layer)) for layer in DNN_LAYERS]


@pytest.mark.parametrize(
    "name,make", CASES, ids=[name for name, _ in CASES]
)
def test_golden_stats(name, make, update_golden):
    fast = run_and_verify(make(), params=SoftbrainParams(fast_path=True))
    slow = run_and_verify(make(), params=SoftbrainParams(fast_path=False))
    got = fingerprint(fast)

    # Mode equivalence first: a divergence here is a fast-path bug even
    # if both modes moved away from the golden file together.
    assert got == fingerprint(slow), (
        f"{name}: fast path diverged from slow path")

    path = GOLDEN_DIR / f"{name}.json"
    if update_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(got, indent=1, sort_keys=True) + "\n")
        return
    assert path.exists(), (
        f"no golden file for {name}; run pytest with --update-golden")
    golden = json.loads(path.read_text())
    assert got == golden, (
        f"{name}: stats drifted from tests/golden/{name}.json — if the "
        f"timing change is intended, re-bless with --update-golden")
