"""Unit tests for the builder API and the DFG text language."""

import pytest

from repro.core.dfg import (
    Constant,
    DfgBuilder,
    DfgError,
    DfgParseError,
    ValueRef,
    dfg_to_text,
    parse_dfg,
)

DOT_TEXT = """
; dot product
input A 3
input B 3
m0 = mul A.0 B.0
m1 = mul A.1 B.1
m2 = mul A.2 B.2
s0 = add m0 m1
s1 = add s0 m2
output C s1
"""


class TestBuilder:
    def test_port_handle_indexing(self):
        b = DfgBuilder("x")
        a = b.input("A", 3)
        assert a[2] == ValueRef("A", 2)
        assert len(a) == 3
        assert list(a) == [ValueRef("A", i) for i in range(3)]

    def test_port_handle_bounds(self):
        b = DfgBuilder("x")
        a = b.input("A", 2)
        with pytest.raises(IndexError):
            a[2]

    def test_int_operand_becomes_constant(self):
        b = DfgBuilder("x")
        a = b.input("A", 1)
        b.output("O", b.add(a[0], 41))
        dfg = b.build()
        assert dfg.execute({"A": [1]}) == {"O": [42]}

    def test_named_instruction(self):
        b = DfgBuilder("x")
        a = b.input("A", 1)
        ref = b.op("pass", a[0], name="mycopy")
        b.output("O", ref)
        assert "mycopy" in b.build(validate=False).instructions

    def test_reduce_tree_balanced(self):
        b = DfgBuilder("x")
        a = b.input("A", 8)
        b.output("O", b.reduce_tree("add", list(a)))
        dfg = b.build()
        assert dfg.execute({"A": list(range(8))}) == {"O": [28]}
        # balanced: depth is log2(8) adds = 3 levels
        assert dfg.latency == 3

    def test_reduce_tree_odd_count(self):
        b = DfgBuilder("x")
        a = b.input("A", 5)
        b.output("O", b.reduce_tree("max", list(a)))
        dfg = b.build()
        assert dfg.execute({"A": [3, 9, 1, 7, 5]}) == {"O": [9]}

    def test_reduce_tree_single_value(self):
        b = DfgBuilder("x")
        a = b.input("A", 1)
        b.output("O", b.reduce_tree("add", [a[0]]))
        dfg = b.build()
        assert dfg.execute({"A": [4]}) == {"O": [4]}

    def test_reduce_tree_empty_rejected(self):
        b = DfgBuilder("x")
        with pytest.raises(ValueError):
            b.reduce_tree("add", [])

    def test_build_validates(self):
        b = DfgBuilder("x")
        b.input("A", 1)
        with pytest.raises(DfgError):
            b.build()  # no outputs

    def test_output_accepts_constant(self):
        b = DfgBuilder("x")
        a = b.input("A", 1)
        b.op("pass", a[0], name="used")
        b.output("O", [ValueRef("used"), Constant(7)])
        dfg = b.build()
        out = dfg.execute({"A": [3]})
        assert out["O"] == [3, 7]


class TestParser:
    def test_parse_and_execute(self):
        dfg = parse_dfg(DOT_TEXT, "dot")
        out = dfg.execute({"A": [1, 2, 3], "B": [4, 5, 6]})
        assert out == {"C": [32]}

    def test_default_width_one(self):
        dfg = parse_dfg("input A\nx = pass A\noutput O x")
        assert dfg.inputs["A"].width == 1

    def test_immediate_operand(self):
        dfg = parse_dfg("input A\nx = add A #10\noutput O x")
        assert dfg.execute({"A": [5]}) == {"O": [15]}

    def test_hex_immediate(self):
        dfg = parse_dfg("input A\nx = and A #0xFF\noutput O x")
        assert dfg.execute({"A": [0x1234]}) == {"O": [0x34]}

    def test_lane_bits_suffix(self):
        dfg = parse_dfg("input A\nx = hadd A @16\noutput O x")
        inst = dfg.instructions["x"]
        assert inst.lane_bits == 16

    def test_comments_and_blank_lines_ignored(self):
        dfg = parse_dfg("\n; hi\ninput A ; trailing\nx = pass A\noutput O x\n\n")
        assert "x" in dfg.instructions

    def test_error_includes_line_number(self):
        with pytest.raises(DfgParseError, match="line 2"):
            parse_dfg("input A\nwat is this\noutput O A")

    def test_unknown_op_rejected(self):
        with pytest.raises(DfgParseError):
            parse_dfg("input A\nx = zorp A\noutput O x")

    def test_multi_word_output(self):
        dfg = parse_dfg(
            "input A 2\nx = pass A.0\ny = pass A.1\noutput O x y"
        )
        assert dfg.outputs["O"].width == 2

    def test_output_constant_rejected(self):
        with pytest.raises(DfgParseError, match="value refs"):
            parse_dfg("input A\nx = pass A\noutput O #5")

    def test_bad_immediate(self):
        with pytest.raises(DfgParseError, match="immediate"):
            parse_dfg("input A\nx = add A #zz\noutput O x")


class TestRoundTrip:
    def test_serialise_then_parse_same_semantics(self):
        original = parse_dfg(DOT_TEXT, "dot")
        text = dfg_to_text(original)
        reparsed = parse_dfg(text, "dot2")
        inputs = {"A": [7, 8, 9], "B": [1, 2, 3]}
        assert original.execute(inputs) == reparsed.execute(inputs)

    def test_serialise_preserves_lane_bits(self):
        dfg = parse_dfg("input A\nx = hadd A @16\noutput O x")
        assert "@16" in dfg_to_text(dfg)

    def test_serialise_preserves_constants(self):
        dfg = parse_dfg("input A\nx = add A #42\noutput O x")
        assert "#42" in dfg_to_text(dfg)
