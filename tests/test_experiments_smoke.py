"""Smoke tests for the experiment harnesses (full runs live in benchmarks/).

These use one small workload per harness so the full pipeline — simulate,
baseline models, ASIC DSE, figure derivation — is covered by the fast test
suite without the benchmark suite's runtime.
"""

import pytest

from repro.experiments import (
    dnn_comparison,
    format_figure11,
    format_figure12,
    format_figure13,
    format_figure14,
    format_figure15,
    format_sweep,
    machsuite_comparison,
    sweep_dram_bandwidth,
)
from repro.workloads.dnn.layers import PoolLayer


class TestDnnHarness:
    def test_single_layer_row(self):
        layer = PoolLayer("smoke-pool", in_w=16, in_h=16, maps=8, window=2)
        rows = dnn_comparison([layer])
        (row,) = rows
        assert row.cpu_cycles > 0
        assert row.softbrain_speedup > 0
        assert row.gpu_speedup > 0
        assert row.diannao_speedup > 0
        assert row.softbrain_power_mw > 0
        text = format_figure11(rows)
        assert "smoke-pool" in text and "GM" in text


class TestMachSuiteHarness:
    @pytest.fixture(scope="class")
    def rows(self):
        return machsuite_comparison(["backprop"])

    def test_row_fields(self, rows):
        (row,) = rows
        assert row.softbrain_cycles > 0
        assert row.asic.cycles > 0
        assert row.softbrain_power_mw > 0
        assert row.asic.power_mw > 0

    def test_all_figures_render(self, rows):
        for formatter in (
            format_figure12,
            format_figure13,
            format_figure14,
            format_figure15,
        ):
            text = formatter(rows)
            assert "backprop" in text

    def test_efficiency_identities(self, rows):
        (row,) = rows
        # energy efficiency == power efficiency x speedup (by construction)
        assert row.softbrain_energy_eff == pytest.approx(
            row.softbrain_power_eff * row.softbrain_speedup
        )
        assert row.asic_energy_eff == pytest.approx(
            row.asic_power_eff * row.asic_speedup
        )

    def test_area_ratio_positive(self, rows):
        (row,) = rows
        assert 0 < row.asic_area_ratio < 1


class TestSensitivityHarness:
    def test_dram_sweep_monotone_for_bw_bound(self):
        from repro.workloads.machsuite import build_stencil2d

        result = sweep_dram_bandwidth(
            lambda **kw: build_stencil2d(width=18, height=10, **kw),
            gaps=(2, 8, 32),
        )
        cycles = [p.cycles for p in result.points]
        assert cycles == sorted(cycles)  # less bandwidth, more cycles
        assert "stencil" in format_sweep(result)
