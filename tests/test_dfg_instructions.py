"""Unit tests for functional-unit operation semantics."""

import pytest

from repro.core.dfg.instructions import (
    ACCUMULATOR_OPS,
    Operation,
    accumulate_combine,
    accumulator_identity,
    all_operations,
    fixed_point_sigmoid,
    from_signed,
    get_operation,
    join_lanes,
    mask_word,
    split_lanes,
    to_signed,
)


class TestWordHelpers:
    def test_mask_word_wraps(self):
        assert mask_word(2**64) == 0
        assert mask_word(2**64 + 5) == 5
        assert mask_word(-1) == 2**64 - 1

    def test_to_signed_positive(self):
        assert to_signed(5, 16) == 5

    def test_to_signed_negative(self):
        assert to_signed(0xFFFF, 16) == -1
        assert to_signed(0x8000, 16) == -(2**15)

    def test_from_signed_round_trip(self):
        for value in (-5, 0, 7, -(2**15), 2**15 - 1):
            assert to_signed(from_signed(value, 16), 16) == value

    def test_split_join_lanes_inverse(self):
        word = 0x0123_4567_89AB_CDEF
        for bits in (16, 32, 64):
            assert join_lanes(split_lanes(word, bits), bits) == word

    def test_split_lanes_order_low_first(self):
        word = 0x0004_0003_0002_0001
        assert split_lanes(word, 16) == [1, 2, 3, 4]


class TestRegistry:
    def test_get_operation_known(self):
        assert get_operation("add").name == "add"

    def test_get_operation_case_insensitive(self):
        assert get_operation("Mul").name == "mul"

    def test_get_operation_unknown_lists_known(self):
        with pytest.raises(KeyError, match="add"):
            get_operation("frobnicate")

    def test_all_operations_sorted_unique(self):
        names = [op.name for op in all_operations()]
        assert names == sorted(names)
        assert len(names) == len(set(names))

    def test_expected_ops_present(self):
        names = {op.name for op in all_operations()}
        expected = {
            "add", "sub", "mul", "div", "min", "max", "select", "pass",
            "acc", "accmin", "accmax", "hadd", "sigmoid", "eq", "shl",
        }
        assert expected <= names


class TestArithmetic:
    def test_add_simple(self):
        assert get_operation("add").evaluate([3, 4]) == 7

    def test_add_wraps_at_64(self):
        assert get_operation("add").evaluate([2**64 - 1, 1]) == 0

    def test_sub_negative_result_encoding(self):
        assert get_operation("sub").evaluate([3, 5]) == mask_word(-2)

    def test_mul_signed(self):
        result = get_operation("mul").evaluate([mask_word(-3), 4])
        assert to_signed(result, 64) == -12

    def test_div_truncates_toward_zero(self):
        div = get_operation("div")
        assert to_signed(div.evaluate([7, 2]), 64) == 3
        assert to_signed(div.evaluate([mask_word(-7), 2]), 64) == -3

    def test_div_by_zero_yields_all_ones(self):
        assert get_operation("div").evaluate([5, 0]) == mask_word(-1)

    def test_mod_sign_follows_dividend(self):
        mod = get_operation("mod")
        assert to_signed(mod.evaluate([7, 3]), 64) == 1
        assert to_signed(mod.evaluate([mask_word(-7), 3]), 64) == -1

    def test_min_max(self):
        assert to_signed(get_operation("min").evaluate([mask_word(-2), 5]), 64) == -2
        assert get_operation("max").evaluate([mask_word(-2), 5]) == 5

    def test_abs_neg(self):
        assert get_operation("abs").evaluate([mask_word(-9)]) == 9
        assert to_signed(get_operation("neg").evaluate([9]), 64) == -9

    def test_arity_checked(self):
        with pytest.raises(ValueError, match="expects 2"):
            get_operation("add").evaluate([1])


class TestSubword:
    def test_add_16bit_lanes_independent(self):
        a = join_lanes([1, 2, 3, 4], 16)
        b = join_lanes([10, 20, 30, 40], 16)
        result = get_operation("add").evaluate([a, b], 16)
        assert split_lanes(result, 16) == [11, 22, 33, 44]

    def test_add_16bit_no_carry_across_lanes(self):
        a = join_lanes([0xFFFF, 0], 16)  # lane 0 = -1
        b = join_lanes([1, 0], 16)
        result = get_operation("add").evaluate([a, b], 16)
        assert split_lanes(result, 16)[0] == 0
        assert split_lanes(result, 16)[1] == 0  # no carry into lane 1

    def test_mul_16bit_lanes(self):
        a = join_lanes([from_signed(-3, 16), 5, 0, 1], 16)
        b = join_lanes([7, 7, 7, 7], 16)
        lanes = split_lanes(get_operation("mul").evaluate([a, b], 16), 16)
        assert [to_signed(v, 16) for v in lanes] == [-21, 35, 0, 7]

    def test_32bit_lanes(self):
        a = join_lanes([100, from_signed(-100, 32)], 32)
        b = join_lanes([3, 3], 32)
        lanes = split_lanes(get_operation("mul").evaluate([a, b], 32), 32)
        assert [to_signed(v, 32) for v in lanes] == [300, -300]

    def test_bad_lane_width_rejected(self):
        with pytest.raises(ValueError, match="lane width"):
            get_operation("add").evaluate([1, 2], 8)


class TestHorizontalReductions:
    def test_hadd_sums_lanes(self):
        word = join_lanes([1, 2, 3, 4], 16)
        assert get_operation("hadd").evaluate([word], 16) == 10

    def test_hadd_signed_lanes(self):
        word = join_lanes([from_signed(-5, 16), 3, 0, 0], 16)
        assert to_signed(get_operation("hadd").evaluate([word], 16), 64) == -2

    def test_hmin_hmax(self):
        word = join_lanes([from_signed(-5, 16), 3, 100, 0], 16)
        assert to_signed(get_operation("hmin").evaluate([word], 16), 64) == -5
        assert get_operation("hmax").evaluate([word], 16) == 100

    def test_hadd_32(self):
        word = join_lanes([7, from_signed(-3, 32)], 32)
        assert get_operation("hadd").evaluate([word], 32) == 4


class TestComparesAndSelect:
    def test_compares_produce_flags(self):
        assert get_operation("lt").evaluate([mask_word(-1), 0]) == 1
        assert get_operation("gt").evaluate([mask_word(-1), 0]) == 0
        assert get_operation("eq").evaluate([5, 5]) == 1
        assert get_operation("ne").evaluate([5, 5]) == 0
        assert get_operation("ge").evaluate([5, 5]) == 1
        assert get_operation("le").evaluate([6, 5]) == 0

    def test_select_by_predicate(self):
        select = get_operation("select")
        assert select.evaluate([1, 11, 22]) == 11
        assert select.evaluate([0, 11, 22]) == 22

    def test_shifts(self):
        assert get_operation("shl").evaluate([1, 4]) == 16
        assert get_operation("shr").evaluate([16, 4]) == 1
        # arithmetic right shift on negatives
        assert to_signed(get_operation("shr").evaluate([mask_word(-8), 1]), 64) == -4


class TestSigmoid:
    def test_sigmoid_midpoint(self):
        assert fixed_point_sigmoid(0) == 128  # 0.5 in Q8

    def test_sigmoid_saturates(self):
        assert fixed_point_sigmoid(10_000) == 256
        assert fixed_point_sigmoid(-10_000) == 0

    def test_sigmoid_monotone(self):
        values = [fixed_point_sigmoid(x) for x in range(-600, 600, 7)]
        assert values == sorted(values)


class TestAccumulators:
    def test_identity_acc_is_zero(self):
        assert accumulator_identity("acc", 64) == 0

    def test_identity_accmin_is_lane_max(self):
        word = accumulator_identity("accmin", 16)
        assert split_lanes(word, 16) == [0x7FFF] * 4

    def test_identity_accmax_is_lane_min(self):
        word = accumulator_identity("accmax", 16)
        assert all(to_signed(v, 16) == -(2**15) for v in split_lanes(word, 16))

    def test_identity_unknown_rejected(self):
        with pytest.raises(KeyError):
            accumulator_identity("add", 64)

    def test_combine_acc_adds(self):
        assert accumulate_combine("acc", 10, 5, 64) == 15

    def test_combine_accmin(self):
        result = accumulate_combine("accmin", mask_word(-1), 5, 64)
        assert to_signed(result, 64) == -1

    def test_combine_lanewise_16(self):
        state = join_lanes([1, 1, 1, 1], 16)
        value = join_lanes([10, 20, 30, 40], 16)
        result = accumulate_combine("acc", state, value, 16)
        assert split_lanes(result, 16) == [11, 21, 31, 41]

    def test_all_accumulator_ops_registered(self):
        for name in ACCUMULATOR_OPS:
            assert get_operation(name).name == name
