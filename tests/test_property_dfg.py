"""Property-based tests (hypothesis) for core data structures and invariants.

Key invariants:

* ``CompiledDfg`` (the simulator's fast executor) is observationally
  equivalent to ``Dfg.execute`` on random graphs and random inputs.
* The affine AGU's line requests partition the element stream exactly —
  every element served once, in order, and every request within one line.
* Random valid DFGs always schedule with initiation interval 1 and with
  placement/capability/delay invariants intact.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.cgra import broadly_provisioned
from repro.core.compiler import schedule
from repro.core.dfg import Dfg, ValueRef
from repro.core.dfg.instructions import WORD_MASK
from repro.core.isa.patterns import Affine2D, LINE_BYTES, affine_requests
# The random-DFG pool lives in the fuzz package now (the fuzzer and these
# property tests share one generator); re-exported here for hypothesis use.
from repro.fuzz.generators import RANDOM_OPS, random_dfg, random_inputs
from repro.sim.cgra_exec import CompiledDfg

__all__ = ["RANDOM_OPS", "random_dfg", "random_inputs"]


class TestCompiledEquivalence:
    @given(
        seed=st.integers(0, 10_000),
        num_inputs=st.integers(1, 3),
        num_insts=st.integers(1, 25),
        data_seed=st.integers(0, 100),
    )
    @settings(max_examples=150, deadline=None)
    def test_compiled_matches_interpreter(
        self, seed, num_inputs, num_insts, data_seed
    ):
        dfg = random_dfg(seed, num_inputs, num_insts)
        compiled = CompiledDfg(dfg)
        state_i = dfg.make_state()
        state_c = compiled.make_state()
        for round_no in range(3):
            inputs = random_inputs(dfg, data_seed + round_no)
            expected = dfg.execute(inputs, state_i)
            got = compiled.run(inputs, state_c)
            assert got == expected

    @given(seed=st.integers(0, 3_000), rounds=st.integers(1, 12))
    @settings(max_examples=60, deadline=None)
    def test_accumulator_state_equivalence(self, seed, rounds):
        rng = random.Random(seed)
        dfg = Dfg("accrand")
        dfg.add_input("A", 1)
        dfg.add_input("R", 1)
        op = rng.choice(["acc", "accmin", "accmax"])
        dfg.add_instruction("a", op, [ValueRef("A", 0), ValueRef("R", 0)])
        dfg.add_output("O", [ValueRef("a")])
        compiled = CompiledDfg(dfg)
        state_i, state_c = dfg.make_state(), compiled.make_state()
        for _ in range(rounds):
            inputs = {
                "A": [rng.randint(0, WORD_MASK)],
                "R": [rng.randint(0, 1)],
            }
            assert compiled.run(inputs, state_c) == dfg.execute(inputs, state_i)


class TestAffinePartition:
    @given(
        start=st.integers(0, 10_000),
        access_words=st.integers(1, 32),
        stride=st.integers(0, 600),
        strides=st.integers(1, 40),
        elem=st.sampled_from([2, 4, 8]),
    )
    @settings(max_examples=200, deadline=None)
    def test_requests_partition_stream(
        self, start, access_words, stride, strides, elem
    ):
        pattern = Affine2D(start, access_words * elem, stride, strides, elem)
        served = [
            addr
            for request in affine_requests(pattern)
            for addr in request.element_addrs
        ]
        assert served == list(pattern.element_addresses())

    @given(
        start=st.integers(0, 10_000),
        access_words=st.integers(1, 32),
        stride=st.integers(0, 600),
        strides=st.integers(1, 40),
    )
    @settings(max_examples=200, deadline=None)
    def test_requests_stay_in_line(self, start, access_words, stride, strides):
        pattern = Affine2D(start, access_words * 8, stride, strides, 8)
        for request in affine_requests(pattern):
            assert request.line_addr % LINE_BYTES == 0
            for addr in request.element_addrs:
                assert request.line_addr <= addr < request.line_addr + LINE_BYTES


class TestSchedulerInvariants:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_small_dfgs_schedule(self, seed):
        rng = random.Random(seed + 500)
        dfg = random_dfg(seed + 500, rng.randint(1, 2), rng.randint(2, 10))
        if dfg.num_instructions > 18:
            pytest.skip("fabric too small for this sample")
        fabric = broadly_provisioned()
        try:
            config = schedule(dfg, fabric)
        except Exception as exc:  # port shapes may not fit; that's fine
            from repro.core.compiler import SchedulingError

            assert isinstance(exc, SchedulingError)
            return
        assert config.initiation_interval == 1
        coords = list(config.placement.values())
        assert len(coords) == len(set(coords))
        for name, coord in config.placement.items():
            assert fabric.pes[coord].supports(dfg.instructions[name].op.name)
        assert config.latency >= dfg.latency
