"""Targeted tests for the microarchitectural mechanisms of Section 4.

Each test isolates one mechanism — scratch barriers, the balance unit,
all-requests-in-flight, indirect-AGU coalescing — and checks both its
functional effect and its performance signature.
"""

import pytest

from repro.cgra import broadly_provisioned, dnn_provisioned
from repro.core.compiler import schedule
from repro.core.dfg import parse_dfg
from repro.core.isa import StreamProgram
from repro.sim import MemorySystem, SoftbrainParams, run_program
from repro.workloads.common import read_words, write_words


def passthrough(fabric):
    return schedule(parse_dfg("input A\nx = pass A\noutput O x", "copy"), fabric)


class TestScratchBarriers:
    def test_write_barrier_orders_read_after_write(self):
        fabric = dnn_provisioned()
        memory = MemorySystem()
        write_words(memory, 0, [11, 22])
        program = StreamProgram("wr-then-rd", passthrough(fabric))
        program.mem_scratch(0, 16, 16, 1, 0)
        program.barrier_scratch_wr()
        program.scratch_port(0, 16, 16, 1, "A")
        program.port_mem("O", 16, 16, 1, 0x100)
        program.barrier_all()
        run_program(program, fabric=fabric, memory=memory)
        assert read_words(memory, 0x100, 2) == [11, 22]

    def test_read_barrier_orders_overwrite(self):
        # read old contents, barrier, overwrite, barrier, read new contents
        fabric = dnn_provisioned()
        memory = MemorySystem()
        write_words(memory, 0, [1, 2])
        write_words(memory, 0x40, [3, 4])
        program = StreamProgram("rd-then-wr", passthrough(fabric))
        program.mem_scratch(0, 16, 16, 1, 0)
        program.barrier_scratch_wr()
        program.scratch_port(0, 16, 16, 1, "A")
        program.barrier_scratch_rd()  # overwrite must wait for this read
        program.mem_scratch(0x40, 16, 16, 1, 0)
        program.barrier_scratch_wr()
        program.scratch_port(0, 16, 16, 1, "A")
        program.port_mem("O", 32, 32, 1, 0x100)
        program.barrier_all()
        run_program(program, fabric=fabric, memory=memory)
        assert read_words(memory, 0x100, 4) == [1, 2, 3, 4]


class TestIndirectCoalescing:
    def _gather(self, indices, **mem_kwargs):
        fabric = broadly_provisioned()
        memory = MemorySystem()
        write_words(memory, 0x1000, list(range(0, 2048, 1)))
        write_words(memory, 0x8000, indices)
        memory.warm(0x1000, 2048 * 8)
        memory.warm(0x8000, len(indices) * 8)
        program = StreamProgram("g", passthrough(fabric))
        program.mem_to_indirect(0x8000, len(indices), 0)
        program.ind_port_port(0, 0x1000, "A", len(indices))
        program.port_mem("O", len(indices) * 8, len(indices) * 8, 1, 0x20000)
        program.barrier_all()
        result = run_program(program, fabric=fabric, memory=memory)
        got = read_words(memory, 0x20000, len(indices))
        assert got == [i for i in indices]
        return result

    def test_sequential_indices_coalesce(self):
        seq = self._gather(list(range(32)))
        scattered = self._gather([(i * 67) % 1024 for i in range(32)])
        # sequential gathers need fewer memory reads than scattered ones
        assert seq.memory.stats.reads < scattered.memory.stats.reads


class TestBalanceUnit:
    def test_unbalanced_ports_both_served(self):
        # Two input streams of very different shapes must both complete:
        # one strided (slow, many lines), one linear (fast).
        fabric = dnn_provisioned()
        dfg = parse_dfg(
            "input A\ninput B\nx = add A B\noutput O x", "adder"
        )
        config = schedule(dfg, fabric)
        memory = MemorySystem()
        n = 32
        write_words(memory, 0, list(range(4096)))
        program = StreamProgram("bal", config)
        program.mem_port(0, n * 8, n * 8, 1, "A")  # linear
        program.mem_port(0, 512, 8, n, "B")  # strided: line per element
        program.port_mem("O", n * 8, n * 8, 1, 0x10000)
        program.barrier_all()
        result = run_program(program, fabric=fabric, memory=memory)
        assert result.stats.instances_fired == n

    def test_ablation_flags_accepted(self):
        fabric = dnn_provisioned()
        memory = MemorySystem()
        write_words(memory, 0, [5])
        program = StreamProgram("flags", passthrough(fabric))
        program.mem_port(0, 8, 8, 1, "A")
        program.port_mem("O", 8, 8, 1, 0x100)
        program.barrier_all()
        result = run_program(
            program,
            fabric=fabric,
            memory=memory,
            params=SoftbrainParams(
                balance_unit=False, all_requests_in_flight=False
            ),
        )
        assert read_words(memory, 0x100, 1) == [5]


class TestAllRequestsInFlight:
    def _back_to_back(self, enabled):
        fabric = dnn_provisioned()
        memory = MemorySystem()
        write_words(memory, 0, list(range(256)))
        memory.warm(0, 2048)
        program = StreamProgram("b2b", passthrough(fabric))
        # 16 short same-port streams back to back
        for i in range(16):
            program.mem_port(i * 128, 128, 128, 1, "A")
        program.port_mem("O", 2048, 2048, 1, 0x10000)
        program.barrier_all()
        result = run_program(
            program,
            fabric=fabric,
            memory=memory,
            params=SoftbrainParams(all_requests_in_flight=enabled),
        )
        assert read_words(memory, 0x10000, 256) == list(range(256))
        return result.cycles

    def test_overlap_helps_back_to_back_streams(self):
        assert self._back_to_back(True) < self._back_to_back(False)


class TestMemoryWriteVisibility:
    def test_store_then_load_same_region_with_barrier(self):
        fabric = dnn_provisioned()
        memory = MemorySystem()
        write_words(memory, 0, [7, 8])
        program = StreamProgram("rmw", passthrough(fabric))
        program.mem_port(0, 16, 16, 1, "A")
        program.port_mem("O", 16, 16, 1, 0x100)
        program.barrier_all()  # writes globally visible
        program.mem_port(0x100, 16, 16, 1, "A")
        program.port_mem("O", 16, 16, 1, 0x200)
        program.barrier_all()
        run_program(program, fabric=fabric, memory=memory)
        assert read_words(memory, 0x200, 2) == [7, 8]
