"""Unit tests for the DFG container: structure, ordering, execution."""

import pytest

from repro.core.dfg import (
    Constant,
    Dfg,
    DfgBuilder,
    DfgError,
    ValueRef,
    validate_dfg,
)
from repro.core.dfg.instructions import mask_word


def dot_product_dfg() -> Dfg:
    dfg = Dfg("dot")
    dfg.add_input("A", 2)
    dfg.add_input("B", 2)
    dfg.add_instruction("m0", "mul", [ValueRef("A", 0), ValueRef("B", 0)])
    dfg.add_instruction("m1", "mul", [ValueRef("A", 1), ValueRef("B", 1)])
    dfg.add_instruction("s", "add", [ValueRef("m0"), ValueRef("m1")])
    dfg.add_output("C", [ValueRef("s")])
    return dfg


class TestConstruction:
    def test_duplicate_name_rejected(self):
        dfg = Dfg("x")
        dfg.add_input("A")
        with pytest.raises(DfgError, match="already used"):
            dfg.add_instruction("A", "add", [ValueRef("A"), ValueRef("A")])

    def test_port_width_bounds(self):
        dfg = Dfg("x")
        with pytest.raises(DfgError):
            dfg.add_input("A", 0)
        with pytest.raises(DfgError):
            dfg.add_input("B", 9)

    def test_output_width_matches_sources(self):
        dfg = dot_product_dfg()
        assert dfg.outputs["C"].width == 1

    def test_op_histogram(self):
        dfg = dot_product_dfg()
        assert dfg.op_histogram() == {"mul": 2, "add": 1}

    def test_consumers(self):
        dfg = dot_product_dfg()
        consumers = dfg.consumers()
        assert consumers["m0"] == ["s"]
        assert set(consumers["A"]) == {"m0", "m1"}


class TestTopologicalOrder:
    def test_respects_dependences(self):
        dfg = dot_product_dfg()
        order = [i.name for i in dfg.topological_order()]
        assert order.index("s") > order.index("m0")
        assert order.index("s") > order.index("m1")

    def test_cycle_detected(self):
        dfg = Dfg("cyclic")
        dfg.add_input("A")
        dfg.add_instruction("x", "add", [ValueRef("A", 0), ValueRef("y")])
        dfg.add_instruction("y", "add", [ValueRef("x"), ValueRef("A", 0)])
        dfg.add_output("O", [ValueRef("y")])
        with pytest.raises(DfgError, match="cycle"):
            dfg.topological_order()

    def test_memoised_and_invalidated(self):
        dfg = dot_product_dfg()
        first = dfg.topological_order()
        assert dfg.topological_order() is first  # cached
        dfg.add_instruction("extra", "pass", [ValueRef("s")])
        second = dfg.topological_order()
        assert second is not first
        assert len(second) == len(first) + 1

    def test_accumulator_not_a_cycle(self):
        b = DfgBuilder("acc")
        a = b.input("A", 1)
        r = b.input("R", 1)
        b.output("O", b.accumulate(a[0], r[0]))
        dfg = b.build()
        assert len(dfg.topological_order()) == 1


class TestDepthAndLatency:
    def test_depth_accumulates_op_latency(self):
        dfg = dot_product_dfg()
        depth = dfg.depth_by_node()
        assert depth["m0"] == 2  # mul latency
        assert depth["s"] == 3  # + add latency

    def test_latency_is_deepest_output(self):
        assert dot_product_dfg().latency == 3


class TestExecution:
    def test_dot_product(self):
        dfg = dot_product_dfg()
        out = dfg.execute({"A": [2, 3], "B": [10, 100]})
        assert out == {"C": [320]}

    def test_missing_port_rejected(self):
        with pytest.raises(DfgError, match="missing input port"):
            dot_product_dfg().execute({"A": [1, 2]})

    def test_wrong_width_rejected(self):
        with pytest.raises(DfgError, match="expects 2 words"):
            dot_product_dfg().execute({"A": [1], "B": [1, 2]})

    def test_constant_operand(self):
        dfg = Dfg("const")
        dfg.add_input("A")
        dfg.add_instruction("x", "add", [ValueRef("A", 0), Constant(100)])
        dfg.add_output("O", [ValueRef("x")])
        assert dfg.execute({"A": [1]}) == {"O": [101]}

    def test_negative_values_masked(self):
        dfg = Dfg("neg")
        dfg.add_input("A")
        dfg.add_instruction("x", "sub", [Constant(0), ValueRef("A", 0)])
        dfg.add_output("O", [ValueRef("x")])
        assert dfg.execute({"A": [5]}) == {"O": [mask_word(-5)]}

    def test_accumulator_requires_state(self):
        b = DfgBuilder("acc")
        a = b.input("A", 1)
        r = b.input("R", 1)
        b.output("O", b.accumulate(a[0], r[0]))
        dfg = b.build()
        with pytest.raises(DfgError, match="state"):
            dfg.execute({"A": [1], "R": [0]})

    def test_accumulator_accumulates_and_resets(self):
        b = DfgBuilder("acc")
        a = b.input("A", 1)
        r = b.input("R", 1)
        b.output("O", b.accumulate(a[0], r[0]))
        dfg = b.build()
        state = dfg.make_state()
        assert dfg.execute({"A": [5], "R": [0]}, state) == {"O": [5]}
        assert dfg.execute({"A": [6], "R": [0]}, state) == {"O": [11]}
        assert dfg.execute({"A": [1], "R": [1]}, state) == {"O": [12]}
        # reset happened after output
        assert dfg.execute({"A": [9], "R": [0]}, state) == {"O": [9]}

    def test_accmin_runs_from_identity(self):
        b = DfgBuilder("m")
        a = b.input("A", 1)
        r = b.input("R", 1)
        b.output("O", b.op("accmin", a[0], r[0]))
        dfg = b.build()
        state = dfg.make_state()
        assert dfg.execute({"A": [50], "R": [0]}, state) == {"O": [50]}
        assert dfg.execute({"A": [70], "R": [0]}, state) == {"O": [50]}
        assert dfg.execute({"A": [20], "R": [1]}, state) == {"O": [20]}
        assert dfg.execute({"A": [90], "R": [0]}, state) == {"O": [90]}

    def test_multi_output_ports(self):
        dfg = Dfg("multi")
        dfg.add_input("A", 2)
        dfg.add_instruction("x", "add", [ValueRef("A", 0), ValueRef("A", 1)])
        dfg.add_instruction("y", "sub", [ValueRef("A", 0), ValueRef("A", 1)])
        dfg.add_output("S", [ValueRef("x"), ValueRef("y")])
        out = dfg.execute({"A": [7, 3]})
        assert out["S"] == [10, 4]


class TestValidation:
    def test_valid_graph_passes(self):
        validate_dfg(dot_product_dfg())

    def test_undefined_operand(self):
        dfg = Dfg("bad")
        dfg.add_input("A")
        dfg.add_instruction("x", "add", [ValueRef("A", 0), ValueRef("nope")])
        dfg.add_output("O", [ValueRef("x")])
        with pytest.raises(DfgError, match="undefined value"):
            validate_dfg(dfg)

    def test_lane_out_of_range(self):
        dfg = Dfg("bad")
        dfg.add_input("A", 2)
        dfg.add_instruction("x", "pass", [ValueRef("A", 5)])
        dfg.add_output("O", [ValueRef("x")])
        with pytest.raises(DfgError, match="lane 5"):
            validate_dfg(dfg)

    def test_instruction_lane_must_be_zero(self):
        dfg = Dfg("bad")
        dfg.add_input("A")
        dfg.add_instruction("x", "pass", [ValueRef("A", 0)])
        dfg.add_instruction("y", "pass", [ValueRef("x", 1)])
        dfg.add_output("O", [ValueRef("y")])
        with pytest.raises(DfgError, match="single output lane"):
            validate_dfg(dfg)

    def test_no_outputs_rejected(self):
        dfg = Dfg("bad")
        dfg.add_input("A")
        dfg.add_instruction("x", "pass", [ValueRef("A", 0)])
        with pytest.raises(DfgError, match="no output ports"):
            validate_dfg(dfg)

    def test_dead_value_rejected(self):
        dfg = Dfg("bad")
        dfg.add_input("A")
        dfg.add_instruction("x", "pass", [ValueRef("A", 0)])
        dfg.add_instruction("dead", "pass", [ValueRef("A", 0)])
        dfg.add_output("O", [ValueRef("x")])
        with pytest.raises(DfgError, match="never consumed"):
            validate_dfg(dfg)

    def test_wrong_arity_reported(self):
        dfg = Dfg("bad")
        dfg.add_input("A")
        inst = dfg.add_instruction("x", "add", [ValueRef("A", 0)])
        dfg.add_output("O", [ValueRef("x")])
        with pytest.raises(DfgError, match="wants 2 operands"):
            validate_dfg(dfg)
