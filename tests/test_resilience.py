"""Tests for fault injection, the hang watchdog and failure diagnostics.

Covers the unified SimError hierarchy, the dispatcher's queue-full stall
(regression: it used to raise), structured FailureReports on every
failure path (deadlock, cycle limit, config errors, multi-unit), each
fault class end-to-end, the degradation policy, and a small campaign.
"""

import json

import pytest

from repro.cgra import dnn_provisioned
from repro.core.compiler import schedule
from repro.core.dfg import parse_dfg
from repro.core.isa import StreamProgram
from repro.resilience import (
    FAULT_KINDS,
    FailureReport,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    ResiliencePolicy,
    run_campaign,
    run_resilient,
)
from repro.sim import (
    ConfigError,
    MemorySystem,
    PortRuntimeError,
    ScratchpadError,
    SimError,
    SimulationDeadlock,
    SimulationLimit,
    SoftbrainParams,
    run_multi_unit,
    run_program,
)
from repro.trace import RingSink, TeeSink, TraceEvent
from repro.workloads.common import read_words, write_words


def passthrough_config(fabric):
    dfg = parse_dfg("input A\nx = pass A\noutput O x", "copy")
    return schedule(dfg, fabric)


def adder_config(fabric):
    dfg = parse_dfg("input A\ninput B\nx = add A B\noutput O x", "adder")
    return schedule(dfg, fabric)


def copy_workload(n=32):
    """A memory->fabric->memory copy of ``n`` words."""
    fabric = dnn_provisioned()
    memory = MemorySystem()
    data = list(range(100, 100 + n))
    write_words(memory, 0x1000, data)
    program = StreamProgram("copy", passthrough_config(fabric))
    program.mem_port(0x1000, 8 * n, 8 * n, 1, "A")
    program.port_mem("O", 8 * n, 8 * n, 1, 0x8000)
    program.barrier_all()
    return program, fabric, memory, data


def deadlock_workload():
    """Feeds port A but starves port B: must deadlock, not hang."""
    fabric = dnn_provisioned()
    memory = MemorySystem()
    write_words(memory, 0, [1, 2])
    program = StreamProgram("stuck", adder_config(fabric))
    program.mem_port(0, 16, 16, 1, "A")
    program.port_mem("O", 16, 16, 1, 0x100)
    program.barrier_all()
    return program, fabric, memory


class TestErrorHierarchy:
    def test_every_failure_class_is_a_sim_error(self):
        for cls in (SimulationDeadlock, SimulationLimit, PortRuntimeError,
                    ScratchpadError, ConfigError):
            assert issubclass(cls, SimError)

    def test_sim_error_is_a_runtime_error(self):
        # Pre-hierarchy callers caught RuntimeError; they must keep working.
        assert issubclass(SimError, RuntimeError)

    def test_scratchpad_error_still_a_value_error(self):
        assert issubclass(ScratchpadError, ValueError)

    def test_kind_tags(self):
        assert SimulationDeadlock("x").kind == "deadlock"
        assert SimulationLimit("x").kind == "limit"
        assert ConfigError("x").kind == "config"

    def test_carries_context(self):
        exc = SimulationDeadlock("boom", program_name="p", cycle=7)
        assert (exc.program_name, exc.cycle) == ("p", 7)
        assert exc.report is None


class TestDispatcherQueueStall:
    def test_enqueue_returns_none_when_full(self):
        # Regression: a full queue used to raise RuntimeError.
        from repro.sim.dispatcher import COMMAND_QUEUE_DEPTH
        from repro.sim.softbrain import SoftbrainSim

        program, fabric, memory, _ = copy_workload(8)
        sim = SoftbrainSim(program, fabric=fabric, memory=memory)
        command = next(
            i for i in program.items if not hasattr(i, "cycles"))
        for _ in range(COMMAND_QUEUE_DEPTH):
            assert sim.dispatcher.enqueue(command, 0) is not None
        assert not sim.dispatcher.can_enqueue()
        assert sim.dispatcher.enqueue(command, 0) is None

    def test_core_stalls_and_program_completes(self):
        # More serialized same-port streams than queue entries: the core
        # must stall on the full queue and the run must still finish.
        fabric = dnn_provisioned()
        memory = MemorySystem()
        write_words(memory, 0, [5])
        program = StreamProgram("manycmd", passthrough_config(fabric))
        for i in range(24):
            program.mem_port(0, 8, 8, 1, "A")
            program.port_mem("O", 8, 8, 1, 0x100 + 8 * i)
        program.barrier_all()
        result = run_program(program, fabric=fabric, memory=memory)
        assert read_words(memory, 0x100, 24) == [5] * 24
        # every item except the final barrier issues to an engine
        assert result.stats.commands_issued == len(program.items) - 1
        assert result.stats.cycles > 0


class TestFailureReports:
    def test_deadlock_report_attached(self):
        program, fabric, memory = deadlock_workload()
        with pytest.raises(SimulationDeadlock, match="deadlock") as info:
            run_program(program, fabric=fabric, memory=memory)
        report = info.value.report
        assert isinstance(report, FailureReport)
        assert report.kind == "deadlock"
        assert report.program == "stuck"
        assert report.cycle == info.value.cycle
        assert report.chains, "watchdog produced no root-cause chain"
        assert report.wait_graph["nodes"] and report.wait_graph["edges"]
        assert "core" in report.components

    def test_deadlock_chain_names_the_starved_port(self):
        program, fabric, memory = deadlock_workload()
        with pytest.raises(SimulationDeadlock) as info:
            run_program(program, fabric=fabric, memory=memory)
        text = " ".join(info.value.report.chains)
        assert "no stream writes this port" in text

    def test_report_is_deterministic(self):
        dumps = []
        for _ in range(2):
            program, fabric, memory = deadlock_workload()
            with pytest.raises(SimulationDeadlock) as info:
                run_program(program, fabric=fabric, memory=memory)
            dumps.append(info.value.report.to_json())
        assert dumps[0] == dumps[1]

    def test_report_json_roundtrip(self):
        program, fabric, memory = deadlock_workload()
        with pytest.raises(SimulationDeadlock) as info:
            run_program(program, fabric=fabric, memory=memory)
        report = info.value.report
        clone = FailureReport.from_json(report.to_json())
        assert clone.to_json() == report.to_json()
        json.loads(report.to_json())  # valid JSON

    def test_cycle_limit_report(self):
        program, fabric, memory, _ = copy_workload()
        with pytest.raises(SimulationLimit) as info:
            run_program(program, fabric=fabric, memory=memory,
                        params=SoftbrainParams(max_cycles=10))
        assert info.value.report.kind == "limit"

    def test_missing_config_image_is_structured(self):
        fabric = dnn_provisioned()
        program = StreamProgram("noimg", passthrough_config(fabric))
        program.barrier_all()
        program.config_images.clear()
        with pytest.raises(ConfigError, match="no configuration image") as info:
            run_program(program, fabric=fabric, memory=MemorySystem())
        assert info.value.report is not None

    def test_trace_tail_captured_with_ring_sink(self):
        program, fabric, memory = deadlock_workload()
        ring = RingSink(capacity=32)
        with pytest.raises(SimulationDeadlock) as info:
            run_program(program, fabric=fabric, memory=memory, trace=ring)
        tail = info.value.report.trace_tail
        assert 0 < len(tail) <= 32
        assert all("kind" in entry and "cycle" in entry for entry in tail)

    def test_multi_unit_deadlock_aggregates_units(self):
        program, fabric, memory = deadlock_workload()
        program2, _fabric2, memory2 = deadlock_workload()
        memory2.store = memory.store
        with pytest.raises(SimulationDeadlock, match="deadlock") as info:
            run_multi_unit([program, program2], dnn_provisioned,
                           memory=memory)
        report = info.value.report
        assert report is not None
        assert "unit0" in report.components and "unit1" in report.components
        assert any(chain.startswith("[unit 0]") for chain in report.chains)
        assert any(chain.startswith("[unit 1]") for chain in report.chains)


class TestFaultInjection:
    def run_with(self, spec, n=32, max_cycles=200_000):
        program, fabric, memory, data = copy_workload(n)
        injector = FaultInjector(FaultPlan("t", [spec]))
        result = run_program(program, fabric=fabric, memory=memory,
                             faults=injector,
                             params=SoftbrainParams(max_cycles=max_cycles))
        return result, memory, data, injector

    def baseline(self, n=32):
        program, fabric, memory, data = copy_workload(n)
        return run_program(program, fabric=fabric, memory=memory)

    def test_zero_fault_plan_changes_nothing(self):
        baseline = self.baseline()
        result, memory, data, injector = self.run_with(
            FaultSpec("mem.delay", at=10**9, arg=63))  # never fires
        assert read_words(memory, 0x8000, len(data)) == data
        assert result.cycles == baseline.cycles
        assert injector.fired == []
        assert len(injector.unfired) == 1

    def test_mem_delay_is_benign_but_slower(self):
        baseline = self.baseline()
        result, memory, data, injector = self.run_with(
            FaultSpec("mem.delay", at=1, arg=511))
        assert read_words(memory, 0x8000, len(data)) == data
        assert result.cycles > baseline.cycles
        assert injector.fired[0]["kind"] == "mem.delay"

    def test_mem_corrupt_changes_one_word(self):
        _result, memory, data, injector = self.run_with(
            FaultSpec("mem.corrupt", at=1, arg=3))
        got = read_words(memory, 0x8000, len(data), signed=False)
        want = [v & (1 << 64) - 1 for v in data]
        assert injector.fired[0]["kind"] == "mem.corrupt"
        diffs = [(g, w) for g, w in zip(got, want) if g != w]
        assert len(diffs) == 1
        assert diffs[0][0] ^ diffs[0][1] == 1 << 3

    def test_engine_stall_is_benign_but_slower(self):
        baseline = self.baseline()
        result, memory, data, injector = self.run_with(
            FaultSpec("engine.stall", at=1, target="mse_read", arg=128))
        assert read_words(memory, 0x8000, len(data)) == data
        assert result.cycles > baseline.cycles
        assert injector.fired[0]["target"] == "mse_read"

    def test_cgra_bitflip_changes_output(self):
        _result, memory, data, injector = self.run_with(
            FaultSpec("cgra.bitflip", at=1, arg=5))
        got = read_words(memory, 0x8000, len(data), signed=False)
        assert injector.fired[0]["kind"] == "cgra.bitflip"
        assert got != [v & (1 << 64) - 1 for v in data]

    def test_port_drop_deadlocks_with_diagnosis(self):
        program, fabric, memory, _data = copy_workload()
        injector = FaultInjector(
            FaultPlan("t", [FaultSpec("port.drop", at=1)]))
        with pytest.raises(SimulationDeadlock) as info:
            run_program(program, fabric=fabric, memory=memory,
                        faults=injector,
                        params=SoftbrainParams(max_cycles=200_000))
        report = info.value.report
        assert report.faults and report.faults[0]["kind"] == "port.drop"
        assert report.chains

    def test_cmd_illegal_never_escapes_unstructured(self):
        # Whatever a bit flip does to a command word, the outcome must be
        # a clean run or a structured SimError — never a raw crash.
        for arg in range(0, 48, 7):
            program, fabric, memory, _data = copy_workload(8)
            injector = FaultInjector(FaultPlan(
                "t", [FaultSpec("cmd.illegal", at=0, arg=arg)]))
            try:
                run_program(program, fabric=fabric, memory=memory,
                            faults=injector,
                            params=SoftbrainParams(max_cycles=200_000))
            except SimError as exc:
                assert exc.report is not None
            # any other exception propagates and fails the test

    def test_fault_events_traced(self):
        program, fabric, memory, _data = copy_workload()
        ring = RingSink(capacity=2048)
        injector = FaultInjector(
            FaultPlan("t", [FaultSpec("mem.delay", at=1, arg=7)]))
        run_program(program, fabric=fabric, memory=memory, trace=ring,
                    faults=injector)
        kinds = [e.kind for e in ring.tail_events()]
        assert "fault.inject" in kinds


class TestFaultPlans:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec("not.a.kind", at=1)
        with pytest.raises(ValueError):
            FaultSpec("mem.delay", at=-1)

    def test_plan_roundtrip(self):
        plan = FaultPlan.random(5, count=3)
        clone = FaultPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
        assert clone.specs == plan.specs
        assert clone.name == plan.name

    def test_random_plan_deterministic(self):
        assert (FaultPlan.random(9, count=4).to_dict()
                == FaultPlan.random(9, count=4).to_dict())
        assert (FaultPlan.random(9, count=4).to_dict()
                != FaultPlan.random(10, count=4).to_dict())

    def test_random_specs_cover_all_kinds(self):
        import random as random_module

        rng = random_module.Random("kinds")
        from repro.resilience.faults import random_spec

        for kind in FAULT_KINDS:
            spec = random_spec(rng, kind, 100)
            assert spec.kind == kind


class TestResiliencePolicy:
    def failing_run(self):
        program, fabric, memory = deadlock_workload()
        return run_program(program, fabric=fabric, memory=memory)

    def test_abort_reraises(self):
        with pytest.raises(SimulationDeadlock):
            run_resilient(self.failing_run, ResiliencePolicy(mode="abort"))

    def test_continue_returns_flagged_outcome(self):
        outcome = run_resilient(self.failing_run,
                                ResiliencePolicy(mode="continue"))
        assert outcome.result is None
        assert outcome.flagged and not outcome.ok
        assert isinstance(outcome.failures[0], SimulationDeadlock)

    def test_retry_recovers_from_transient_failure(self):
        attempts = []

        def flaky_run():
            attempts.append(1)
            if len(attempts) == 1:
                return self.failing_run()
            program, fabric, memory, _ = copy_workload(8)
            return run_program(program, fabric=fabric, memory=memory)

        outcome = run_resilient(
            flaky_run, ResiliencePolicy(mode="retry", max_retries=2))
        assert outcome.result is not None
        assert outcome.attempts == 2
        assert outcome.flagged  # the first failure is still recorded

    def test_dump_dir_receives_crash_dump(self, tmp_path):
        outcome = run_resilient(
            self.failing_run,
            ResiliencePolicy(mode="continue", dump_dir=str(tmp_path)))
        assert outcome.dumps
        loaded = FailureReport.from_json(
            (tmp_path / outcome.dumps[0].split("/")[-1]).read_text())
        assert loaded.kind == "deadlock"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            ResiliencePolicy(mode="shrug")


class TestCampaign:
    def test_small_campaign_passes(self, tmp_path):
        result = run_campaign(classes=("mem.delay", "port.drop"),
                              seeds=(0,), cases_per_seed=1,
                              dump_dir=str(tmp_path))
        assert result.outcomes, "campaign ran no faulted cases"
        assert result.ok, result.summary()
        assert "PASS" in result.summary()

    def test_campaign_determinism_check(self):
        result = run_campaign(classes=("cmd.illegal",), seeds=(0,),
                              cases_per_seed=1, check_determinism=True)
        assert result.ok, result.summary()
        assert all(o.classification != "nondeterministic"
                   for o in result.outcomes)


class TestRingSink:
    def events(self, n):
        return [TraceEvent("cycle.tick", i, 0, "sim", {}) for i in range(n)]

    def test_keeps_last_n_oldest_first(self):
        ring = RingSink(capacity=4)
        for event in self.events(10):
            ring.emit(event)
        assert [e.cycle for e in ring.tail_events()] == [6, 7, 8, 9]

    def test_tee_delegates_tail(self):
        ring = RingSink(capacity=4)
        tee = TeeSink(ring)
        for event in self.events(6):
            tee.emit(event)
        assert [e.cycle for e in tee.tail_events()] == [2, 3, 4, 5]
