"""Tests for the command-line interface and the statistics/timeline module."""

import pytest

from repro.__main__ import main
from repro.core.isa import SDBarrierAll, SDMemPort, Affine2D, in_port
from repro.sim.stats import CommandTrace, SimStats, Timeline, render_timeline


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "class1p" in out
        assert "gemm" in out

    def test_run_machsuite(self, capsys):
        assert main(["run", "backprop"]) == 0
        out = capsys.readouterr().out
        assert "verified OK" in out
        assert "cycles" in out

    def test_run_dnn_with_units(self, capsys):
        assert main(["run", "pool1p", "--units", "8"]) == 0
        assert "verified OK" in capsys.readouterr().out

    def test_run_with_power(self, capsys):
        assert main(["run", "backprop", "--power"]) == 0
        assert "TOTAL" in capsys.readouterr().out

    def test_run_unknown_workload(self):
        with pytest.raises(SystemExit):
            main(["run", "doom"])

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "Stream-Dataflow" in capsys.readouterr().out

    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        assert "DianNao" in capsys.readouterr().out

    def test_timeline(self, capsys):
        assert main(["timeline", "backprop"]) == 0
        assert "SD_" in capsys.readouterr().out


class TestSimStats:
    def test_note_firing_accumulates(self):
        stats = SimStats()
        stats.note_firing(5, {"mul": 2, "alu": 3})
        stats.note_firing(5, {"mul": 2, "alu": 3})
        assert stats.instances_fired == 2
        assert stats.ops_executed == 10
        assert stats.fu_activity == {"mul": 4, "alu": 6}

    def test_derived_rates(self):
        stats = SimStats()
        stats.note_firing(4, {})
        stats.cycles = 8
        assert stats.ops_per_cycle == 0.5
        assert stats.cgra_utilization == 0.125

    def test_rates_with_zero_cycles(self):
        stats = SimStats()
        assert stats.ops_per_cycle == 0.0
        assert stats.cgra_utilization == 0.0

    def test_engine_busy(self):
        stats = SimStats()
        stats.note_engine_busy("mse_read")
        stats.note_engine_busy("mse_read")
        assert stats.engine_busy == {"mse_read": 2}


class TestTimeline:
    def _command(self):
        return SDMemPort(Affine2D(0, 8, 8, 1), in_port(0))

    def test_traces_indexed_in_order(self):
        timeline = Timeline()
        t0 = timeline.note_enqueue(self._command(), 0)
        t1 = timeline.note_enqueue(SDBarrierAll(), 5)
        assert (t0.index, t1.index) == (0, 1)
        assert len(timeline) == 2

    def test_label_format(self):
        timeline = Timeline()
        trace = timeline.note_enqueue(self._command(), 0)
        assert trace.label == "SD_MemPort"

    def test_render_empty(self):
        assert "empty" in render_timeline(Timeline())

    def test_render_marks_lifecycle(self):
        timeline = Timeline()
        trace = timeline.note_enqueue(self._command(), 0)
        trace.dispatched = 10
        trace.completed = 20
        text = render_timeline(timeline, width=40)
        row = text.splitlines()[1]
        assert "q" in row and "=" in row and "#" in row

    def test_render_scales_long_runs(self):
        timeline = Timeline()
        trace = timeline.note_enqueue(self._command(), 0)
        trace.dispatched = 0
        trace.completed = 10_000
        text = render_timeline(timeline, width=50)
        assert "cycles/char" in text.splitlines()[0]
        assert all(len(line) < 120 for line in text.splitlines())

    def test_incomplete_trace_renders(self):
        timeline = Timeline()
        timeline.note_enqueue(self._command(), 3)  # never dispatched
        text = render_timeline(timeline)
        assert "SD_MemPort" in text
