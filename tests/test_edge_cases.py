"""Edge cases across the stack: empty programs, degenerate shapes, limits."""

import pytest

from repro.cgra import broadly_provisioned, dnn_provisioned
from repro.core.compiler import schedule
from repro.core.dfg import DfgBuilder, parse_dfg
from repro.core.isa import StreamProgram
from repro.sim import MemorySystem, run_program
from repro.workloads.common import Allocator, check_equal, read_words, write_words
from repro.workloads.common import VerificationError


class TestDegenerateProograms:
    def test_config_only_program(self):
        fabric = dnn_provisioned()
        config = schedule(
            parse_dfg("input A\nx = pass A\noutput O x", "idle"), fabric
        )
        program = StreamProgram("idle", config)
        result = run_program(program, fabric=fabric)
        assert result.stats.instances_fired == 0
        assert result.cycles > 0  # config load took time

    def test_barrier_only_after_config(self):
        fabric = dnn_provisioned()
        config = schedule(
            parse_dfg("input A\nx = pass A\noutput O x", "idle"), fabric
        )
        program = StreamProgram("idle", config)
        program.barrier_all()
        result = run_program(program, fabric=fabric)
        assert result.timeline.traces[-1].completed is not None

    def test_single_element_stream(self):
        fabric = dnn_provisioned()
        config = schedule(
            parse_dfg("input A\nx = add A #1\noutput O x", "inc"), fabric
        )
        memory = MemorySystem()
        write_words(memory, 0, [41])
        program = StreamProgram("one", config)
        program.mem_port(0, 8, 8, 1, "A")
        program.port_mem("O", 8, 8, 1, 0x40)
        program.barrier_all()
        run_program(program, fabric=fabric, memory=memory)
        assert read_words(memory, 0x40, 1) == [42]

    def test_wide_port_partial_instance_leftover_is_callers_bug(self):
        # Streaming 3 words into a width-2 port leaves one word stranded:
        # the program must deadlock-report, not silently drop data.
        from repro.sim import SimulationDeadlock

        fabric = dnn_provisioned()
        dfg = parse_dfg(
            "input A 2\nx = add A.0 A.1\noutput O x", "pairsum"
        )
        config = schedule(dfg, fabric)
        memory = MemorySystem()
        write_words(memory, 0, [1, 2, 3])
        program = StreamProgram("odd", config)
        program.mem_port(0, 24, 24, 1, "A")
        program.port_mem("O", 16, 16, 1, 0x40)
        program.barrier_all()
        with pytest.raises(SimulationDeadlock):
            run_program(program, fabric=fabric, memory=memory)


class TestAllocatorAndHelpers:
    def test_allocator_line_aligned(self):
        alloc = Allocator(base=0x100)
        a = alloc.alloc(1)
        b = alloc.alloc(65)
        c = alloc.alloc(64)
        assert a % 64 == 0 and b % 64 == 0 and c % 64 == 0
        assert b == a + 64
        assert c == b + 128

    def test_check_equal_reports_first_mismatches(self):
        with pytest.raises(VerificationError, match="mismatch"):
            check_equal("x", [1, 2, 3], [1, 9, 3])

    def test_check_equal_length_mismatch(self):
        with pytest.raises(VerificationError):
            check_equal("x", [1, 2], [1, 2, 3])

    def test_write_read_words_negative(self):
        memory = MemorySystem()
        write_words(memory, 0, [-1, -128], elem_bytes=2)
        assert read_words(memory, 0, 2, elem_bytes=2) == [-1, -128]


class TestFabricEdgeCases:
    def test_one_by_one_mesh(self):
        from repro.cgra import build_fabric

        fabric = build_fabric(
            "tiny", 1, 1, [["alu"]], input_widths=[1, 1], output_widths=[1]
        )
        dfg = parse_dfg("input A\nx = pass A\noutput O x", "tiny")
        config = schedule(dfg, fabric)
        assert config.placement["x"] == (0, 0)

    def test_port_depth_parameterisation(self):
        shallow = dnn_provisioned(port_depth=2)
        assert shallow.input_ports[0].depth == 2

    def test_dfg_with_max_width_ports(self):
        b = DfgBuilder("wide")
        a = b.input("A", 8)
        b.output("O", b.reduce_tree("add", list(a)))
        config = schedule(b.build(), broadly_provisioned())
        memory = MemorySystem()
        write_words(memory, 0, list(range(8)))
        program = StreamProgram("wide", config)
        program.mem_port(0, 64, 64, 1, "A")
        program.port_mem("O", 8, 8, 1, 0x100)
        program.barrier_all()
        run_program(program, fabric=config.fabric, memory=memory)
        assert read_words(memory, 0x100, 1) == [28]


class TestControlCoreAccounting:
    def test_instruction_counts_reported(self):
        fabric = dnn_provisioned()
        config = schedule(
            parse_dfg("input A\nx = pass A\noutput O x", "acct"), fabric
        )
        memory = MemorySystem()
        write_words(memory, 0, [1])
        program = StreamProgram("acct", config)
        program.mem_port(0, 8, 8, 1, "A")  # 2 instructions
        program.host(7)
        program.port_mem("O", 8, 8, 1, 0x40)  # 3 instructions
        program.barrier_all()  # 1 instruction
        result = run_program(program, fabric=fabric, memory=memory)
        # config (1) + 2 + 7 + 3 + 1
        assert result.stats.control_instructions == 14
