"""Shared test options.

``--update-golden`` regenerates the checked-in golden-stats files used by
``test_golden_stats.py`` (see docs/PERFORMANCE.md for the workflow):

    PYTHONPATH=src python -m pytest tests/test_golden_stats.py \
        --update-golden -q
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="rewrite tests/golden/*.json from the current simulator "
             "instead of asserting against it",
    )


@pytest.fixture
def update_golden(request):
    return request.config.getoption("--update-golden")
