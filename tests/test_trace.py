"""Tests for the observability layer: repro.trace + simulator wiring."""

import importlib.util
import io
import json
import pathlib
from collections import defaultdict

import pytest

from repro.sim import MemorySystem, SoftbrainParams, run_multi_unit
from repro.sim.stats import SimStats
from repro.trace import (
    EVENT_SCHEMAS,
    ChromeTraceSink,
    JsonlSink,
    ListSink,
    MetricsRegistry,
    NULL_SINK,
    NullSink,
    SHARED_UNIT,
    TeeSink,
    TraceEvent,
    sink_for_path,
    validate_event,
)
from repro.workloads.common import run_and_verify
from repro.workloads.machsuite import MACHSUITE


def _run(name="gemm", trace=None, params=None):
    built = MACHSUITE[name][0]()
    return run_and_verify(built, params=params, trace=trace)


@pytest.fixture(scope="module")
def gemm_capture():
    """One traced gemm run shared by the read-only assertions."""
    sink = ListSink()
    metrics = MetricsRegistry()
    result = _run("gemm", trace=TeeSink(sink, metrics))
    return sink.events, metrics, result


class TestNullSinkEquivalence:
    def test_cycle_identical_to_untraced(self):
        untraced = _run("gemm")
        traced = _run("gemm", trace=NullSink())
        assert traced.cycles == untraced.cycles
        assert traced.stats.to_dict() == untraced.stats.to_dict()

    def test_null_sink_emits_nothing(self):
        assert not NULL_SINK.enabled

    def test_enabled_trace_does_not_change_timing(self, gemm_capture):
        _, _, traced_result = gemm_capture
        assert traced_result.cycles == _run("gemm").cycles


class TestEventStream:
    def test_all_events_validate_against_schema(self, gemm_capture):
        events, _, _ = gemm_capture
        for event in events:
            validate_event(event)

    def test_covers_most_of_the_vocabulary(self, gemm_capture):
        events, _, _ = gemm_capture
        kinds = {e.kind for e in events}
        # gemm exercises everything except the scratchpad and indirect
        # paths; scratch workloads are covered by the stencil test below.
        for kind in ("command.enqueue", "command.dispatch",
                     "command.complete", "barrier.wait", "stream.issue",
                     "stream.drain", "engine.busy", "cgra.fire",
                     "cgra.stall", "port.sample", "mem.access",
                     "config.apply"):
            assert kind in kinds, kind

    def test_scratch_events_on_scratch_workload(self):
        # MachSuite kernels stream straight from memory; the DNN layers
        # are the scratchpad users (weights resident per Section 6.1).
        from repro.workloads.dnn import build_dnn_layer

        sink = ListSink()
        run_and_verify(build_dnn_layer("class1p", unit_id=0, num_units=1),
                       trace=sink)
        kinds = {e.kind for e in sink.events}
        assert "scratch.read" in kinds and "scratch.write" in kinds
        for event in sink.events:
            validate_event(event)

    def test_lifetimes_match_timeline(self, gemm_capture):
        events, _, result = gemm_capture
        dispatched = {
            e.data["index"]: e.cycle
            for e in events if e.kind == "command.dispatch"
        }
        completed = {
            e.data["index"]: e.cycle
            for e in events if e.kind == "command.complete"
        }
        for trace in result.timeline:
            assert dispatched[trace.index] == trace.dispatched
            assert completed[trace.index] == trace.completed

    def test_validate_rejects_unknown_kind_and_bad_fields(self):
        with pytest.raises(ValueError):
            validate_event(TraceEvent("no.such", 0, 0, "x", {}))
        with pytest.raises(ValueError):
            validate_event(TraceEvent("cgra.stall", 0, 0, "cgra", {}))


class TestReconciliation:
    def test_stall_and_utilization_totals_match_simstats(self, gemm_capture):
        _, metrics, result = gemm_capture
        assert metrics.reconcile(result.stats) == {}
        stats = result.stats
        assert metrics.stall_causes["cgra_no_input"] == stats.cgra_stall_no_input
        assert (metrics.stall_causes["cgra_no_output_room"]
                == stats.cgra_stall_no_output_room)
        assert dict(metrics.engine_busy) == stats.engine_busy

    @pytest.mark.parametrize("name", ["spmv-crs", "viterbi"])
    def test_reconciles_on_more_workloads(self, name):
        metrics = MetricsRegistry()
        result = _run(name, trace=metrics)
        assert metrics.reconcile(result.stats) == {}

    def test_reconcile_reports_mismatches(self, gemm_capture):
        _, metrics, result = gemm_capture
        broken = SimStats.from_events([])
        mismatches = metrics.reconcile(broken)
        assert "instances_fired" in mismatches

    def test_simstats_from_events(self, gemm_capture):
        events, _, result = gemm_capture
        rebuilt = SimStats.from_events(events)
        for field in ("instances_fired", "ops_executed", "fu_activity",
                      "engine_busy", "commands_issued", "config_loads",
                      "cgra_stall_no_input", "cgra_stall_no_output_room"):
            assert getattr(rebuilt, field) == getattr(result.stats, field)
        assert rebuilt.cycles <= result.stats.cycles + 1

    def test_memory_totals_match(self, gemm_capture):
        _, metrics, result = gemm_capture
        assert metrics.mem["reads"] == result.memory.stats.reads
        assert metrics.mem["writes"] == result.memory.stats.writes
        assert metrics.mem["hits"] == result.memory.stats.hits
        assert metrics.mem["misses"] == result.memory.stats.misses


class TestMetricsViews:
    def test_utilization_series_bounded(self, gemm_capture):
        _, metrics, _ = gemm_capture
        series = metrics.utilization_series("rse")
        assert series, "rse should have busy windows on gemm"
        assert all(0.0 < frac <= 1.0 for _, frac in series)

    def test_port_depth_sampled(self, gemm_capture):
        _, metrics, _ = gemm_capture
        assert metrics.port_depth, "expected port.sample events"
        for samples in metrics.port_depth.values():
            cycles = [c for c, _, _ in samples]
            assert cycles == sorted(cycles)

    def test_to_dict_is_json_serialisable(self, gemm_capture):
        _, metrics, _ = gemm_capture
        text = json.dumps(metrics.to_dict())
        assert "stall_causes" in text

    def test_sample_interval_param(self):
        dense = ListSink()
        params = SoftbrainParams(trace_sample_interval=8)
        _run("backprop", trace=dense, params=params)
        sparse = ListSink()
        params = SoftbrainParams(trace_sample_interval=512)
        _run("backprop", trace=sparse, params=params)
        count = lambda s: sum(e.kind == "port.sample" for e in s.events)
        assert count(dense) > count(sparse)


class TestChromeTraceSink:
    def test_valid_json_with_monotone_ts_per_track(self, tmp_path,
                                                   gemm_capture):
        events, _, _ = gemm_capture
        path = tmp_path / "gemm.json"
        with ChromeTraceSink(str(path)) as sink:
            for event in events:
                sink.emit(event)
        document = json.loads(path.read_text())
        rows = document["traceEvents"]
        assert rows
        tracks = defaultdict(list)
        for row in rows:
            assert {"name", "ph", "pid", "tid"} <= set(row)
            if row["ph"] != "M":
                tracks[(row["pid"], row["tid"])].append(row["ts"])
        for ts_list in tracks.values():
            assert all(a <= b for a, b in zip(ts_list, ts_list[1:]))

    def test_async_spans_pair_up(self, gemm_capture):
        events, _, _ = gemm_capture
        stream = io.StringIO()
        sink = ChromeTraceSink(stream)
        for event in events:
            sink.emit(event)
        sink.close()
        rows = json.loads(stream.getvalue())["traceEvents"]
        begins = sum(r["ph"] == "b" for r in rows)
        ends = sum(r["ph"] == "e" for r in rows)
        assert begins == ends > 0

    def test_metadata_names_processes_and_threads(self, gemm_capture):
        events, _, _ = gemm_capture
        stream = io.StringIO()
        sink = ChromeTraceSink(stream)
        for event in events:
            sink.emit(event)
        sink.close()
        rows = json.loads(stream.getvalue())["traceEvents"]
        names = {r["args"]["name"] for r in rows if r["ph"] == "M"}
        assert "softbrain unit 0" in names
        assert "dispatcher" in names and "cgra" in names


class TestJsonlSink:
    def test_one_valid_object_per_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(str(path))
        _run("backprop", trace=sink)
        sink.close()
        lines = path.read_text().splitlines()
        assert lines
        for line in lines:
            record = json.loads(line)
            assert list(record)[:4] == ["kind", "cycle", "unit", "component"]
            assert record["kind"] in EVENT_SCHEMAS

    def test_sink_for_path_picks_format(self, tmp_path):
        assert isinstance(sink_for_path(str(tmp_path / "a.jsonl")), JsonlSink)
        assert isinstance(sink_for_path(str(tmp_path / "a.json")),
                          ChromeTraceSink)


class TestMultiUnitTracing:
    def test_units_tagged_and_memory_shared(self):
        from repro.cgra import dnn_provisioned
        from repro.workloads.dnn import build_dnn_layer

        units = 2
        builts = [build_dnn_layer("pool1p", unit_id=i, num_units=units)
                  for i in range(units)]
        memory = MemorySystem()
        for built in builts:
            for page_id, page in built.memory.store._pages.items():
                memory.store._pages[page_id] = page
        sink = ListSink()
        result = run_multi_unit([b.program for b in builts], dnn_provisioned,
                                memory=memory, trace=sink)
        unit_tags = {e.unit for e in sink.events}
        assert {0, 1} <= unit_tags
        assert {e.unit for e in sink.events if e.kind == "mem.access"} == \
            {SHARED_UNIT}
        for index, unit_result in enumerate(result.unit_results):
            metrics = MetricsRegistry.from_events(sink.events, unit=index)
            assert metrics.reconcile(unit_result.stats) == {}


class TestCli:
    def test_trace_subcommand_writes_chrome_trace(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "t.json"
        assert main(["trace", "backprop", "--trace-out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "reconcile exactly" in printed
        assert json.loads(out.read_text())["traceEvents"]

    def test_trace_schema_flag(self, capsys):
        from repro.__main__ import main

        assert main(["trace", "--schema"]) == 0
        out = capsys.readouterr().out
        for kind in EVENT_SCHEMAS:
            assert kind in out

    def test_run_trace_out_flag(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "t.jsonl"
        assert main(["run", "backprop", "--trace-out", str(out)]) == 0
        assert "trace written" in capsys.readouterr().out
        assert out.read_text().splitlines()


class TestOverheadSmoke:
    """Reduced-repetition version of benchmarks/bench_trace_overhead.py."""

    @staticmethod
    def _load_bench():
        path = (pathlib.Path(__file__).parent.parent / "benchmarks"
                / "bench_trace_overhead.py")
        spec = importlib.util.spec_from_file_location("bench_trace", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_null_sink_overhead_smoke(self):
        bench = self._load_bench()
        result = bench.measure_null_sink_overhead("backprop", repeats=2)
        assert result["cycles_match"]
        # Loose bound for the tier-1 suite (CI timing noise); the strict
        # 5% assertion lives in the benchmark itself.
        assert result["overhead"] < 0.5
