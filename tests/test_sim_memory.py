"""Unit tests for the memory substrate and scratchpad."""

import pytest

from repro.sim.memory import BackingStore, MemoryParams, MemorySystem
from repro.sim.scratchpad import Scratchpad, ScratchpadError


class TestBackingStore:
    def test_read_write_round_trip(self):
        store = BackingStore()
        store.write(0x1234, b"hello world")
        assert store.read(0x1234, 11) == b"hello world"

    def test_uninitialised_reads_zero(self):
        assert BackingStore().read(0x9999, 4) == b"\x00" * 4

    def test_cross_page_access(self):
        store = BackingStore()
        addr = 4096 - 3
        store.write(addr, b"abcdef")
        assert store.read(addr, 6) == b"abcdef"

    def test_word_round_trip(self):
        store = BackingStore()
        store.write_word(0x100, -5, 8)
        assert store.read_word(0x100, 8, signed=True) == -5
        assert store.read_word(0x100, 8) == (1 << 64) - 5

    def test_narrow_word(self):
        store = BackingStore()
        store.write_word(0x10, -1, 2)
        assert store.read_word(0x10, 2, signed=True) == -1
        assert store.read_word(0x10, 2) == 0xFFFF

    def test_read_extended_sign(self):
        store = BackingStore()
        store.write_word(0, -2, 2)
        assert store.read_extended(0, 2, signed=True) == (1 << 64) - 2
        assert store.read_extended(0, 2, signed=False) == 0xFFFE

    def test_sparse_pages_far_apart(self):
        store = BackingStore()
        store.write_word(0, 1)
        store.write_word(1 << 40, 2)
        assert store.read_word(0) == 1
        assert store.read_word(1 << 40) == 2


class TestMemoryTiming:
    def test_cold_miss_pays_dram_latency(self):
        memory = MemorySystem(MemoryParams(l2_hit_latency=10, dram_latency=90))
        ready = memory.issue(0, 0, False, 64)
        assert ready == 90

    def test_hit_after_fill(self):
        memory = MemorySystem(MemoryParams(l2_hit_latency=10, dram_latency=90))
        memory.issue(0, 0, False, 64)
        assert memory.issue(1, 0, False, 64) == 1 + 10
        assert memory.stats.hits == 1
        assert memory.stats.misses == 1

    def test_warm_makes_hits(self):
        memory = MemorySystem()
        memory.warm(0, 256)
        ready = memory.issue(0, 64, False, 64)
        assert ready == memory.params.l2_hit_latency

    def test_dram_bandwidth_serialises_misses(self):
        params = MemoryParams(dram_latency=90, dram_gap_cycles=4)
        memory = MemorySystem(params)
        first = memory.issue(0, 0, False, 64)
        second = memory.issue(1, 64, False, 64)
        assert second == first + 4

    def test_accepts_per_cycle_enforced(self):
        memory = MemorySystem()
        assert memory.can_accept(5)
        memory.issue(5, 0, False, 64)
        assert not memory.can_accept(5)
        assert memory.can_accept(6)
        with pytest.raises(RuntimeError):
            memory.issue(5, 64, False, 64)

    def test_lru_eviction(self):
        params = MemoryParams(l2_size_bytes=2 * 64)  # two lines
        memory = MemorySystem(params)
        memory.issue(0, 0, False, 64)
        memory.issue(1, 64, False, 64)
        memory.issue(2, 128, False, 64)  # evicts line 0
        memory.issue(3, 0, False, 64)
        assert memory.stats.misses == 4

    def test_stats_track_traffic(self):
        memory = MemorySystem()
        memory.issue(0, 0, False, 48)
        memory.issue(1, 64, True, 16)
        assert memory.stats.bytes_read == 48
        assert memory.stats.bytes_written == 16
        assert memory.stats.requests == 2


class TestScratchpad:
    def test_round_trip(self):
        scratch = Scratchpad(4096)
        scratch.write(100, b"data!")
        assert scratch.read(100, 5) == b"data!"

    def test_bounds_checked(self):
        scratch = Scratchpad(4096)
        with pytest.raises(ScratchpadError):
            scratch.read(4090, 10)
        with pytest.raises(ScratchpadError):
            scratch.write(-1, b"x")

    def test_word_helpers(self):
        scratch = Scratchpad(4096)
        scratch.write_word(8, -3, 8)
        assert scratch.read_word(8, signed=True) == -3
        assert scratch.read_extended(8, 8, False) == (1 << 64) - 3

    def test_stats(self):
        scratch = Scratchpad(4096)
        scratch.write(0, b"12345678")
        scratch.read(0, 8)
        assert scratch.stats.writes == 1
        assert scratch.stats.reads == 1
        assert scratch.stats.bytes_read == 8

    def test_size_must_be_multiple_of_width(self):
        with pytest.raises(ValueError):
            Scratchpad(100, 64)
