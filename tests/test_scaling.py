"""Size-stability checks: the reported ratios survive workload scaling.

Every result in EXPERIMENTS.md is a ratio between machines evaluated at the
same (scaled-down) sizes.  These tests double a workload's size and check
the Softbrain-vs-CPU ratio moves by less than a small factor — evidence the
scaled sizes do not distort the comparisons' shape.
"""

import pytest

from repro.baselines.cpu import estimate_cpu_cycles
from repro.workloads.common import run_and_verify
from repro.workloads.machsuite.gemm import build_gemm, gemm_census
from repro.workloads.machsuite.stencil2d import build_stencil2d, stencil2d_census
from repro.workloads.machsuite.viterbi import build_viterbi, viterbi_census


def speedup(built, census):
    result = run_and_verify(built)
    return estimate_cpu_cycles(census).cycles / result.cycles


class TestSizeStability:
    def test_gemm_ratio_stable_under_scaling(self):
        small = speedup(build_gemm(n=16), gemm_census(16))
        large = speedup(build_gemm(n=32), gemm_census(32))
        assert 0.5 < large / small < 2.5

    def test_stencil_ratio_stable_under_scaling(self):
        small = speedup(
            build_stencil2d(width=18, height=10), stencil2d_census(18, 10)
        )
        large = speedup(
            build_stencil2d(width=34, height=18), stencil2d_census(34, 18)
        )
        assert 0.5 < large / small < 2.5

    def test_viterbi_ratio_stable_under_scaling(self):
        small = speedup(
            build_viterbi(n_states=8, n_steps=12), viterbi_census(8, 12)
        )
        large = speedup(
            build_viterbi(n_states=16, n_steps=24), viterbi_census(16, 24)
        )
        assert 0.4 < large / small < 3.0

    def test_larger_problems_take_proportionally_longer(self):
        small = run_and_verify(build_gemm(n=16)).cycles
        large = run_and_verify(build_gemm(n=32)).cycles
        work_ratio = (32 / 16) ** 3
        time_ratio = large / small
        # near-linear in MAC count (within a factor of 2 of proportional)
        assert work_ratio / 2 < time_ratio < work_ratio * 2
