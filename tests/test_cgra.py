"""Unit tests for the CGRA hardware model: FUs, PEs, mesh, fabric."""

import pytest

from repro.cgra import (
    ALU,
    DIVIDER,
    Fabric,
    FabricError,
    HwVectorPort,
    MULTIPLIER,
    MeshNetwork,
    SIGMOID_UNIT,
    broadly_provisioned,
    build_fabric,
    dnn_provisioned,
    fu_for_name,
    make_pe,
)
from repro.cgra.fu import capability_histogram


class TestFuTypes:
    def test_alu_supports_basics(self):
        for op in ("add", "sub", "min", "select", "acc", "hadd"):
            assert ALU.supports(op)

    def test_alu_does_not_multiply(self):
        assert not ALU.supports("mul")

    def test_multiplier_is_alu_superset(self):
        assert MULTIPLIER.supports("mul")
        assert MULTIPLIER.supports("add")

    def test_divider_richest(self):
        assert DIVIDER.supports("div")
        assert DIVIDER.supports("mul")

    def test_sigmoid_unit(self):
        assert SIGMOID_UNIT.supports("sigmoid")
        assert not MULTIPLIER.supports("sigmoid")

    def test_fu_for_name_unknown(self):
        with pytest.raises(KeyError):
            fu_for_name("fpga")

    def test_capability_histogram(self):
        histogram = capability_histogram(["alu", "mul"])
        assert histogram["add"] == 2
        assert histogram["mul"] == 1


class TestMesh:
    def test_neighbors_corner(self):
        mesh = MeshNetwork(3, 3)
        assert set(mesh.neighbors((0, 0))) == {(1, 0), (0, 1)}

    def test_neighbors_interior(self):
        mesh = MeshNetwork(3, 3)
        assert len(mesh.neighbors((1, 1))) == 4

    def test_num_links(self):
        mesh = MeshNetwork(3, 2)
        assert mesh.num_links == len(list(mesh.links()))
        assert mesh.num_links == 2 * (2 * 2 + 3 * 1)

    def test_manhattan(self):
        mesh = MeshNetwork(5, 4)
        assert mesh.manhattan((0, 0), (3, 2)) == 5

    def test_edges(self):
        mesh = MeshNetwork(4, 3)
        assert mesh.top_edge() == [(x, 0) for x in range(4)]
        assert mesh.bottom_edge() == [(x, 2) for x in range(4)]

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            MeshNetwork(0, 1)
        with pytest.raises(ValueError):
            MeshNetwork(2, 2, channels=0)


class TestVectorPortSpec:
    def test_capacity(self):
        port = HwVectorPort(0, "in", 4, 16, ((0, 0),) * 4)
        assert port.capacity_words == 64

    def test_width_bounds(self):
        with pytest.raises(ValueError):
            HwVectorPort(0, "in", 9, 16)
        with pytest.raises(ValueError):
            HwVectorPort(0, "in", 0, 16)

    def test_direction_checked(self):
        with pytest.raises(ValueError):
            HwVectorPort(0, "diagonal", 4, 16)


class TestFabric:
    def test_dnn_preset_dimensions(self):
        fabric = dnn_provisioned()
        assert fabric.num_fus == 20
        assert fabric.mesh.cols == 5 and fabric.mesh.rows == 4

    def test_dnn_preset_fu_mix(self):
        histogram = dnn_provisioned().fu_histogram()
        assert histogram["mul"] == 8
        assert histogram["sigmoid"] == 1

    def test_broad_preset_has_dividers(self):
        histogram = broadly_provisioned().fu_histogram()
        assert histogram["div"] == 2

    def test_broad_preset_indirect_ports(self):
        assert len(broadly_provisioned().indirect_ports) == 4

    def test_pes_supporting(self):
        fabric = dnn_provisioned()
        assert len(fabric.pes_supporting("mul")) == 8
        assert len(fabric.pes_supporting("add")) == 20  # every FU has ALU ops
        assert len(fabric.pes_supporting("sigmoid")) == 1

    def test_find_port(self):
        fabric = dnn_provisioned()
        port = fabric.find_port("in", 0)
        assert port.width == 8
        with pytest.raises(FabricError):
            fabric.find_port("in", 99)

    def test_attach_coordinates_in_bounds(self):
        fabric = broadly_provisioned()
        for port in fabric.input_ports + fabric.output_ports:
            for coord in port.attach:
                assert fabric.mesh.in_bounds(coord)

    def test_input_ports_attach_top_outputs_bottom(self):
        fabric = dnn_provisioned()
        assert all(c[1] == 0 for p in fabric.input_ports for c in p.attach)
        assert all(
            c[1] == fabric.mesh.rows - 1
            for p in fabric.output_ports
            for c in p.attach
        )

    def test_config_size_reasonable(self):
        size = dnn_provisioned().config_size_bytes
        # should load in <10 cycles at 64 B/cycle when cached (paper claim)
        assert size <= 10 * 64

    def test_bad_grid_rejected(self):
        with pytest.raises(FabricError):
            build_fabric("bad", 2, 2, [["alu", "alu"]], [1], [1])

    def test_make_pe(self):
        pe = make_pe(1, 2, "mul")
        assert pe.coord == (1, 2)
        assert pe.supports("mul")
        assert str(pe) == "PE(1,2:mul)"
