"""Unit tests for the spatial compiler: routing, placement, delay matching."""

import pytest

from repro.cgra import MeshNetwork, broadly_provisioned, build_fabric, dnn_provisioned
from repro.core.compiler import (
    CgraConfig,
    DelayMatchError,
    RouterState,
    RoutingError,
    SchedulingError,
    compute_delays,
    map_ports,
    route_value,
    schedule,
)
from repro.core.dfg import DfgBuilder, parse_dfg

DOT = parse_dfg(
    "input A 3\ninput B 3\n"
    "m0 = mul A.0 B.0\nm1 = mul A.1 B.1\nm2 = mul A.2 B.2\n"
    "s0 = add m0 m1\ns1 = add s0 m2\noutput C s1",
    "dot3",
)


class TestRouter:
    def test_same_coord_empty_path(self):
        state = RouterState(MeshNetwork(3, 3))
        assert route_value(state, "v", (1, 1), (1, 1)) == []

    def test_path_connects_endpoints(self):
        state = RouterState(MeshNetwork(4, 4))
        path = route_value(state, "v", (0, 0), (3, 3))
        assert path[0][0] == (0, 0)
        assert path[-1][1] == (3, 3)
        for (_src, a), (b, _dst) in zip(path, path[1:]):
            assert a == b
        assert len(path) == 6  # shortest

    def test_multicast_free_reuse(self):
        state = RouterState(MeshNetwork(4, 1, channels=1))
        route_value(state, "v", (0, 0), (3, 0))
        # same value again: reuses the claimed channels at zero extra cost
        path = route_value(state, "v", (0, 0), (2, 0))
        assert len(path) == 2
        assert state.total_channels_used() == 3

    def test_capacity_exhaustion(self):
        state = RouterState(MeshNetwork(2, 1, channels=1))
        route_value(state, "v1", (0, 0), (1, 0))
        with pytest.raises(RoutingError):
            route_value(state, "v2", (0, 0), (1, 0))

    def test_congestion_detour(self):
        # 3x2: block the straight path for a different value, expect detour
        state = RouterState(MeshNetwork(3, 2, channels=1))
        route_value(state, "v1", (0, 0), (1, 0))
        route_value(state, "v2", (1, 0), (2, 0))
        path = route_value(state, "v3", (0, 0), (2, 0))
        assert len(path) == 4  # around through row 1


class TestPortMapping:
    def test_widest_gets_sufficient_port(self):
        mapping = map_ports(DOT, dnn_provisioned())
        fabric = dnn_provisioned()
        for name in ("A", "B"):
            hw = fabric.find_port("in", mapping[name])
            assert hw.width >= 3
        assert fabric.find_port("out", mapping["C"]).width >= 1

    def test_distinct_ports(self):
        mapping = map_ports(DOT, dnn_provisioned())
        assert mapping["A"] != mapping["B"]

    def test_too_many_wide_ports_rejected(self):
        b = DfgBuilder("wide")
        handles = [b.input(f"I{i}", 8) for i in range(4)]
        total = b.reduce_tree("add", [h[0] for h in handles])
        b.output("O", total)
        dfg = b.build()
        fabric = build_fabric(
            "tiny", 2, 2,
            [["alu", "alu"], ["alu", "alu"]],
            input_widths=[8, 8],  # only two wide ports
            output_widths=[1],
        )
        with pytest.raises(SchedulingError, match="vector port"):
            map_ports(dfg, fabric)


class TestDelayMatching:
    def test_balanced_paths_zero_delay(self):
        dfg = parse_dfg(
            "input A 2\nx = add A.0 A.1\noutput O x", "bal"
        )
        hops = {
            ("A", "x", 0): 1,
            ("A.1", "x", 1): 1,
            ("x", "out:O", 0): 1,
        }
        solution = compute_delays(dfg, hops)
        assert all(d == 0 for d in solution.extra_delay.values())
        # operands arrive at 2 (hop+switch), add finishes at 3, output edge
        # adds another hop+switch -> 5
        assert solution.latency == 5

    def test_unbalanced_operand_gets_delay(self):
        dfg = parse_dfg("input A 2\nx = add A.0 A.1\noutput O x", "unbal")
        hops = {
            ("A", "x", 0): 5,
            ("A.1", "x", 1): 1,
            ("x", "out:O", 0): 0,
        }
        solution = compute_delays(dfg, hops)
        assert solution.extra_delay[("A.1", "x", 1)] == 4
        assert solution.extra_delay[("A", "x", 0)] == 0

    def test_excessive_delay_raises(self):
        dfg = parse_dfg("input A 2\nx = add A.0 A.1\noutput O x", "deep")
        hops = {
            ("A", "x", 0): 200,
            ("A.1", "x", 1): 0,
            ("x", "out:O", 0): 0,
        }
        with pytest.raises(DelayMatchError):
            compute_delays(dfg, hops)

    def test_output_lanes_matched(self):
        dfg = parse_dfg(
            "input A 2\nx = pass A.0\ny = pass A.1\noutput O x y", "lanes"
        )
        hops = {
            ("A", "x", 0): 0,
            ("A.1", "y", 0): 0,
            ("x", "out:O", 0): 4,
            ("y", "out:O", 1): 1,
        }
        solution = compute_delays(dfg, hops)
        assert solution.extra_delay[("y", "out:O", 1)] == 3


class TestSchedule:
    def test_dot_product_schedules(self):
        config = schedule(DOT, dnn_provisioned())
        assert isinstance(config, CgraConfig)
        assert len(config.placement) == 5
        assert config.initiation_interval == 1

    def test_deterministic_for_seed(self):
        c1 = schedule(DOT, dnn_provisioned(), seed=3)
        c2 = schedule(DOT, dnn_provisioned(), seed=3)
        assert c1.placement == c2.placement

    def test_placement_respects_fu_capability(self):
        config = schedule(DOT, dnn_provisioned())
        for name, coord in config.placement.items():
            inst = DOT.instructions[name]
            assert config.fabric.pes[coord].supports(inst.op.name)

    def test_placement_no_overlap(self):
        config = schedule(DOT, dnn_provisioned())
        coords = list(config.placement.values())
        assert len(coords) == len(set(coords))

    def test_every_edge_routed(self):
        config = schedule(DOT, dnn_provisioned())
        # 10 operand edges (5 two-input instructions) + 1 output edge
        assert len(config.edges) == 11

    def test_latency_covers_op_latency_and_hops(self):
        config = schedule(DOT, dnn_provisioned())
        # mul(2) + add(1) + add(1) = 4 plus at least one switch per edge
        assert config.latency >= 4 + 3

    def test_unsupported_op_rejected(self):
        dfg = parse_dfg("input A\nx = sigmoid A\noutput O x", "sig")
        fabric = build_fabric(
            "nosig", 2, 2,
            [["alu", "alu"], ["alu", "mul"]],
            input_widths=[1],
            output_widths=[1],
        )
        with pytest.raises(SchedulingError, match="sigmoid"):
            schedule(dfg, fabric)

    def test_too_many_instructions_rejected(self):
        b = DfgBuilder("big")
        a = b.input("A", 1)
        value = a[0]
        for _ in range(30):  # more muls than the fabric has mul FUs
            value = b.mul(value, 3)
        b.output("O", value)
        with pytest.raises(SchedulingError):
            schedule(b.build(), dnn_provisioned())

    def test_scarce_fus_left_for_scarce_ops(self):
        # classifier-like graph: sigmoid must land on the single sigmoid FU
        dfg = parse_dfg(
            "input A 2\nm = mul A.0 A.1\ns = sigmoid m\noutput O s", "sig2"
        )
        config = schedule(dfg, dnn_provisioned())
        coord = config.placement["s"]
        assert config.fabric.pes[coord].fu.name == "sigmoid"

    def test_summary_and_stats(self):
        config = schedule(DOT, dnn_provisioned())
        assert "dot3" in config.summary()
        assert config.total_hops >= 0
        assert sum(config.active_fus().values()) == 5
        assert config.config_size_bytes > 0

    def test_broadly_provisioned_handles_all_ops(self):
        dfg = parse_dfg(
            "input A 2\nd = div A.0 A.1\nm = mul d A.1\noutput O m", "divmul"
        )
        config = schedule(dfg, broadly_provisioned())
        assert len(config.placement) == 2
