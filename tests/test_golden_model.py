"""Golden-model cross-validation: cycle simulator vs functional interpreter.

Every workload runs twice — once on the cycle-level Softbrain simulator and
once on the untimed functional interpreter — and both must satisfy the
workload's verifier.  This is the two-simulator methodology real
accelerator stacks use: any semantics divergence between the engines and
the ISA's definition shows up here.
"""

import copy

import pytest

from repro.core.isa.interpreter import FunctionalDeadlock, interpret_program
from repro.sim.memory import BackingStore, MemorySystem
from repro.workloads.common import run_and_verify
from repro.workloads.dnn import build_classifier, build_conv, build_pool
from repro.workloads.dnn.layers import ClassifierLayer, ConvLayer, PoolLayer
from repro.workloads.machsuite import MACHSUITE


def functional_verify(built) -> None:
    """Run the program on the golden model and apply the same verifier."""
    store = copy.deepcopy(built.memory.store)
    interpret_program(built.program, store)
    shadow = MemorySystem()
    shadow.store = store
    original = built.memory
    built.memory = shadow
    try:
        built.verify(shadow)
    finally:
        built.memory = original


SMALL_BUILDERS = {
    "gemm": lambda: MACHSUITE["gemm"][0](n=8),
    "stencil": lambda: MACHSUITE["stencil"][0](width=10, height=6),
    "stencil3d": lambda: MACHSUITE["stencil3d"][0](side=6),
    "spmv-crs": lambda: MACHSUITE["spmv-crs"][0](n=16),
    "spmv-ellpack": lambda: MACHSUITE["spmv-ellpack"][0](n=16),
    "bfs": lambda: MACHSUITE["bfs"][0](n=24, e=60),
    "md": lambda: MACHSUITE["md"][0](n=16, k=4),
    "viterbi": lambda: MACHSUITE["viterbi"][0](n_states=8, n_steps=6),
    "fft": lambda: MACHSUITE["fft"][0](n=16),
    "nw": lambda: MACHSUITE["nw"][0](length=10),
    "backprop": lambda: MACHSUITE["backprop"][0](n_in=6, n_out=8),
}


class TestMachSuiteGoldenModel:
    @pytest.mark.parametrize("name", sorted(SMALL_BUILDERS))
    def test_functional_model_verifies(self, name):
        functional_verify(SMALL_BUILDERS[name]())

    @pytest.mark.parametrize("name", ["gemm", "spmv-crs", "fft"])
    def test_both_engines_agree(self, name):
        built = SMALL_BUILDERS[name]()
        functional_verify(built)  # golden model first (fresh memory copy)
        run_and_verify(built)  # then the cycle-level simulator


class TestDnnGoldenModel:
    def test_classifier(self):
        functional_verify(
            build_classifier(ClassifierLayer("gm-class", ni=32, nn=4))
        )

    def test_conv(self):
        functional_verify(
            build_conv(ConvLayer("gm-conv", out_w=8, out_h=4, n_in=2, k=3,
                                 n_out=2))
        )

    def test_pool(self):
        functional_verify(
            build_pool(PoolLayer("gm-pool", in_w=16, in_h=8, maps=2, window=2))
        )


class TestFunctionalDeadlock:
    def test_starved_port_detected(self):
        from repro.cgra import dnn_provisioned
        from repro.core.compiler import schedule
        from repro.core.dfg import parse_dfg
        from repro.core.isa import StreamProgram

        config = schedule(
            parse_dfg("input A\ninput B\nx = add A B\noutput O x", "stuck"),
            dnn_provisioned(),
        )
        program = StreamProgram("stuck", config)
        program.mem_port(0, 8, 8, 1, "A")  # B never fed
        program.port_mem("O", 8, 8, 1, 0x100)
        program.barrier_all()
        with pytest.raises(FunctionalDeadlock):
            interpret_program(program, BackingStore())

    def test_deadlock_message_names_blocked_ports(self):
        """The exception must localise the bug: which command is stuck,
        which port it waits on, and which CGRA input is starved."""
        from repro.cgra import dnn_provisioned
        from repro.core.compiler import schedule
        from repro.core.dfg import parse_dfg
        from repro.core.isa import StreamProgram

        config = schedule(
            parse_dfg("input A\ninput B\nx = add A B\noutput O x", "stuck"),
            dnn_provisioned(),
        )
        program = StreamProgram("stuck", config)
        program.mem_port(0, 8, 8, 1, "A")  # B never fed
        program.port_mem("O", 8, 8, 1, 0x100)
        program.barrier_all()
        with pytest.raises(FunctionalDeadlock) as excinfo:
            interpret_program(program, BackingStore())
        message = str(excinfo.value)
        # The stuck drain names the output port it is blocked on...
        assert f"out{config.hw_output_port('O')}:r" in message
        assert "0/1 elements" in message
        # ...and the starvation report names the unfed input port.
        assert f"in{config.hw_input_port('B')} (B): 0/1 words" in message


def _passthrough_config():
    from repro.cgra import broadly_provisioned
    from repro.core.compiler import schedule
    from repro.core.dfg import parse_dfg

    return schedule(
        parse_dfg("input A\nx = pass A\noutput O x", "thru"),
        broadly_provisioned(),
    )


def _both_engines(program, memory):
    """Run on the cycle simulator and the functional interpreter; return
    (sim RunResult, interpreter store, interpreter final state)."""
    from repro.cgra import broadly_provisioned
    from repro.sim.softbrain import run_program

    store = copy.deepcopy(memory.store)
    result = run_program(program, fabric=broadly_provisioned(), memory=memory)
    final = interpret_program(program, store)
    return result, store, final


class TestGoldenModelEdgeCases:
    """Hand-written corner cases for the ISA features the original
    workloads exercise only lightly (see also the generated coverage in
    tests/test_fuzz.py)."""

    def test_indirect_port_mem_roundtrip(self):
        """Gather table[perm] into the CGRA, scatter it back through the
        same permutation: the output region must equal the table."""
        from repro.core.isa import StreamProgram
        from repro.workloads.common import read_words, write_words

        config = _passthrough_config()
        n = 12
        table = [(i * 0x9E37) & 0xFFFF_FFFF_FFFF_FFFF for i in range(n)]
        perm = [7, 3, 11, 0, 9, 5, 1, 10, 2, 8, 4, 6]
        table_addr, idx_addr, idx2_addr, out_addr = 0x1000, 0x2000, 0x3000, 0x4000

        program = StreamProgram("ind-roundtrip", config)
        program.mem_to_indirect(idx_addr, n, 0)
        program.ind_port_port(0, table_addr, "A", n)
        program.mem_to_indirect(idx2_addr, n, 1)
        program.ind_port_mem(1, "O", out_addr, n)
        program.barrier_all()

        memory = MemorySystem()
        write_words(memory, table_addr, table)
        write_words(memory, idx_addr, perm)
        write_words(memory, idx2_addr, perm)

        result, store, _ = _both_engines(program, memory)
        expected = [table[i] if i in perm else 0 for i in range(n)]
        assert read_words(memory, out_addr, n, signed=False) == expected
        got_interp = [store.read_word(out_addr + 8 * i) for i in range(n)]
        assert got_interp == expected
        assert result.stats.instances_fired == n

    def test_mem_scratch_port_roundtrip(self):
        """memory -> scratchpad -> port -> memory preserves the array, and
        both engines leave identical scratchpad images."""
        from repro.core.isa import StreamProgram
        from repro.workloads.common import read_words, write_words

        config = _passthrough_config()
        n = 10
        array = [3 * i + 1 for i in range(n)]
        src_addr, out_addr, scratch_addr = 0x1000, 0x2000, 256

        program = StreamProgram("scratch-roundtrip", config)
        program.mem_scratch(src_addr, 8 * n, 8 * n, 1, scratch_addr)
        program.barrier_scratch_wr()
        program.scratch_port(scratch_addr, 8 * n, 8 * n, 1, "A")
        program.port_mem("O", 8 * n, 8 * n, 1, out_addr)
        program.barrier_all()

        memory = MemorySystem()
        write_words(memory, src_addr, array)

        result, store, final = _both_engines(program, memory)
        assert read_words(memory, out_addr, n) == array
        assert [store.read_word(out_addr + 8 * i) for i in range(n)] == array
        packed = b"".join(v.to_bytes(8, "little") for v in array)
        window = slice(scratch_addr, scratch_addr + 8 * n)
        assert result.scratchpad.snapshot()[window] == packed
        assert bytes(final.scratch[window]) == packed

    def test_zero_length_streams_rejected(self):
        """The ISA has no zero-element streams: every constructor rejects
        them at build time rather than hanging an engine."""
        from repro.core.isa import (
            Affine2D,
            SDCleanPort,
            SDConstPort,
            SDPortPort,
            in_port,
            out_port,
        )
        from repro.core.isa.patterns import PatternError

        with pytest.raises(ValueError):
            SDConstPort(1, 0, in_port(0))
        with pytest.raises(ValueError):
            SDCleanPort(0, out_port(0))
        with pytest.raises(ValueError):
            SDPortPort(out_port(0), 0, in_port(1))
        with pytest.raises(PatternError):
            Affine2D(0, 8, 8, 0, 8)  # zero strides
        with pytest.raises(PatternError):
            Affine2D(0, 0, 8, 1, 8)  # zero-byte access
