"""Golden-model cross-validation: cycle simulator vs functional interpreter.

Every workload runs twice — once on the cycle-level Softbrain simulator and
once on the untimed functional interpreter — and both must satisfy the
workload's verifier.  This is the two-simulator methodology real
accelerator stacks use: any semantics divergence between the engines and
the ISA's definition shows up here.
"""

import copy

import pytest

from repro.core.isa.interpreter import FunctionalDeadlock, interpret_program
from repro.sim.memory import BackingStore, MemorySystem
from repro.workloads.common import run_and_verify
from repro.workloads.dnn import build_classifier, build_conv, build_pool
from repro.workloads.dnn.layers import ClassifierLayer, ConvLayer, PoolLayer
from repro.workloads.machsuite import MACHSUITE


def functional_verify(built) -> None:
    """Run the program on the golden model and apply the same verifier."""
    store = copy.deepcopy(built.memory.store)
    interpret_program(built.program, store)
    shadow = MemorySystem()
    shadow.store = store
    original = built.memory
    built.memory = shadow
    try:
        built.verify(shadow)
    finally:
        built.memory = original


SMALL_BUILDERS = {
    "gemm": lambda: MACHSUITE["gemm"][0](n=8),
    "stencil": lambda: MACHSUITE["stencil"][0](width=10, height=6),
    "stencil3d": lambda: MACHSUITE["stencil3d"][0](side=6),
    "spmv-crs": lambda: MACHSUITE["spmv-crs"][0](n=16),
    "spmv-ellpack": lambda: MACHSUITE["spmv-ellpack"][0](n=16),
    "bfs": lambda: MACHSUITE["bfs"][0](n=24, e=60),
    "md": lambda: MACHSUITE["md"][0](n=16, k=4),
    "viterbi": lambda: MACHSUITE["viterbi"][0](n_states=8, n_steps=6),
    "fft": lambda: MACHSUITE["fft"][0](n=16),
    "nw": lambda: MACHSUITE["nw"][0](length=10),
    "backprop": lambda: MACHSUITE["backprop"][0](n_in=6, n_out=8),
}


class TestMachSuiteGoldenModel:
    @pytest.mark.parametrize("name", sorted(SMALL_BUILDERS))
    def test_functional_model_verifies(self, name):
        functional_verify(SMALL_BUILDERS[name]())

    @pytest.mark.parametrize("name", ["gemm", "spmv-crs", "fft"])
    def test_both_engines_agree(self, name):
        built = SMALL_BUILDERS[name]()
        functional_verify(built)  # golden model first (fresh memory copy)
        run_and_verify(built)  # then the cycle-level simulator


class TestDnnGoldenModel:
    def test_classifier(self):
        functional_verify(
            build_classifier(ClassifierLayer("gm-class", ni=32, nn=4))
        )

    def test_conv(self):
        functional_verify(
            build_conv(ConvLayer("gm-conv", out_w=8, out_h=4, n_in=2, k=3,
                                 n_out=2))
        )

    def test_pool(self):
        functional_verify(
            build_pool(PoolLayer("gm-pool", in_w=16, in_h=8, maps=2, window=2))
        )


class TestFunctionalDeadlock:
    def test_starved_port_detected(self):
        from repro.cgra import dnn_provisioned
        from repro.core.compiler import schedule
        from repro.core.dfg import parse_dfg
        from repro.core.isa import StreamProgram

        config = schedule(
            parse_dfg("input A\ninput B\nx = add A B\noutput O x", "stuck"),
            dnn_provisioned(),
        )
        program = StreamProgram("stuck", config)
        program.mem_port(0, 8, 8, 1, "A")  # B never fed
        program.port_mem("O", 8, 8, 1, 0x100)
        program.barrier_all()
        with pytest.raises(FunctionalDeadlock):
            interpret_program(program, BackingStore())
