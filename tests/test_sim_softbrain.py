"""Integration tests: complete stream programs on the cycle-level simulator.

Each test builds a small program exercising one architectural mechanism —
affine streams, constants, cleans, recurrences, indirect gather/scatter,
scratchpad staging, barriers, reconfiguration — and checks both functional
results and basic timing sanity.
"""

import pytest

from repro.cgra import broadly_provisioned, dnn_provisioned
from repro.core.compiler import schedule
from repro.core.dfg import DfgBuilder, parse_dfg
from repro.core.isa import StreamProgram
from repro.sim import (
    MemorySystem,
    SimulationDeadlock,
    SoftbrainParams,
    run_program,
    render_timeline,
)
from repro.workloads.common import read_words, write_words


def passthrough_config(fabric):
    dfg = parse_dfg("input A\nx = pass A\noutput O x", "copy")
    return schedule(dfg, fabric)


def adder_config(fabric):
    dfg = parse_dfg("input A\ninput B\nx = add A B\noutput O x", "adder")
    return schedule(dfg, fabric)


class TestBasicStreams:
    def test_memory_copy_through_fabric(self):
        fabric = dnn_provisioned()
        memory = MemorySystem()
        data = list(range(100, 132))
        write_words(memory, 0x1000, data)
        program = StreamProgram("copy", passthrough_config(fabric))
        program.mem_port(0x1000, 256, 256, 1, "A")
        program.port_mem("O", 256, 256, 1, 0x8000)
        program.barrier_all()
        result = run_program(program, fabric=fabric, memory=memory)
        assert read_words(memory, 0x8000, 32) == data
        assert result.stats.instances_fired == 32

    def test_constant_stream_and_add(self):
        fabric = dnn_provisioned()
        memory = MemorySystem()
        write_words(memory, 0, [1, 2, 3, 4])
        program = StreamProgram("addk", adder_config(fabric))
        program.mem_port(0, 32, 32, 1, "A")
        program.const_port(1000, 4, "B")
        program.port_mem("O", 32, 32, 1, 0x100)
        program.barrier_all()
        run_program(program, fabric=fabric, memory=memory)
        assert read_words(memory, 0x100, 4) == [1001, 1002, 1003, 1004]

    def test_strided_read(self):
        fabric = dnn_provisioned()
        memory = MemorySystem()
        write_words(memory, 0, list(range(16)))
        program = StreamProgram("stride", passthrough_config(fabric))
        # every fourth word
        program.mem_port(0, 32, 8, 4, "A")
        program.port_mem("O", 32, 32, 1, 0x200)
        program.barrier_all()
        run_program(program, fabric=fabric, memory=memory)
        assert read_words(memory, 0x200, 4) == [0, 4, 8, 12]

    def test_repeating_read(self):
        fabric = dnn_provisioned()
        memory = MemorySystem()
        write_words(memory, 0, [7])
        program = StreamProgram("repeat", passthrough_config(fabric))
        program.mem_port(0, 0, 8, 5, "A")
        program.port_mem("O", 40, 40, 1, 0x200)
        program.barrier_all()
        run_program(program, fabric=fabric, memory=memory)
        assert read_words(memory, 0x200, 5) == [7] * 5

    def test_narrow_elements_sign_extended(self):
        fabric = dnn_provisioned()
        memory = MemorySystem()
        write_words(memory, 0, [-1, -2, 3, 4], elem_bytes=2)
        program = StreamProgram("narrow", passthrough_config(fabric))
        program.mem_port(0, 8, 8, 1, "A", elem_bytes=2, signed=True)
        program.port_mem("O", 32, 32, 1, 0x200)
        program.barrier_all()
        run_program(program, fabric=fabric, memory=memory)
        assert read_words(memory, 0x200, 4) == [-1, -2, 3, 4]

    def test_narrow_store_truncates(self):
        fabric = dnn_provisioned()
        memory = MemorySystem()
        write_words(memory, 0, [0x1_0005])
        program = StreamProgram("trunc", passthrough_config(fabric))
        program.mem_port(0, 8, 8, 1, "A")
        program.port_mem("O", 2, 2, 1, 0x200, elem_bytes=2)
        program.barrier_all()
        run_program(program, fabric=fabric, memory=memory)
        assert read_words(memory, 0x200, 1, elem_bytes=2) == [5]


class TestCleanAndAccumulate:
    def test_clean_discards_intermediates(self):
        fabric = dnn_provisioned()
        b = DfgBuilder("accsum")
        a = b.input("A", 1)
        r = b.input("R", 1)
        b.output("C", b.accumulate(a[0], r[0]))
        config = schedule(b.build(), fabric)
        memory = MemorySystem()
        write_words(memory, 0, [1, 2, 3, 4, 5, 6, 7, 8])
        program = StreamProgram("accsum", config)
        program.mem_port(0, 64, 64, 1, "A")
        program.const_port(0, 7, "R")
        program.const_port(1, 1, "R")
        program.clean_port(7, "C")
        program.port_mem("C", 8, 8, 1, 0x300)
        program.barrier_all()
        run_program(program, fabric=fabric, memory=memory)
        assert read_words(memory, 0x300, 1) == [36]


class TestRecurrence:
    def test_port_port_running_sum(self):
        # y[i] = y[i-1] + x[i] via an explicit recurrence stream.  The sum
        # leaves through two output ports: one to memory, one recirculated
        # (each port word is consumed exactly once).
        fabric = dnn_provisioned()
        dfg = parse_dfg(
            "input A\ninput B\nx = add A B\noutput O x\noutput Y x",
            "prefix",
        )
        config = schedule(dfg, fabric)
        memory = MemorySystem()
        n = 8
        write_words(memory, 0, [10] * n)
        program = StreamProgram("prefix", config)
        program.const_port(0, 1, "B")  # seed y[-1] = 0
        program.mem_port(0, n * 8, n * 8, 1, "A")
        program.port_port("Y", n - 1, "B")  # feed sums back
        program.clean_port(1, "Y")  # final sum is not recirculated
        program.port_mem("O", 8, 8, n, 0x400)
        program.barrier_all()
        run_program(program, fabric=fabric, memory=memory)
        assert read_words(memory, 0x400, n) == [10 * (i + 1) for i in range(n)]


class TestIndirect:
    def test_gather(self):
        fabric = broadly_provisioned()
        memory = MemorySystem()
        table = [v * 11 for v in range(32)]
        indices = [5, 3, 30, 0, 7, 7, 2, 31]
        write_words(memory, 0x1000, table)
        write_words(memory, 0x2000, indices)
        program = StreamProgram("gather", passthrough_config(fabric))
        program.mem_to_indirect(0x2000, len(indices), 0)
        program.ind_port_port(0, 0x1000, "A", len(indices))
        program.port_mem("O", 64, 64, 1, 0x3000)
        program.barrier_all()
        run_program(program, fabric=fabric, memory=memory)
        assert read_words(memory, 0x3000, 8) == [table[i] for i in indices]

    def test_scatter(self):
        fabric = broadly_provisioned()
        memory = MemorySystem()
        values = [100, 200, 300, 400]
        indices = [9, 1, 4, 0]
        write_words(memory, 0x1000, values)
        write_words(memory, 0x2000, indices)
        program = StreamProgram("scatter", passthrough_config(fabric))
        program.mem_port(0x1000, 32, 32, 1, "A")
        program.mem_to_indirect(0x2000, 4, 0)
        program.ind_port_mem(0, "O", 0x3000, 4)
        program.barrier_all()
        run_program(program, fabric=fabric, memory=memory)
        out = read_words(memory, 0x3000, 10)
        assert out[9] == 100 and out[1] == 200 and out[4] == 300 and out[0] == 400

    def test_chained_indirection(self):
        # a[b[c[i]]]: two levels of gather through indirect ports
        fabric = broadly_provisioned()
        memory = MemorySystem()
        a = [1000 + i for i in range(16)]
        b = [3, 1, 4, 1, 5, 9, 2, 6]
        c = [7, 0, 2]
        write_words(memory, 0x1000, a)
        write_words(memory, 0x2000, b)
        write_words(memory, 0x3000, c)
        program = StreamProgram("chain", passthrough_config(fabric))
        program.mem_to_indirect(0x3000, 3, 0)
        # gather b[c[i]] into a second indirect port
        from repro.core.isa import ind_port

        program.ind_port_port(0, 0x2000, ind_port(1), 3)
        program.ind_port_port(1, 0x1000, "A", 3)
        program.port_mem("O", 24, 24, 1, 0x4000)
        program.barrier_all()
        run_program(program, fabric=fabric, memory=memory)
        assert read_words(memory, 0x4000, 3) == [a[b[ci]] for ci in c]


class TestScratchpad:
    def test_stage_and_reuse(self):
        fabric = dnn_provisioned()
        memory = MemorySystem()
        write_words(memory, 0, [5, 6, 7, 8])
        program = StreamProgram("scratch", passthrough_config(fabric))
        program.mem_scratch(0, 32, 32, 1, 64)
        program.barrier_scratch_wr()
        # read it back twice (zero-stride repeating reuse)
        program.scratch_port(64, 0, 32, 2, "A")
        program.port_mem("O", 64, 64, 1, 0x500)
        program.barrier_all()
        run_program(program, fabric=fabric, memory=memory)
        assert read_words(memory, 0x500, 8) == [5, 6, 7, 8, 5, 6, 7, 8]

    def test_port_to_scratch_and_back(self):
        fabric = dnn_provisioned()
        memory = MemorySystem()
        write_words(memory, 0, [3, 1, 4, 1])
        program = StreamProgram("bounce", passthrough_config(fabric))
        program.mem_port(0, 32, 32, 1, "A")
        program.port_scratch("O", 4, 128)
        program.barrier_scratch_wr()
        program.scratch_port(128, 32, 32, 1, "A")
        program.port_mem("O", 32, 32, 1, 0x600)
        program.barrier_all()
        run_program(program, fabric=fabric, memory=memory)
        assert read_words(memory, 0x600, 4) == [3, 1, 4, 1]


class TestReconfiguration:
    def test_two_phases_two_configs(self):
        fabric = dnn_provisioned()
        memory = MemorySystem()
        write_words(memory, 0, [10, 20, 30, 40])
        copy_config = passthrough_config(fabric)
        double_dfg = parse_dfg("input A\nx = add A A\noutput O x", "double")
        double_config = schedule(double_dfg, fabric)

        program = StreamProgram("phases", copy_config)
        program.mem_port(0, 32, 32, 1, "A")
        program.port_mem("O", 32, 32, 1, 0x700)
        program.barrier_all()
        program.config(double_config)
        program.mem_port(0x700, 32, 32, 1, "A")
        program.port_mem("O", 32, 32, 1, 0x800)
        program.barrier_all()
        result = run_program(program, fabric=fabric, memory=memory)
        assert read_words(memory, 0x800, 4) == [20, 40, 60, 80]
        assert result.stats.config_loads == 2


class TestTimingSanity:
    def test_pipelining_beats_serial(self):
        # n instances at II=1 must take far less than n * latency
        fabric = dnn_provisioned()
        memory = MemorySystem()
        n = 64
        write_words(memory, 0, list(range(n)))
        memory.warm(0, n * 8)
        program = StreamProgram("pipeline", passthrough_config(fabric))
        program.mem_port(0, n * 8, n * 8, 1, "A")
        program.port_mem("O", n * 8, n * 8, 1, 0x900)
        program.barrier_all()
        result = run_program(program, fabric=fabric, memory=memory)
        config = program.config_images[next(iter(program.config_images))]
        assert result.cycles < n * config.latency / 2

    def test_timeline_records_lifecycle(self):
        fabric = dnn_provisioned()
        memory = MemorySystem()
        write_words(memory, 0, [1])
        program = StreamProgram("tl", passthrough_config(fabric))
        program.mem_port(0, 8, 8, 1, "A")
        program.port_mem("O", 8, 8, 1, 0x100)
        program.barrier_all()
        result = run_program(program, fabric=fabric, memory=memory)
        for trace in result.timeline:
            assert trace.dispatched is not None
            assert trace.completed is not None
            assert trace.enqueued <= trace.dispatched <= trace.completed
        text = render_timeline(result.timeline)
        assert "SD_MemPort" in text

    def test_cycle_limit_enforced(self):
        fabric = dnn_provisioned()
        memory = MemorySystem()
        write_words(memory, 0, list(range(64)))
        program = StreamProgram("lim", passthrough_config(fabric))
        program.mem_port(0, 512, 512, 1, "A")
        program.port_mem("O", 512, 512, 1, 0x100)
        program.barrier_all()
        from repro.sim import SimulationLimit

        with pytest.raises(SimulationLimit):
            run_program(
                program,
                fabric=fabric,
                memory=memory,
                params=SoftbrainParams(max_cycles=10),
            )


class TestDeadlockDetection:
    def test_starved_port_reports_deadlock(self):
        # A stream feeds port A but the adder also needs port B, which
        # nothing feeds: the simulator must diagnose rather than hang.
        fabric = dnn_provisioned()
        memory = MemorySystem()
        write_words(memory, 0, [1, 2])
        program = StreamProgram("stuck", adder_config(fabric))
        program.mem_port(0, 16, 16, 1, "A")
        program.port_mem("O", 16, 16, 1, 0x100)
        program.barrier_all()
        with pytest.raises(SimulationDeadlock, match="deadlock"):
            run_program(program, fabric=fabric, memory=memory)
