"""Unit tests for StreamProgram: intrinsics, port-name resolution, config."""

import pytest

from repro.cgra import dnn_provisioned
from repro.core.compiler import schedule
from repro.core.dfg import parse_dfg
from repro.core.isa import (
    CONFIG_BASE_ADDR,
    HostCompute,
    ProgramError,
    SDConfig,
    SDConstPort,
    SDMemPort,
    StreamProgram,
    in_port,
    out_port,
)


@pytest.fixture(scope="module")
def config():
    dfg = parse_dfg(
        "input A 2\ninput B 2\nm0 = mul A.0 B.0\nm1 = mul A.1 B.1\n"
        "s = add m0 m1\noutput C s",
        "dot2",
    )
    return schedule(dfg, dnn_provisioned())


class TestConfigBinding:
    def test_config_command_emitted_first(self, config):
        program = StreamProgram("p", config)
        assert isinstance(program.items[0], SDConfig)
        assert program.items[0].address == CONFIG_BASE_ADDR

    def test_config_images_registered(self, config):
        program = StreamProgram("p", config)
        assert program.config_images[CONFIG_BASE_ADDR] is config

    def test_multiple_configs_distinct_addresses(self, config):
        program = StreamProgram("p", config)
        program.config(config)
        addresses = list(program.config_images)
        assert len(set(addresses)) == 2


class TestPortResolution:
    def test_input_port_by_name(self, config):
        program = StreamProgram("p", config)
        program.mem_port(0, 16, 16, 1, "A")
        command = program.commands[-1]
        assert command.dest == in_port(config.hw_input_port("A"))

    def test_output_port_by_name(self, config):
        program = StreamProgram("p", config)
        program.port_mem("C", 8, 8, 1, 0x100)
        command = program.commands[-1]
        assert command.source == out_port(config.hw_output_port("C"))

    def test_unknown_port_name(self, config):
        program = StreamProgram("p", config)
        with pytest.raises(ProgramError, match="not a DFG"):
            program.mem_port(0, 8, 8, 1, "NOPE")

    def test_output_name_where_input_expected(self, config):
        program = StreamProgram("p", config)
        with pytest.raises(ProgramError):
            program.mem_port(0, 8, 8, 1, "C")

    def test_explicit_portref_kind_checked(self, config):
        program = StreamProgram("p", config)
        with pytest.raises(ProgramError):
            program.clean_port(1, in_port(0))

    def test_unbound_program_rejects_names(self):
        program = StreamProgram("raw")
        with pytest.raises(ProgramError, match="no CGRA config"):
            program.const_port(0, 1, "R")

    def test_unbound_program_accepts_portrefs(self):
        program = StreamProgram("raw")
        program.const_port(0, 4, in_port(2))
        assert isinstance(program.commands[0], SDConstPort)


class TestProgramAccounting:
    def test_host_compute(self, config):
        program = StreamProgram("p", config)
        program.host(5)
        assert program.items[-1] == HostCompute(5)

    def test_host_negative_rejected(self, config):
        program = StreamProgram("p", config)
        with pytest.raises(ValueError):
            program.host(-1)

    def test_commands_excludes_host(self, config):
        program = StreamProgram("p", config)
        program.host(5)
        program.barrier_all()
        assert len(program.commands) == 2  # config + barrier
        assert program.num_commands == 2

    def test_control_instructions_counts_both(self, config):
        program = StreamProgram("p", config)
        base = program.control_instructions  # config = 1
        program.host(5)
        program.mem_port(0, 8, 8, 1, "A")  # 2 instructions
        program.barrier_all()  # 1 instruction
        assert program.control_instructions == base + 5 + 2 + 1

    def test_mem_to_indirect(self, config):
        program = StreamProgram("p", config)
        program.mem_to_indirect(0x100, 12, 1)
        command = program.commands[-1]
        assert isinstance(command, SDMemPort)
        assert command.dest.kind == "ind"
        assert command.pattern.num_elements == 12

    def test_signed_flag_plumbed(self, config):
        program = StreamProgram("p", config)
        program.mem_port(0, 8, 8, 1, "A", elem_bytes=2, signed=True)
        assert program.commands[-1].pattern.signed

    def test_repr(self, config):
        program = StreamProgram("p", config)
        assert "p" in repr(program)
