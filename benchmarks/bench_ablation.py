"""Ablations: the microarchitectural mechanisms DESIGN.md calls out.

Quantifies what Section 4's machinery buys on a stream-heavy workload:

* *all-requests-in-flight* (Section 4.2): overlapping back-to-back streams
  on the same port instead of serialising on delivery.
* the *balance unit* (Section 4.5): fair request scheduling across vector
  ports in the memory read engine.
"""

from conftest import record

from repro.sim import SoftbrainParams
from repro.workloads.common import run_and_verify
from repro.workloads.dnn import build_classifier
from repro.workloads.dnn.layers import ClassifierLayer
from repro.workloads.machsuite import build_stencil2d


def _cycles(build, **flags):
    built = build()
    params = SoftbrainParams(**flags)
    return run_and_verify(built, params=params).cycles


def test_ablation_all_requests_in_flight(benchmark):
    build = lambda: build_classifier(ClassifierLayer("abl", ni=512, nn=16))
    full = benchmark.pedantic(
        lambda: _cycles(build), rounds=1, iterations=1
    )
    ablated = _cycles(build, all_requests_in_flight=False)
    record(
        "Ablation: all-requests-in-flight (classifier, 512x16)",
        f"full design: {full} cycles\n"
        f"without all-requests-in-flight: {ablated} cycles\n"
        f"slowdown: {ablated / full:.2f}x",
    )
    assert ablated >= full  # the optimisation never hurts


def test_ablation_balance_unit(benchmark):
    build = lambda: build_stencil2d(width=34, height=18)
    full = benchmark.pedantic(lambda: _cycles(build), rounds=1, iterations=1)
    ablated = _cycles(build, balance_unit=False)
    record(
        "Ablation: balance unit (stencil2d, 34x18)",
        f"full design: {full} cycles\n"
        f"round-robin instead of balance scoring: {ablated} cycles\n"
        f"delta: {ablated / full:.2f}x",
    )
    # Correctness holds either way (run_and_verify checked); the balance
    # unit exists primarily for deadlock avoidance under port imbalance.
    assert ablated > 0
