"""Figure 15: ASIC area relative to Softbrain."""

from conftest import record

from repro.experiments import format_figure15, geomean
from repro.power import softbrain_area_mm2


def test_fig15_area_comparison(benchmark, machsuite_rows):
    text = benchmark(format_figure15, machsuite_rows)
    record("Figure 15: ASIC area relative to Softbrain", text)

    ratios = [r.asic_area_ratio for r in machsuite_rows]
    # Paper: mean Softbrain area ~8x a single ASIC...
    assert 4 < 1 / geomean(ratios) < 16
    # ...but one Softbrain replaces all eight ASICs at comparable total area.
    total = sum(r.asic.area_mm2 for r in machsuite_rows)
    assert total / softbrain_area_mm2() > 0.75
