"""Micro-benchmark: fault hooks must be free when no fault is due.

The resilience layer's contract mirrors the trace layer's: a run with no
:class:`repro.resilience.FaultInjector` pays one ``is None`` test per hook
site, and a run whose injector has no fault *due yet* pays one integer
compare more (the per-class ``*_at`` due thresholds) — no method calls,
no allocation.  That is what keeps zero-fault overhead within the 2%
acceptance budget.

Wall-clock timing cannot resolve 2% on a noisy shared machine, so the
test asserts the contract two ways:

1. **deterministically** — an attached injector whose only fault is aimed
   far past the end of the run must execute *zero* hook-method calls and
   produce bit-identical cycle counts; the remaining cost is one
   attribute compare per site, which is also what a real plan pays before
   its first fault is due;
2. **coarsely** — the measured wall overhead must stay under a
   noise-tolerant sanity bound (``MAX_OVERHEAD_WALL``).

Run directly (``python -m pytest benchmarks/bench_fault_overhead.py``) to
see the measured numbers.
"""

import time

from repro.resilience import FaultInjector, FaultPlan, FaultSpec
from repro.workloads.common import run_and_verify
from repro.workloads.machsuite import MACHSUITE

#: noise-tolerant wall-clock sanity bound for the idle-injector run (the
#: real budget, 2%, is established by the zero-hook-calls assertion)
MAX_OVERHEAD_WALL = 0.10

#: the FaultInjector methods the simulator may call during a run
HOOK_METHODS = ("mem_delay", "corrupt_read", "engine_stall_until",
                "flip_cgra_output", "drop_port_words", "mangle_command")


def _never_firing_injector() -> FaultInjector:
    # One pending spec far past any real run: every hook site sees a
    # pending-but-not-due fault, the worst case for an idle injector.
    return FaultInjector(FaultPlan(
        "never", [FaultSpec("mem.delay", at=10**12, arg=63)]))


def _counting_injector():
    """An idle injector whose hook methods count their invocations."""
    injector = _never_firing_injector()
    calls = {name: 0 for name in HOOK_METHODS}

    def wrap(name, method):
        def counted(*args, **kwargs):
            calls[name] += 1
            return method(*args, **kwargs)
        return counted

    for name in HOOK_METHODS:
        setattr(injector, name, wrap(name, getattr(injector, name)))
    return injector, calls


def _best_of_interleaved(repeats: int, runner_a, runner_b) -> tuple:
    """Minimum wall time of each runner over ``repeats`` interleaved A/B
    rounds; min filters interference spikes and interleaving makes slow
    drift hit both runners equally."""
    best_a = best_b = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        runner_a()
        best_a = min(best_a, time.perf_counter() - started)
        started = time.perf_counter()
        runner_b()
        best_b = min(best_b, time.perf_counter() - started)
    return best_a, best_b


def measure_fault_hook_overhead(workload: str = "gemm",
                                repeats: int = 9) -> dict:
    """Measure the cost of an attached-but-idle injector on one workload.

    Returns ``{"no_injector": s, "idle_injector": s, "overhead": fraction,
    "cycles_match": bool, "hook_calls": int}``.  Workloads are rebuilt per
    run because a simulation mutates its memory image.
    """
    builder = MACHSUITE[workload][0]
    cycles = []

    def no_injector() -> None:
        cycles.append(run_and_verify(builder()).cycles)

    def idle_injector() -> None:
        cycles.append(
            run_and_verify(builder(), faults=_never_firing_injector()).cycles)

    no_injector()
    idle_injector()
    cycles.clear()

    base, hooked = _best_of_interleaved(repeats, no_injector, idle_injector)

    counting, calls = _counting_injector()
    run_and_verify(builder(), faults=counting)
    return {
        "no_injector": base,
        "idle_injector": hooked,
        "overhead": hooked / base - 1.0,
        "cycles_match": len(set(cycles)) == 1,
        "hook_calls": sum(calls.values()),
    }


def test_idle_injector_does_zero_hook_work():
    result = measure_fault_hook_overhead("gemm", repeats=3)
    assert result["cycles_match"], "idle injector changed simulated cycles"
    assert result["hook_calls"] == 0, (
        f"{result['hook_calls']} hook-method calls on the not-due path — "
        f"the due-threshold fast path is broken")
    assert result["overhead"] < MAX_OVERHEAD_WALL, (
        f"fault-hook overhead {result['overhead']:.1%} exceeds the "
        f"{MAX_OVERHEAD_WALL:.0%} sanity bound (no injector "
        f"{result['no_injector']:.3f}s, idle {result['idle_injector']:.3f}s)")


if __name__ == "__main__":
    stats = measure_fault_hook_overhead()
    print(f"no injector   {stats['no_injector']:.4f}s")
    print(f"idle injector {stats['idle_injector']:.4f}s")
    print(f"overhead      {stats['overhead']:+.2%} "
          f"(wall sanity bound {MAX_OVERHEAD_WALL:.0%})")
    print(f"hook calls    {stats['hook_calls']} (must be 0)")
