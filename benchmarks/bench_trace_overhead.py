"""Micro-benchmark: tracing must be free when disabled.

The observability layer's contract is that an untraced simulation pays
only one ``sink.enabled`` boolean test per would-be event — no event
objects, no string formatting.  This benchmark simulates the ``gemm``
MachSuite workload with no trace argument and with an explicit
:class:`repro.trace.NullSink` and asserts the NullSink run is within
``MAX_OVERHEAD`` (5%) of the untraced one.

Run directly (``python -m pytest benchmarks/bench_trace_overhead.py``) or
via the reduced smoke test in ``tests/test_trace.py``, which reuses
:func:`measure_null_sink_overhead` so the tier-1 suite exercises the same
machinery with fewer repetitions.
"""

import time

from repro.trace import NullSink
from repro.workloads.common import run_and_verify
from repro.workloads.machsuite import MACHSUITE

#: tolerated NullSink slowdown relative to an untraced run
MAX_OVERHEAD = 0.05


def _best_of(repeats: int, runner) -> float:
    """Minimum wall time over ``repeats`` runs (min is the stable
    statistic for interference-prone timing)."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        runner()
        best = min(best, time.perf_counter() - started)
    return best


def measure_null_sink_overhead(workload: str = "gemm",
                               repeats: int = 5) -> dict:
    """Time untraced vs NullSink-traced runs of one MachSuite workload.

    Returns ``{"untraced": s, "null_sink": s, "overhead": fraction,
    "cycles_match": bool}``.  Workloads are rebuilt per run because a
    simulation mutates its memory image.
    """
    builder = MACHSUITE[workload][0]
    cycles = []

    def untraced() -> None:
        cycles.append(run_and_verify(builder()).cycles)

    def with_null_sink() -> None:
        cycles.append(run_and_verify(builder(), trace=NullSink()).cycles)

    # Interleave-free warmup so imports/JIT-less caches don't bias run 1.
    untraced()
    with_null_sink()
    cycles.clear()

    base = _best_of(repeats, untraced)
    traced = _best_of(repeats, with_null_sink)
    return {
        "untraced": base,
        "null_sink": traced,
        "overhead": traced / base - 1.0,
        "cycles_match": len(set(cycles)) == 1,
    }


def test_null_sink_overhead_under_5_percent():
    result = measure_null_sink_overhead("gemm", repeats=5)
    assert result["cycles_match"], "NullSink changed simulated cycles"
    assert result["overhead"] < MAX_OVERHEAD, (
        f"NullSink overhead {result['overhead']:.1%} exceeds "
        f"{MAX_OVERHEAD:.0%} (untraced {result['untraced']:.3f}s, "
        f"null-sink {result['null_sink']:.3f}s)"
    )


if __name__ == "__main__":
    stats = measure_null_sink_overhead()
    print(f"untraced  {stats['untraced']:.4f}s")
    print(f"null sink {stats['null_sink']:.4f}s")
    print(f"overhead  {stats['overhead']:+.2%} (budget {MAX_OVERHEAD:.0%})")
