"""Figure 14: energy efficiency relative to OOO4."""

from conftest import record

from repro.experiments import format_figure14, geomean


def test_fig14_energy_efficiency(benchmark, machsuite_rows):
    text = benchmark(format_figure14, machsuite_rows)
    record("Figure 14: energy efficiency relative to OOO4", text)

    sb = geomean([r.softbrain_energy_eff for r in machsuite_rows])
    asic = geomean([r.asic_energy_eff for r in machsuite_rows])
    assert sb > 100  # orders of magnitude beyond the CPU
    # Paper: Softbrain's energy within a small factor of the ASICs'.
    assert asic / sb < 4.0
