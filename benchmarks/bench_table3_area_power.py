"""Table 3: Softbrain vs DianNao area/power breakdown (55 nm)."""

from conftest import record

from repro.experiments import format_table3, table3


def test_table3_area_power(benchmark):
    data = benchmark(table3)
    record("Table 3: area and power breakdown", format_table3(data))
    # Headline overheads from the abstract: ~1.74x area, ~2.28x power.
    assert 1.5 < data.area_overhead < 2.0
    assert 2.0 < data.power_overhead < 2.6
