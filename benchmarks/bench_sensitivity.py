"""Design-parameter sensitivity sweeps (provisioning-choice ablations).

Shows what the hardware knobs of Sections 3.3/4 actually buy: vector-port
depth (latency tolerance), DRAM bandwidth (the streaming ceiling) and
stream-table size (concurrent streams).
"""

from conftest import record

from repro.cgra import dnn_provisioned
from repro.experiments import (
    format_sweep,
    sweep_dram_bandwidth,
    sweep_port_depth,
    sweep_stream_table,
)
from repro.workloads.dnn import build_classifier
from repro.workloads.dnn.layers import ClassifierLayer
from repro.workloads.machsuite import build_gemm, build_spmv_crs


def _classifier(fabric=None):
    layer = ClassifierLayer("sweep", ni=256, nn=16)
    if fabric is None:
        return build_classifier(layer)
    return build_classifier(layer, fabric=fabric)


def test_sensitivity_port_depth(benchmark):
    result = benchmark.pedantic(
        lambda: sweep_port_depth(_classifier, dnn_provisioned),
        rounds=1, iterations=1,
    )
    record("Sensitivity: vector-port depth (classifier)", format_sweep(result))
    # Deeper ports tolerate memory latency: the shallowest point must be
    # measurably worse than the best.
    assert result.points[0].cycles >= result.best.cycles
    assert result.spread > 1.02


def test_sensitivity_dram_bandwidth(benchmark):
    result = benchmark.pedantic(
        lambda: sweep_dram_bandwidth(_classifier),
        rounds=1, iterations=1,
    )
    record("Sensitivity: DRAM bandwidth (classifier)", format_sweep(result))
    # The classifier is synapse-bandwidth-bound: throttling DRAM by 32x
    # must slow it down by a large factor.
    assert result.points[-1].cycles > 2 * result.points[0].cycles


def test_sensitivity_stream_table(benchmark):
    result = benchmark.pedantic(
        lambda: sweep_stream_table(lambda **kw: build_spmv_crs(**kw)),
        rounds=1, iterations=1,
    )
    record("Sensitivity: stream-table size (spmv-crs)", format_sweep(result))
    assert result.best.cycles <= result.points[0].cycles
