"""Table 1: architectural specialization capability matrix."""

from conftest import record

from repro.experiments import capability_scores, format_table1


def test_table1_capabilities(benchmark):
    text = benchmark(format_table1)
    record("Table 1: architectural specialization capabilities", text)
    scores = {s.architecture: s.score for s in capability_scores()}
    # Stream-dataflow must dominate the matrix, as the paper argues.
    assert scores["Stream-Dataflow"] == max(scores.values())
