"""Shared fixtures for the table/figure benchmarks.

The MachSuite comparison (simulate 8 workloads + 20-point ASIC sweeps) is
the expensive step behind Figures 12-15; it runs once per session and the
four figure benchmarks derive their series from the cached rows.  Every
benchmark appends its rendered table to a per-session
``benchmarks/results-<timestamp>.txt`` (gitignored) so a full
``pytest benchmarks/ --benchmark-only`` run leaves the complete
reproduction of the paper's evaluation on disk without clobbering the
previous run's results.
"""

import pathlib
import time

import pytest

RESULTS_PATH = pathlib.Path(__file__).parent / (
    "results-" + time.strftime("%Y%m%d-%H%M%S") + ".txt"
)


@pytest.fixture(scope="session")
def machsuite_rows():
    from repro.experiments import machsuite_comparison

    return machsuite_comparison()


@pytest.fixture(scope="session")
def dnn_rows():
    from repro.experiments import dnn_comparison

    return dnn_comparison()


@pytest.fixture(scope="session", autouse=True)
def _fresh_results_file():
    RESULTS_PATH.write_text("")
    yield
    print(f"\nbenchmark tables written to {RESULTS_PATH}")


def record(title: str, text: str) -> None:
    """Print a rendered table and append it to the results file."""
    block = f"\n{'=' * 72}\n{title}\n{'=' * 72}\n{text}\n"
    print(block)
    with RESULTS_PATH.open("a") as handle:
        handle.write(block)
