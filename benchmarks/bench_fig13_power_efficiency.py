"""Figure 13: power efficiency relative to OOO4."""

from conftest import record

from repro.experiments import format_figure13, geomean


def test_fig13_power_efficiency(benchmark, machsuite_rows):
    text = benchmark(format_figure13, machsuite_rows)
    record("Figure 13: power efficiency relative to OOO4", text)

    sb = geomean([r.softbrain_power_eff for r in machsuite_rows])
    asic = geomean([r.asic_power_eff for r in machsuite_rows])
    # Both orders of magnitude beyond the CPU (paper: up to ~300x)...
    assert sb > 50
    assert asic > 100
    # ...with the ASIC ahead of Softbrain by only ~2x (the abstract's claim).
    assert 1.2 < asic / sb < 3.0
