"""Fast-path vs slow-path simulator throughput (BENCH_sim_throughput).

Measures wall-clock speedup of the batched fast path
(docs/PERFORMANCE.md) over the per-cycle slow path on the Figure 4/6
timeline workloads: the dot-product stream program and the DNN classifier
layer (scaled up so each run takes long enough to time reliably).  Both
modes must produce bit-identical stats — this file re-asserts that before
trusting any timing.

Runs two ways:

* ``pytest benchmarks/bench_simd_fastpath.py`` — records the table next
  to the other figure benchmarks;
* ``python benchmarks/bench_simd_fastpath.py --check 1.5`` — CI mode:
  writes ``BENCH_sim_throughput.json`` and exits non-zero if the DNN
  classifier speedup drops below the threshold.
"""

import argparse
import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.cgra import dnn_provisioned
from repro.core.compiler import schedule
from repro.core.dfg import parse_dfg
from repro.core.isa import StreamProgram
from repro.sim import MemorySystem, run_program
from repro.sim.softbrain import SoftbrainParams
from repro.workloads.common import write_words
from repro.workloads.dnn import build_classifier
from repro.workloads.dnn.layers import ClassifierLayer

#: the workload the CI gate applies to
GATED_WORKLOAD = "dnn-classifier"
ROUNDS = 3  # best-of-N wall-clock per mode


def _dot_product_case():
    dfg = parse_dfg(
        "input A 4\ninput B 4\n"
        "m0 = mul A.0 B.0\nm1 = mul A.1 B.1\nm2 = mul A.2 B.2\n"
        "s0 = add m0 m1\ns1 = add s0 m2\noutput C s1",
        "dotprod",
    )
    fabric = dnn_provisioned()
    config = schedule(dfg, fabric)

    def run(params):
        memory = MemorySystem()
        n = 4096
        write_words(memory, 0x1000, list(range(4 * n)))
        write_words(memory, 0x20000, list(range(4 * n)))
        program = StreamProgram("fig4-dotprod", config)
        program.mem_port(0x1000, 32, 32, n, "A")
        program.mem_port(0x20000, 32, 32, n, "B")
        program.port_mem("C", 8, 8, n, 0x80000)
        program.barrier_all()
        return run_program(program, fabric=fabric, memory=memory,
                           params=params)

    return run


def _classifier_case():
    layer = ClassifierLayer("bench", ni=1024, nn=64)

    def run(params):
        built = build_classifier(layer)
        result = run_program(built.program, fabric=built.fabric,
                             memory=built.memory, params=params)
        built.verify(built.memory)
        return result

    return run


WORKLOADS = {
    "fig4-dotprod": _dot_product_case,
    GATED_WORKLOAD: _classifier_case,
}


def _time_mode(run, fast: bool):
    best = float("inf")
    result = None
    for _ in range(ROUNDS):
        params = SoftbrainParams(fast_path=fast)
        start = time.perf_counter()
        result = run(params)
        best = min(best, time.perf_counter() - start)
    return best, result


def measure():
    rows = {}
    for name, case in WORKLOADS.items():
        run = case()
        fast_s, fast = _time_mode(run, fast=True)
        slow_s, slow = _time_mode(run, fast=False)
        assert fast.stats.to_dict() == slow.stats.to_dict(), (
            f"{name}: fast path is not stat-identical; timing is void")
        rows[name] = {
            "cycles": fast.stats.cycles,
            "fast_seconds": round(fast_s, 4),
            "slow_seconds": round(slow_s, 4),
            "speedup": round(slow_s / fast_s, 3),
            "fast_cycles_per_second": round(fast.stats.cycles / fast_s),
            "slow_cycles_per_second": round(slow.stats.cycles / slow_s),
        }
    return rows


def render(rows) -> str:
    header = (f"{'workload':<16} {'cycles':>8} {'slow s':>8} "
              f"{'fast s':>8} {'speedup':>8}")
    lines = [header, "-" * len(header)]
    for name, row in rows.items():
        lines.append(
            f"{name:<16} {row['cycles']:>8} {row['slow_seconds']:>8.3f} "
            f"{row['fast_seconds']:>8.3f} {row['speedup']:>7.2f}x")
    return "\n".join(lines)


def emit(rows, path: pathlib.Path) -> None:
    path.write_text(json.dumps({
        "bench": "sim_throughput",
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "rounds": ROUNDS,
        "workloads": rows,
    }, indent=1) + "\n")


def test_fastpath_speedup(benchmark):
    from conftest import record

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    record("Fast-path throughput (BENCH_sim_throughput)", render(rows))
    emit(rows, pathlib.Path(__file__).parent.parent
         / "BENCH_sim_throughput.json")
    for name, row in rows.items():
        assert row["speedup"] > 1.0, f"{name}: fast path slower than slow"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", type=float, default=None, metavar="X",
                        help=f"fail unless {GATED_WORKLOAD} speedup >= X")
    parser.add_argument("--out", default="BENCH_sim_throughput.json",
                        help="where to write the JSON report")
    args = parser.parse_args()
    rows = measure()
    print(render(rows))
    emit(rows, pathlib.Path(args.out))
    print(f"report written to {args.out}")
    if args.check is not None:
        got = rows[GATED_WORKLOAD]["speedup"]
        if got < args.check:
            print(f"FAIL: {GATED_WORKLOAD} speedup {got:.2f}x "
                  f"< required {args.check:.2f}x")
            return 1
        print(f"OK: {GATED_WORKLOAD} speedup {got:.2f}x "
              f">= {args.check:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
