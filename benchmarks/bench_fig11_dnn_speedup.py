"""Figure 11: GPU / DianNao / Softbrain speedups over CPU on DNN layers."""

from conftest import record

from repro.experiments import format_figure11, geomean


def test_fig11_dnn_speedup(benchmark, dnn_rows):
    text = benchmark(format_figure11, dnn_rows)
    record("Figure 11: DNN workload speedups over CPU", text)

    gpu = geomean([r.gpu_speedup for r in dnn_rows])
    diannao = geomean([r.diannao_speedup for r in dnn_rows])
    softbrain = geomean([r.softbrain_speedup for r in dnn_rows])
    # Shape: GPU lowest; DianNao and Softbrain an order of magnitude up.
    assert gpu < softbrain
    assert gpu < diannao
    assert softbrain > 10
    # Softbrain keeps DianNao in sight (same basic algorithm, Section 7.1).
    assert diannao / softbrain < 4
    # The pooling advantage goes to Softbrain (paper's explicit claim).
    pools = [r for r in dnn_rows if r.layer.startswith("pool")]
    assert geomean([r.softbrain_speedup for r in pools]) > geomean(
        [r.diannao_speedup for r in pools]
    )
