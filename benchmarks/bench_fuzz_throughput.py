"""Micro-benchmark: differential-fuzzing throughput.

The fuzzer is only useful if a CI smoke budget (60 s) buys a meaningful
number of cases, so this benchmark measures end-to-end cases/second —
plan generation, scheduling (cache warm after the first few distinct
DFGs), program build, and all three oracle legs — and asserts a floor
well below typical machines so it never flakes, while ``record`` leaves
the real number in ``benchmarks/results.txt``.
"""

import random
import time

from repro.fuzz import random_plan, run_case

from conftest import record

#: cases/second any machine should comfortably exceed (typical: >100/s)
MIN_CASES_PER_SECOND = 5.0


def measure_fuzz_throughput(count: int = 60, seed: int = 0) -> dict:
    """Generate and oracle-check ``count`` cases; return timing stats."""
    divergences = 0
    started = time.perf_counter()
    for index in range(count):
        rng = random.Random(f"bench:{seed}:{index}")
        plan = random_plan(rng, name=f"bench-{index}")
        check_rng = random.Random(f"bench-verify:{seed}:{index}")
        divergences += len(run_case(plan, rng=check_rng).divergences)
    wall = time.perf_counter() - started
    return {
        "cases": count,
        "wall": wall,
        "cases_per_second": count / wall,
        "divergences": divergences,
    }


def test_fuzz_throughput():
    stats = measure_fuzz_throughput(count=60)
    record(
        "Differential fuzzing throughput",
        (f"{stats['cases']} cases in {stats['wall']:.2f}s = "
         f"{stats['cases_per_second']:.1f} cases/s "
         f"({stats['divergences']} divergences)"),
    )
    assert stats["divergences"] == 0
    assert stats["cases_per_second"] > MIN_CASES_PER_SECOND


if __name__ == "__main__":
    result = measure_fuzz_throughput()
    print(f"{result['cases']} cases in {result['wall']:.2f}s "
          f"({result['cases_per_second']:.1f}/s), "
          f"{result['divergences']} divergences")
