"""Figures 4(b) and 6 (bottom): execution-model timelines."""

from conftest import record

from repro.cgra import dnn_provisioned
from repro.core.compiler import schedule
from repro.core.dfg import parse_dfg
from repro.core.isa import StreamProgram
from repro.sim import MemorySystem, render_timeline, run_program
from repro.workloads.common import write_words
from repro.workloads.dnn import build_classifier
from repro.workloads.dnn.layers import ClassifierLayer


def _dot_product_run():
    dfg = parse_dfg(
        "input A 4\ninput B 4\n"
        "m0 = mul A.0 B.0\nm1 = mul A.1 B.1\nm2 = mul A.2 B.2\n"
        "s0 = add m0 m1\ns1 = add s0 m2\noutput C s1",
        "dotprod",
    )
    fabric = dnn_provisioned()
    config = schedule(dfg, fabric)
    memory = MemorySystem()
    n = 32
    write_words(memory, 0x1000, list(range(4 * n)))
    write_words(memory, 0x8000, list(range(4 * n)))
    program = StreamProgram("fig4", config)
    program.mem_port(0x1000, 32, 32, n, "A")
    program.mem_port(0x8000, 32, 32, n, "B")
    program.port_mem("C", 8, 8, n, 0x10000)
    program.barrier_all()
    return run_program(program, fabric=fabric, memory=memory)


def test_fig4_dot_product_timeline(benchmark):
    result = benchmark.pedantic(_dot_product_run, rounds=1, iterations=1)
    record("Figure 4(b): dot-product execution timeline",
           render_timeline(result.timeline))
    traces = result.timeline.traces
    # Concurrency shape: the two loads overlap; the store overlaps both;
    # the barrier completes last.
    load_a, load_b, store = traces[1], traces[2], traces[3]
    assert load_b.dispatched < load_a.completed
    assert store.dispatched < load_a.completed
    assert traces[-1].completed == max(t.completed for t in traces)


def _classifier_run():
    built = build_classifier(ClassifierLayer("fig6", ni=128, nn=4))
    result = run_program(
        built.program, fabric=built.fabric, memory=built.memory
    )
    built.verify(built.memory)
    return result


def test_fig6_classifier_timeline(benchmark):
    result = benchmark.pedantic(_classifier_run, rounds=1, iterations=1)
    record("Figure 6 (bottom): classifier execution timeline",
           render_timeline(result.timeline))
    labels = [t.label for t in result.timeline.traces]
    # The Figure 6 command mix is all present.
    for expected in ("SD_Config", "SD_MemScratch", "SD_MemPort",
                     "SD_ScratchPort", "SD_ConstPort", "SD_CleanPort",
                     "SD_PortMem", "SD_BarrierAll"):
        assert expected in labels, expected
