"""Table 4: MachSuite characterisation on stream-dataflow."""

from conftest import record

from repro.experiments import format_table4, table4_rows


def test_table4_generality(benchmark):
    rows = benchmark.pedantic(
        lambda: table4_rows(include_extensions=True), rounds=1, iterations=1
    )
    record("Table 4: workload characterisation", format_table4(rows))
    by_name = {r.name: r for r in rows}
    # Spot-check the paper's rows.
    assert "Indirect Loads" in by_name["bfs"].patterns
    assert "Recurrence" in by_name["gemm"].patterns
    assert by_name["spmv-crs"].datapath == "Single Multiply-Accumulate"
    assert by_name["viterbi"].datapath == "4-Way Add-Minimize Tree"
    assert len(rows) == 11  # the paper's eight + three extensions
