"""Figure 12: Softbrain vs iso-performance ASIC speedup over OOO4."""

from conftest import record

from repro.experiments import format_figure12, geomean


def test_fig12_asic_performance(benchmark, machsuite_rows):
    text = benchmark(format_figure12, machsuite_rows)
    record("Figure 12: speedup relative to OOO4", text)

    sb = [r.softbrain_speedup for r in machsuite_rows]
    asic = [r.asic_speedup for r in machsuite_rows]
    # Paper: both land in roughly the 1-7x band over the OOO4 core.
    assert 1.0 < geomean(sb) < 8.0
    assert 1.0 < geomean(asic) < 10.0
    # Iso-performance selection keeps the ASIC within small factors.
    assert geomean(asic) / geomean(sb) < 3.0
