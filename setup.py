"""Setup shim so ``pip install -e .`` works without network access.

The environment has setuptools but no ``wheel`` package, so PEP 660
editable installs cannot build; this shim lets pip fall back to the legacy
``setup.py develop`` path.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
