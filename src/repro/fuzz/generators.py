"""Random-but-legal artifact generators for differential fuzzing.

Three levels, mirroring the tentpole layering in docs/FUZZING.md:

1. **Random DFGs** — :func:`random_dfg` / :func:`random_inputs`, the pool
   the property-based tests always used (lifted here from
   ``tests/test_property_dfg.py`` so the fuzzer and the hypothesis
   strategies share one generator).  DFG specs serialise to plain JSON via
   :func:`dfg_to_spec` / :func:`dfg_from_spec` so a fuzz case replays
   without re-running the generator.
2. **Random stream segments** — per-port feed/drain plans with
   self-consistent widths, element sizes and non-overlapping regions.
3. **Whole programs** — :func:`random_plan` assembles a
   :class:`~repro.fuzz.case.CasePlan` whose reference result is computable
   by the pure evaluator in :mod:`repro.fuzz.oracle`.

Legality rules enforced here (the "why" lives in docs/FUZZING.md):

* per-port totals fit the vector-port FIFO (``num_instances`` ≤
  :data:`MAX_INSTANCES` ≤ port depth), so feed streams can always drain
  without requiring CGRA progress — generated programs cannot deadlock
  structurally;
* on one input port, const/scratch feed segments come before
  memory/indirect ones (the memory read engine releases a port once all
  requests are *in flight*, so a later same-port stream on another engine
  could overtake the still-arriving data);
* write patterns never overlap themselves (completion times of line
  requests are not monotonic, so overlapping writes would be
  timing-dependent);
* at most one recurrence per program, only from a wider-or-equal output
  port, seeded with at least one full instance of data.
"""

from __future__ import annotations

import random
from typing import Dict, List

from ..core.dfg import Constant, Dfg, ValueRef
from ..core.dfg.instructions import WORD_MASK
from .case import CasePlan, DrainSegment, FeedSegment

#: op pool for random graphs: (mnemonic, arity)
RANDOM_OPS = [
    ("add", 2), ("sub", 2), ("mul", 2), ("min", 2), ("max", 2),
    ("and", 2), ("or", 2), ("xor", 2), ("eq", 2), ("lt", 2),
    ("abs", 1), ("neg", 1), ("pass", 1), ("select", 3), ("hadd", 1),
]

#: computation instances per generated program; ≤ port depth (16) so every
#: port's total traffic fits its FIFO — the structural-deadlock-freedom rule
MAX_INSTANCES = 8

#: scratchpad bytes a generated plan may claim (the sim default is 4096;
#: leave headroom so line-aligned allocation never overflows)
SCRATCH_BUDGET = 3072

#: indirect ports available on the target fabrics
NUM_IND_PORTS = 4


def random_dfg(seed: int, num_inputs: int, num_insts: int) -> Dfg:
    """Build a random valid (connected, acyclic) DFG."""
    rng = random.Random(seed)
    dfg = Dfg(f"rand{seed}")
    values = []
    for i in range(num_inputs):
        width = rng.randint(1, 4)
        dfg.add_input(f"I{i}", width)
        values.extend(ValueRef(f"I{i}", lane) for lane in range(width))
    for n in range(num_insts):
        name, arity = rng.choice(RANDOM_OPS)
        operands = []
        for _ in range(arity):
            if rng.random() < 0.15:
                operands.append(Constant(rng.randint(0, 1000)))
            else:
                operands.append(rng.choice(values))
        lane_bits = rng.choice([64, 64, 64, 16, 32])
        dfg.add_instruction(f"n{n}", name, operands, lane_bits)
        values.append(ValueRef(f"n{n}"))
    # Route every otherwise-dead instruction into the output port.
    consumed = set()
    for inst in dfg.instructions.values():
        for ref in dfg.operand_refs(inst):
            consumed.add(ref.node)
    dead = [n for n in dfg.instructions if n not in consumed]
    sources = [ValueRef(n) for n in dead[:8]] or [values[-1]]
    dfg.add_output("O", sources)
    remaining = [ValueRef(n) for n in dead[8:]]
    for i in range(0, len(remaining), 8):
        dfg.add_output(f"O{i}", remaining[i : i + 8])
    return dfg


def random_inputs(dfg: Dfg, seed: int):
    rng = random.Random(seed * 31 + 7)
    return {
        name: [rng.randint(0, WORD_MASK) for _ in range(port.width)]
        for name, port in dfg.inputs.items()
    }


# -- DFG <-> JSON spec --------------------------------------------------------


def _operand_str(operand) -> str:
    return str(operand)  # "#5", "name" or "name.lane"


def _operand_from_str(text: str):
    if text.startswith("#"):
        return Constant(int(text[1:]))
    if "." in text:
        node, lane = text.rsplit(".", 1)
        return ValueRef(node, int(lane))
    return ValueRef(text)


def dfg_to_spec(dfg: Dfg) -> dict:
    """A JSON-serialisable description that rebuilds the DFG exactly."""
    return {
        "name": dfg.name,
        "inputs": [
            {"name": p.name, "width": p.width} for p in dfg.inputs.values()
        ],
        "instructions": [
            {
                "name": inst.name,
                "op": inst.op.name,
                "operands": [_operand_str(o) for o in inst.operands],
                "lane_bits": inst.lane_bits,
            }
            for inst in (dfg.instructions[n] for n in dfg._order)
        ],
        "outputs": [
            {"name": p.name, "sources": [str(ref) for ref in p.sources]}
            for p in dfg.outputs.values()
        ],
    }


def dfg_from_spec(spec: dict) -> Dfg:
    dfg = Dfg(spec["name"])
    for port in spec["inputs"]:
        dfg.add_input(port["name"], port["width"])
    for inst in spec["instructions"]:
        dfg.add_instruction(
            inst["name"],
            inst["op"],
            [_operand_from_str(o) for o in inst["operands"]],
            inst.get("lane_bits", 64),
        )
    for port in spec["outputs"]:
        dfg.add_output(
            port["name"], [_operand_from_str(s) for s in port["sources"]]
        )
    return dfg


def passthrough_dfg_spec(widths_in: Dict[str, int],
                         widths_out: Dict[str, int]) -> dict:
    """A minimal DFG with the given port shapes: every output lane is a
    ``pass`` of an input lane (round-robin).  The shrinker swaps this in to
    rule the computation out of a divergence."""
    dfg = Dfg("passthrough")
    lanes: List[ValueRef] = []
    for name, width in widths_in.items():
        dfg.add_input(name, width)
        lanes.extend(ValueRef(name, lane) for lane in range(width))
    counter = 0
    for name, width in widths_out.items():
        sources = []
        for _ in range(width):
            inst = f"p{counter}"
            dfg.add_instruction(inst, "pass", [lanes[counter % len(lanes)]])
            sources.append(ValueRef(inst))
            counter += 1
        dfg.add_output(name, sources)
    return dfg_to_spec(dfg)


# -- value pickers ------------------------------------------------------------

_INTERESTING_WORDS = [0, 1, 2, 0xFF, 0x8000_0000_0000_0000, WORD_MASK]


def _word(rng: random.Random) -> int:
    if rng.random() < 0.3:
        return rng.choice(_INTERESTING_WORDS)
    return rng.getrandbits(64)


def _elem(rng: random.Random, elem_bytes: int) -> int:
    """A raw (unsigned) element value for an in-memory array."""
    bits = 8 * elem_bytes
    if rng.random() < 0.3:
        return rng.choice([0, 1, (1 << bits) - 1, 1 << (bits - 1)])
    return rng.getrandbits(bits)


def _split_count(rng: random.Random, total: int, max_parts: int) -> List[int]:
    """Partition ``total`` into 1..max_parts positive chunks."""
    parts = rng.randint(1, min(max_parts, total))
    cuts = sorted(rng.sample(range(1, total), parts - 1)) if parts > 1 else []
    edges = [0] + cuts + [total]
    return [b - a for a, b in zip(edges, edges[1:])]


def _mem_feed(rng: random.Random, count: int) -> FeedSegment:
    """An affine memory feed with random (possibly overlapping) geometry."""
    divisors = [d for d in range(1, count + 1) if count % d == 0]
    per_access = rng.choice(divisors)
    num_strides = count // per_access
    # Overlapping/repeating reads are legal; cap the stride so arrays stay
    # small.
    stride_elems = 0 if num_strides == 1 else rng.randint(0, per_access + 2)
    span = (num_strides - 1) * stride_elems + per_access
    elem_bytes = rng.choice([1, 2, 4, 8])
    signed = rng.random() < 0.5
    return FeedSegment(
        kind="mem",
        per_access=per_access,
        num_strides=num_strides,
        stride_elems=stride_elems,
        elem_bytes=elem_bytes,
        signed=signed,
        array=[_elem(rng, elem_bytes) for _ in range(span)],
    )


def _mem_drain(rng: random.Random, count: int) -> DrainSegment:
    """An affine memory drain; never overlaps itself (write completion
    times are not monotonic, so overlapping writes would be racy)."""
    divisors = [d for d in range(1, count + 1) if count % d == 0]
    per_access = rng.choice(divisors)
    num_strides = count // per_access
    stride_elems = per_access if num_strides == 1 else per_access + rng.randint(0, 2)
    return DrainSegment(
        kind="mem",
        per_access=per_access,
        num_strides=num_strides,
        stride_elems=stride_elems,
        elem_bytes=rng.choice([2, 4, 8]),
    )


class _ProgramBudget:
    """Shared resource tracking while one plan is generated."""

    def __init__(self) -> None:
        self.scratch_bytes = 0
        self.ind_ports = 0
        self.has_recurrence = False

    def scratch_ok(self, nbytes: int) -> bool:
        # Line-aligned allocation: round up pessimistically.
        return self.scratch_bytes + nbytes + 64 <= SCRATCH_BUDGET

    def take_scratch(self, nbytes: int) -> None:
        self.scratch_bytes += (nbytes + 63) // 64 * 64


def _feed_segments(rng: random.Random, width: int, instances: int,
                   budget: _ProgramBudget, recur_from: str) -> List[FeedSegment]:
    """Feed plan for one input port.

    If ``recur_from`` names an output port, the last segment is a
    recurrence fed by it; the seed segments then avoid the memory engines
    entirely (a memory feed releases the port while its data is still in
    flight, so a following recurrence could overtake it).
    """
    total = width * instances
    if recur_from:
        recur_count = rng.randint(1, max(1, total - width))
        seeds = _split_count(rng, total - recur_count, 2)
        segments = [_const_or_scratch(rng, c, budget) for c in seeds]
        segments.append(FeedSegment(kind="recur", count=recur_count,
                                    src=recur_from))
        return segments
    counts = _split_count(rng, total, 3)
    segments = [_feed_segment(rng, c, budget) for c in counts]
    # Legality: non-memory-engine segments first (see module docstring).
    return sorted(segments, key=lambda s: s.kind in ("mem", "indirect"))


def _const_or_scratch(rng: random.Random, count: int,
                      budget: _ProgramBudget) -> FeedSegment:
    if rng.random() < 0.4 and budget.scratch_ok(count * 8):
        return _scratch_feed(rng, count, budget)
    return FeedSegment(kind="const", count=count, value=_word(rng))


def _scratch_feed(rng: random.Random, count: int,
                  budget: _ProgramBudget) -> FeedSegment:
    elem_bytes = rng.choice([2, 4, 8])
    budget.take_scratch(count * elem_bytes)
    return FeedSegment(
        kind="scratch",
        elem_bytes=elem_bytes,
        signed=rng.random() < 0.5,
        array=[_elem(rng, elem_bytes) for _ in range(count)],
    )


def _feed_segment(rng: random.Random, count: int,
                  budget: _ProgramBudget) -> FeedSegment:
    roll = rng.random()
    if roll < 0.30:
        return FeedSegment(kind="const", count=count, value=_word(rng))
    if roll < 0.45 and budget.scratch_ok(count * 8):
        return _scratch_feed(rng, count, budget)
    if roll < 0.60 and budget.ind_ports < NUM_IND_PORTS and count <= 32:
        budget.ind_ports += 1
        elem_bytes = rng.choice([2, 4, 8])
        table = [_elem(rng, elem_bytes) for _ in range(rng.randint(4, 24))]
        return FeedSegment(
            kind="indirect",
            elem_bytes=elem_bytes,
            signed=rng.random() < 0.5,
            array=table,
            indices=[rng.randrange(len(table)) for _ in range(count)],
        )
    return _mem_feed(rng, count)


def _drain_segments(rng: random.Random, width: int, instances: int,
                    budget: _ProgramBudget, recur_count: int) -> List[DrainSegment]:
    """Drain plan for one output port; a recurrence (if any) consumes the
    first ``recur_count`` elements."""
    segments: List[DrainSegment] = []
    if recur_count:
        segments.append(DrainSegment(kind="recur", count=recur_count))
    remaining = width * instances - recur_count
    if remaining:
        for count in _split_count(rng, remaining, 2):
            segments.append(_drain_segment(rng, count, budget))
    return segments


def _drain_segment(rng: random.Random, count: int,
                   budget: _ProgramBudget) -> DrainSegment:
    roll = rng.random()
    if roll < 0.15:
        return DrainSegment(kind="clean", count=count)
    if roll < 0.30 and budget.scratch_ok(count * 8):
        elem_bytes = rng.choice([4, 8])
        budget.take_scratch(count * elem_bytes)
        return DrainSegment(kind="scratch", count=count, elem_bytes=elem_bytes)
    if roll < 0.50 and budget.ind_ports < NUM_IND_PORTS and count <= 32:
        budget.ind_ports += 1
        # Distinct indices => distinct target addresses (no write races).
        indices = rng.sample(range(2 * count + 4), count)
        return DrainSegment(
            kind="scatter",
            elem_bytes=rng.choice([4, 8]),
            indices=indices,
        )
    return _mem_drain(rng, count)


def random_plan(rng: random.Random, *, name: str = "fuzz") -> CasePlan:
    """Generate one legal-by-construction fuzz case.

    The DFG is drawn from the :func:`random_dfg` pool and retried until
    the spatial scheduler accepts it (narrow fabrics reject some port
    shapes); everything after that is legal by construction.
    """
    from .case import schedule_plan_dfg  # local: avoids import cycle

    instances = rng.randint(1, MAX_INSTANCES)
    for _ in range(32):
        dfg_seed = rng.randrange(1_000_000)
        dfg = random_dfg(dfg_seed, rng.randint(1, 3), rng.randint(1, 8))
        spec = dfg_to_spec(dfg)
        try:
            schedule_plan_dfg(spec, schedule_seed=0)
        except Exception:
            continue
        break
    else:  # pragma: no cover - the pool schedules within a few tries
        raise RuntimeError("could not draw a schedulable DFG")

    budget = _ProgramBudget()
    widths_in = {n: p.width for n, p in dfg.inputs.items()}
    widths_out = {n: p.width for n, p in dfg.outputs.items()}

    # Optional recurrence: one per program, output at least as wide as the
    # input it feeds, and only if there is room for a seed instance.
    recur_pairs = [
        (i, o)
        for i, wi in widths_in.items()
        for o, wo in widths_out.items()
        if wi <= wo and wi * instances - wi >= 1
    ]
    recur_in = recur_out = ""
    if recur_pairs and rng.random() < 0.35:
        recur_in, recur_out = rng.choice(recur_pairs)
        budget.has_recurrence = True

    feeds = {
        port: _feed_segments(rng, width, instances, budget,
                             recur_out if port == recur_in else "")
        for port, width in widths_in.items()
    }
    recur_count = 0
    if recur_in:
        recur_count = feeds[recur_in][-1].count
    drains = {
        port: _drain_segments(rng, width, instances, budget,
                              recur_count if port == recur_out else 0)
        for port, width in widths_out.items()
    }
    return CasePlan(
        name=name,
        dfg_spec=spec,
        schedule_seed=0,
        num_instances=instances,
        feeds=feeds,
        drains=drains,
        recur_in=recur_in,
        recur_out=recur_out,
        interleave_seed=rng.getrandbits(32),
    )
