"""Differential fuzzing: generators, three-way oracle, shrinker, corpus.

See docs/FUZZING.md.  Entry points:

* :func:`repro.fuzz.generators.random_plan` — draw a legal fuzz case;
* :func:`repro.fuzz.oracle.run_case` — run the three-way oracle;
* :func:`repro.fuzz.shrink.shrink` — minimise a diverging case;
* ``python -m repro fuzz`` — the CLI (:mod:`repro.fuzz.cli`).
"""

from .case import (
    BuiltCase,
    CasePlan,
    DrainSegment,
    FeedSegment,
    PlanError,
    build_case,
    plan_from_json,
    plan_to_json,
    validate_plan,
)
from .generators import (
    RANDOM_OPS,
    dfg_from_spec,
    dfg_to_spec,
    random_dfg,
    random_inputs,
    random_plan,
)
from .oracle import Divergence, OracleReport, evaluate_case, run_case
from .shrink import shrink, trivial_plan

__all__ = [
    "BuiltCase",
    "CasePlan",
    "Divergence",
    "DrainSegment",
    "FeedSegment",
    "OracleReport",
    "PlanError",
    "RANDOM_OPS",
    "build_case",
    "dfg_from_spec",
    "dfg_to_spec",
    "evaluate_case",
    "plan_from_json",
    "plan_to_json",
    "random_dfg",
    "random_inputs",
    "random_plan",
    "run_case",
    "shrink",
    "trivial_plan",
    "validate_plan",
]
