"""Divergence shrinking: minimise a diverging plan to a small repro.

Shrinking operates on the :class:`~repro.fuzz.case.CasePlan` genome, not
on raw command lists — every candidate is re-validated and re-lowered, so
the minimised case is still legal by construction and replays bit-for-bit
from its JSON file.

The candidate order is most-aggressive-first: a systemic bug (say, a
corrupted write path) collapses straight to the 4-command trivial case
(``SD_Config``, ``SD_Const_Port``, ``SD_Port_Mem``, ``SD_Barrier_All``);
a narrower bug survives only the transformations that preserve its
trigger, which is itself diagnostic.
"""

from __future__ import annotations

from typing import Callable, Iterator

from .case import (
    CasePlan,
    DrainSegment,
    FeedSegment,
    PlanError,
    plan_from_json,
    plan_to_json,
    validate_plan,
)


def _clone(plan: CasePlan) -> CasePlan:
    return plan_from_json(plan_to_json(plan))


def _widths(plan: CasePlan):
    inputs = {p["name"]: p["width"] for p in plan.dfg_spec["inputs"]}
    outputs = {p["name"]: len(p["sources"])
               for p in plan.dfg_spec["outputs"]}
    return inputs, outputs


def trivial_plan(name: str = "trivial") -> CasePlan:
    """The smallest legal case: one const word through a pass-through DFG
    into one linear memory word.  Four commands total."""
    from .generators import passthrough_dfg_spec

    return CasePlan(
        name=name,
        dfg_spec=passthrough_dfg_spec({"A": 1}, {"Z": 1}),
        schedule_seed=0,
        num_instances=1,
        feeds={"A": [FeedSegment(kind="const", count=1, value=1)]},
        drains={"Z": [DrainSegment(kind="mem", per_access=1, num_strides=1,
                                   stride_elems=1, elem_bytes=8)]},
        interleave_seed=0,
    )


def _scaled(plan: CasePlan, instances: int) -> CasePlan:
    """Same DFG, canonical streams, fewer instances: one const feed per
    input, one linear memory drain per output, no recurrence."""
    widths_in, widths_out = _widths(plan)
    out = _clone(plan)
    out.num_instances = instances
    out.recur_in = out.recur_out = ""
    out.feeds = {
        port: [FeedSegment(kind="const", count=width * instances, value=1)]
        for port, width in widths_in.items()
    }
    out.drains = {
        port: [DrainSegment(kind="mem", per_access=width * instances,
                            num_strides=1, stride_elems=width * instances,
                            elem_bytes=8)]
        for port, width in widths_out.items()
    }
    return out


def _candidates(plan: CasePlan) -> Iterator[CasePlan]:
    from .generators import passthrough_dfg_spec

    widths_in, widths_out = _widths(plan)

    # 1. Full collapse: is the divergence independent of this case at all?
    yield trivial_plan(plan.name)

    # 2. Fewer instances with canonical streams.
    if plan.num_instances > 1 or plan.recur_in or any(
        seg.kind != "const" for segs in plan.feeds.values() for seg in segs
    ):
        yield _scaled(plan, 1)
    if plan.num_instances > 3:
        yield _scaled(plan, plan.num_instances // 2)

    # 3. Rule the computation out: swap in a pass-through DFG with the
    #    same port shapes (stream totals stay valid).
    if plan.dfg_spec.get("name") != "passthrough":
        out = _clone(plan)
        out.dfg_spec = passthrough_dfg_spec(widths_in, widths_out)
        yield out

    # 4. Drop the recurrence.
    if plan.recur_in:
        out = _clone(plan)
        recur = out.feeds[out.recur_in][-1]
        out.feeds[out.recur_in][-1] = FeedSegment(
            kind="const", count=recur.count, value=1)
        out.drains[out.recur_out][0] = DrainSegment(
            kind="clean", count=recur.count)
        out.recur_in = out.recur_out = ""
        yield out

    # 5. Merge each port's feeds into one const stream.
    for port, width in widths_in.items():
        if plan.recur_in == port:
            continue
        segs = plan.feeds[port]
        if len(segs) > 1 or segs[0].kind != "const":
            out = _clone(plan)
            out.feeds[port] = [FeedSegment(
                kind="const", count=width * plan.num_instances, value=1)]
            yield out

    # 6. Simplify individual feed segments to consts.
    for port, segs in plan.feeds.items():
        for index, seg in enumerate(segs):
            if seg.kind in ("const", "recur"):
                continue
            out = _clone(plan)
            out.feeds[port][index] = FeedSegment(
                kind="const", count=seg.num_elements, value=1)
            yield out

    # 7. Simplify individual drains: linear memory first (keeps the
    #    memory-image check alive), then clean (drops it).
    for port, segs in plan.drains.items():
        for index, seg in enumerate(segs):
            if seg.kind == "recur":
                continue
            count = seg.num_elements
            if seg.kind != "mem" or seg.num_strides > 1 or seg.elem_bytes != 8:
                out = _clone(plan)
                out.drains[port][index] = DrainSegment(
                    kind="mem", per_access=count, num_strides=1,
                    stride_elems=count, elem_bytes=8)
                yield out
            if seg.kind != "clean":
                out = _clone(plan)
                out.drains[port][index] = DrainSegment(kind="clean",
                                                       count=count)
                yield out

    # 8. Flatten data values.
    flattened = _clone(plan)
    touched = False
    for segs in flattened.feeds.values():
        for seg in segs:
            if seg.kind == "const" and seg.value != 1:
                seg.value, touched = 1, True
            if seg.array and any(v != 1 for v in seg.array):
                seg.array, touched = [1] * len(seg.array), True
    if touched:
        yield flattened


def shrink(plan: CasePlan, diverges: Callable[[CasePlan], bool],
           max_checks: int = 150) -> CasePlan:
    """Greedy fixpoint minimisation.

    ``diverges`` re-runs the oracle on a candidate (the caller decides
    what counts — usually ``bool(run_case(p).divergences)``).  Candidates
    that fail validation or scheduling are skipped; the loop stops at a
    fixpoint or after ``max_checks`` oracle runs.
    """
    checks = 0

    def reproduces(candidate: CasePlan) -> bool:
        nonlocal checks
        if checks >= max_checks:
            return False
        try:
            validate_plan(candidate)
        except PlanError:
            return False
        checks += 1
        try:
            return diverges(candidate)
        except Exception:
            return False

    improved = True
    while improved and checks < max_checks:
        improved = False
        for candidate in _candidates(plan):
            if plan_to_json(candidate) == plan_to_json(plan):
                continue
            if reproduces(candidate):
                plan = candidate
                improved = True
                break
    return plan
