"""Fuzz-case plans: a JSON-serialisable genome for one stream program.

A :class:`CasePlan` is everything needed to *deterministically* rebuild a
fuzz case: the DFG spec, the schedule seed, and per-port feed/drain
segments holding concrete data (arrays, constants, indices).  Shrinking
and replay operate on plans, never on raw command lists — a plan is legal
by construction, so every shrink candidate is still a well-formed program.

:func:`build_case` lowers a plan to a :class:`StreamProgram` plus its
initial memory image.  The lowering is pure and deterministic: the same
plan always produces a byte-identical command encoding (the
seed-determinism test in ``tests/test_fuzz.py`` asserts exactly that).
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..cgra.fabric import broadly_provisioned
from ..core.compiler import schedule
from ..core.compiler.config import CgraConfig
from ..core.isa.program import StreamProgram
from ..sim.memory import BackingStore, MemorySystem
from ..workloads.common import Allocator

#: annealing effort for fuzz schedules — far less than the workloads use;
#: fuzz DFGs are tiny and throughput matters.  Must stay fixed: replaying
#: a corpus case re-runs the scheduler with these exact parameters.
FUZZ_ANNEAL_ITERATIONS = 150
FUZZ_SCHEDULE_ATTEMPTS = 4

#: scratchpad capacity the simulator provisions (SoftbrainParams default)
SCRATCH_CAPACITY = 4096

CASE_VERSION = 1


class PlanError(ValueError):
    """A plan violates the generator's legality rules."""


# -- segments -----------------------------------------------------------------


@dataclass
class FeedSegment:
    """One stream of data into an input port.

    Kinds: ``const`` (SD_Const_Port), ``mem`` (SD_Mem_Port with affine
    geometry over ``array``), ``scratch`` (memory -> scratchpad ->
    port round-trip of ``array``), ``indirect`` (index fill + SD_IndPort_Port
    gather of ``array[indices]``) and ``recur`` (SD_Port_Port from output
    ``src``).
    """

    kind: str
    count: int = 0  # const/recur only; derived for the array kinds
    value: int = 0
    array: List[int] = field(default_factory=list)
    indices: List[int] = field(default_factory=list)
    elem_bytes: int = 8
    signed: bool = False
    per_access: int = 1
    stride_elems: int = 0
    num_strides: int = 1
    src: str = ""

    @property
    def num_elements(self) -> int:
        if self.kind == "mem":
            return self.per_access * self.num_strides
        if self.kind == "scratch":
            return len(self.array)
        if self.kind == "indirect":
            return len(self.indices)
        return self.count

    # JSON keeps only the fields the kind uses, so case files stay legible.
    def to_dict(self) -> dict:
        out: dict = {"kind": self.kind}
        if self.kind == "const":
            out.update(count=self.count, value=self.value)
        elif self.kind == "recur":
            out.update(count=self.count, src=self.src)
        elif self.kind == "mem":
            out.update(array=self.array, elem_bytes=self.elem_bytes,
                       signed=self.signed, per_access=self.per_access,
                       stride_elems=self.stride_elems,
                       num_strides=self.num_strides)
        elif self.kind == "scratch":
            out.update(array=self.array, elem_bytes=self.elem_bytes,
                       signed=self.signed)
        elif self.kind == "indirect":
            out.update(array=self.array, indices=self.indices,
                       elem_bytes=self.elem_bytes, signed=self.signed)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FeedSegment":
        return cls(**data)


@dataclass
class DrainSegment:
    """One stream of data out of an output port.

    Kinds: ``mem`` (SD_Port_Mem with non-overlapping affine geometry),
    ``scatter`` (index fill + SD_IndPort_Mem to distinct addresses),
    ``scratch`` (SD_Port_Scratch), ``clean`` (SD_Clean_Port) and ``recur``
    (placeholder for the elements a recurrence stream consumes; the
    command itself is emitted on the feed side).
    """

    kind: str
    count: int = 0  # scratch/clean/recur; derived for mem/scatter
    elem_bytes: int = 8
    per_access: int = 1
    stride_elems: int = 1
    num_strides: int = 1
    indices: List[int] = field(default_factory=list)

    @property
    def num_elements(self) -> int:
        if self.kind == "mem":
            return self.per_access * self.num_strides
        if self.kind == "scatter":
            return len(self.indices)
        return self.count

    def to_dict(self) -> dict:
        out: dict = {"kind": self.kind}
        if self.kind == "mem":
            out.update(elem_bytes=self.elem_bytes, per_access=self.per_access,
                       stride_elems=self.stride_elems,
                       num_strides=self.num_strides)
        elif self.kind == "scatter":
            out.update(elem_bytes=self.elem_bytes, indices=self.indices)
        elif self.kind == "scratch":
            out.update(count=self.count, elem_bytes=self.elem_bytes)
        else:  # clean / recur
            out.update(count=self.count)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "DrainSegment":
        return cls(**data)


# -- the plan -----------------------------------------------------------------


@dataclass
class CasePlan:
    """A complete, replayable fuzz case."""

    name: str
    dfg_spec: dict
    schedule_seed: int
    num_instances: int
    feeds: Dict[str, List[FeedSegment]]
    drains: Dict[str, List[DrainSegment]]
    recur_in: str = ""
    recur_out: str = ""
    interleave_seed: int = 0


def plan_to_json(plan: CasePlan) -> str:
    """Canonical JSON text (stable key order => byte-identical replays)."""
    payload = {
        "version": CASE_VERSION,
        "name": plan.name,
        "dfg": plan.dfg_spec,
        "schedule_seed": plan.schedule_seed,
        "num_instances": plan.num_instances,
        "recur_in": plan.recur_in,
        "recur_out": plan.recur_out,
        "interleave_seed": plan.interleave_seed,
        "feeds": {
            port: [seg.to_dict() for seg in segs]
            for port, segs in sorted(plan.feeds.items())
        },
        "drains": {
            port: [seg.to_dict() for seg in segs]
            for port, segs in sorted(plan.drains.items())
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def plan_from_json(text: str) -> CasePlan:
    data = json.loads(text)
    if data.get("version") != CASE_VERSION:
        raise PlanError(f"unsupported case version {data.get('version')!r}")
    return CasePlan(
        name=data["name"],
        dfg_spec=data["dfg"],
        schedule_seed=data["schedule_seed"],
        num_instances=data["num_instances"],
        feeds={
            port: [FeedSegment.from_dict(d) for d in segs]
            for port, segs in data["feeds"].items()
        },
        drains={
            port: [DrainSegment.from_dict(d) for d in segs]
            for port, segs in data["drains"].items()
        },
        recur_in=data.get("recur_in", ""),
        recur_out=data.get("recur_out", ""),
        interleave_seed=data.get("interleave_seed", 0),
    )


# -- validation ---------------------------------------------------------------


def element_indices(per_access: int, stride_elems: int,
                    num_strides: int) -> List[int]:
    """Element offsets an affine pattern touches, in stream order."""
    return [
        i * stride_elems + j
        for i in range(num_strides)
        for j in range(per_access)
    ]


def validate_plan(plan: CasePlan) -> None:
    """Raise :class:`PlanError` unless the plan obeys every legality rule."""
    from .generators import dfg_from_spec  # local: generators imports us

    dfg = dfg_from_spec(plan.dfg_spec)
    if not 1 <= plan.num_instances <= 16:
        raise PlanError("num_instances must be in 1..16 (port depth)")
    if set(plan.feeds) != set(dfg.inputs):
        raise PlanError("feeds must cover exactly the DFG input ports")
    if set(plan.drains) != set(dfg.outputs):
        raise PlanError("drains must cover exactly the DFG output ports")

    scratch_bytes = 0
    for port, segments in sorted(plan.feeds.items()):
        width = dfg.inputs[port].width
        total = 0
        seen_memory_engine = False
        for index, seg in enumerate(segments):
            if seg.num_elements <= 0:
                raise PlanError(f"{port}[{index}]: empty segment")
            total += seg.num_elements
            if seg.kind in ("mem", "indirect"):
                seen_memory_engine = True
            elif seen_memory_engine:
                raise PlanError(
                    f"{port}[{index}]: {seg.kind} segment after a memory-"
                    "engine segment (in-flight data could be overtaken)"
                )
            if seg.kind == "recur":
                if port != plan.recur_in or seg.src != plan.recur_out:
                    raise PlanError(f"{port}[{index}]: stray recurrence")
                if index != len(segments) - 1:
                    raise PlanError("recurrence must be the last feed segment")
            elif seg.kind == "mem":
                span = ((seg.num_strides - 1) * seg.stride_elems
                        + seg.per_access)
                if len(seg.array) != span:
                    raise PlanError(f"{port}[{index}]: array/geometry mismatch")
            elif seg.kind == "scratch":
                scratch_bytes += _aligned(len(seg.array) * seg.elem_bytes)
            elif seg.kind == "indirect":
                if any(not 0 <= i < len(seg.array) for i in seg.indices):
                    raise PlanError(f"{port}[{index}]: index out of range")
        if total != width * plan.num_instances:
            raise PlanError(
                f"{port}: feeds {total} elements, needs "
                f"{width * plan.num_instances}"
            )
    for port, segments in sorted(plan.drains.items()):
        width = dfg.outputs[port].width
        total = 0
        for index, seg in enumerate(segments):
            if seg.num_elements <= 0:
                raise PlanError(f"{port}[{index}]: empty segment")
            total += seg.num_elements
            if seg.kind == "recur":
                if port != plan.recur_out or index != 0:
                    raise PlanError("recurrence must drain first")
                feed = plan.feeds[plan.recur_in][-1]
                if feed.kind != "recur" or feed.count != seg.count:
                    raise PlanError("recurrence feed/drain mismatch")
            elif seg.kind == "mem":
                if seg.num_strides > 1 and seg.stride_elems < seg.per_access:
                    raise PlanError(
                        f"{port}[{index}]: overlapping write pattern "
                        "(write completion order is not deterministic)"
                    )
            elif seg.kind == "scatter":
                if len(set(seg.indices)) != len(seg.indices):
                    raise PlanError(f"{port}[{index}]: duplicate scatter index")
            elif seg.kind == "scratch":
                scratch_bytes += _aligned(seg.count * seg.elem_bytes)
        if total != width * plan.num_instances:
            raise PlanError(
                f"{port}: drains {total} elements, produces "
                f"{width * plan.num_instances}"
            )
    if plan.recur_in:
        feed = plan.feeds[plan.recur_in][-1]
        width = dfg.inputs[plan.recur_in].width
        if dfg.outputs[plan.recur_out].width < width:
            raise PlanError("recurrence source narrower than destination")
        seed = width * plan.num_instances - feed.count
        if seed < width:
            raise PlanError("recurrence needs at least one seeded instance")
        if any(s.kind in ("mem", "indirect")
               for s in plan.feeds[plan.recur_in][:-1]):
            raise PlanError("recurrence seeds must avoid the memory engines")
    if scratch_bytes > SCRATCH_CAPACITY:
        raise PlanError(f"plan needs {scratch_bytes} B scratch, have "
                        f"{SCRATCH_CAPACITY}")


def _aligned(nbytes: int) -> int:
    return (nbytes + 63) // 64 * 64


# -- lowering -----------------------------------------------------------------

_SCHEDULE_CACHE: Dict[Tuple[str, int], CgraConfig] = {}


def schedule_plan_dfg(dfg_spec: dict, schedule_seed: int) -> CgraConfig:
    """Schedule a plan's DFG on the fuzz fabric (memoised: the generator
    and the oracle's three legs all need the same configuration)."""
    from .generators import dfg_from_spec

    key = (json.dumps(dfg_spec, sort_keys=True), schedule_seed)
    config = _SCHEDULE_CACHE.get(key)
    if config is None:
        config = schedule(
            dfg_from_spec(dfg_spec),
            broadly_provisioned(),
            seed=schedule_seed,
            anneal_iterations=FUZZ_ANNEAL_ITERATIONS,
            max_attempts=FUZZ_SCHEDULE_ATTEMPTS,
        )
        _SCHEDULE_CACHE[key] = config
    return config


@dataclass
class BuiltCase:
    """A plan lowered to a runnable program plus its initial memory image."""

    plan: CasePlan
    program: StreamProgram
    config: CgraConfig
    #: (port, segment index) -> symbolic address assignments
    feed_layout: Dict[Tuple[str, int], Dict[str, int]]
    drain_layout: Dict[Tuple[str, int], Dict[str, int]]
    image: List[Tuple[int, bytes]]

    @property
    def fabric(self):
        return broadly_provisioned()

    def fresh_memory(self) -> MemorySystem:
        memory = MemorySystem()
        for addr, data in self.image:
            memory.preload(addr, data)
        return memory

    def fresh_store(self) -> BackingStore:
        store = BackingStore()
        for addr, data in self.image:
            store.write(addr, data)
        return store


def _pack(values: List[int], elem_bytes: int) -> bytes:
    mask = (1 << (8 * elem_bytes)) - 1
    return b"".join(
        (v & mask).to_bytes(elem_bytes, "little") for v in values
    )


def build_case(plan: CasePlan) -> BuiltCase:
    """Lower a plan to a program, deterministically.

    Layout, indirect-port assignment and command interleaving all follow
    from the plan alone (ports in sorted order, interleave driven by
    ``interleave_seed``), so equal plans produce byte-identical programs.
    """
    validate_plan(plan)
    config = schedule_plan_dfg(plan.dfg_spec, plan.schedule_seed)
    program = StreamProgram(plan.name, config)

    alloc = Allocator()
    scratch_next = 0
    ind_next = 0
    image: List[Tuple[int, bytes]] = []
    feed_layout: Dict[Tuple[str, int], Dict[str, int]] = {}
    drain_layout: Dict[Tuple[str, int], Dict[str, int]] = {}

    def take_scratch(nbytes: int) -> int:
        nonlocal scratch_next
        addr = scratch_next
        scratch_next += _aligned(nbytes)
        return addr

    def take_ind() -> int:
        nonlocal ind_next
        port = ind_next
        ind_next += 1
        return port

    # Phase 1: layout + per-chain emitter closures.  Scratch preloads are
    # collected separately: every memory->scratch load runs before the
    # scratch-write barrier, which runs before any chain command.
    preamble: List = []
    chains: Dict[str, List] = {}

    for port in sorted(plan.feeds):
        chain: List = []
        for index, seg in enumerate(plan.feeds[port]):
            layout: Dict[str, int] = {}
            if seg.kind == "const":
                chain.append(lambda s=seg, p=port:
                             program.const_port(s.value, s.count, p))
            elif seg.kind == "mem":
                base = alloc.alloc(len(seg.array) * seg.elem_bytes)
                layout["base"] = base
                image.append((base, _pack(seg.array, seg.elem_bytes)))
                chain.append(lambda s=seg, b=base, p=port: program.mem_port(
                    b, s.stride_elems * s.elem_bytes,
                    s.per_access * s.elem_bytes, s.num_strides, p,
                    elem_bytes=s.elem_bytes, signed=s.signed))
            elif seg.kind == "scratch":
                nbytes = len(seg.array) * seg.elem_bytes
                staging = alloc.alloc(nbytes)
                saddr = take_scratch(nbytes)
                layout["staging"], layout["scratch"] = staging, saddr
                image.append((staging, _pack(seg.array, seg.elem_bytes)))
                preamble.append(lambda s=seg, m=staging, sa=saddr, n=nbytes:
                                program.mem_scratch(m, n, n, 1, sa,
                                                    elem_bytes=s.elem_bytes))
                chain.append(lambda s=seg, sa=saddr, p=port, n=nbytes:
                             program.scratch_port(sa, n, n, 1, p,
                                                  elem_bytes=s.elem_bytes,
                                                  signed=s.signed))
            elif seg.kind == "indirect":
                table = alloc.alloc(len(seg.array) * seg.elem_bytes)
                idx = alloc.alloc(len(seg.indices) * 8)
                ind_id = take_ind()
                layout["table"], layout["indices"] = table, idx
                layout["ind_port"] = ind_id
                image.append((table, _pack(seg.array, seg.elem_bytes)))
                image.append((idx, _pack(seg.indices, 8)))
                chain.append(lambda s=seg, a=idx, k=ind_id:
                             program.mem_to_indirect(a, len(s.indices), k))
                chain.append(lambda s=seg, t=table, k=ind_id, p=port:
                             program.ind_port_port(
                                 k, t, p, len(s.indices),
                                 elem_bytes=s.elem_bytes,
                                 index_scale=s.elem_bytes, signed=s.signed))
            elif seg.kind == "recur":
                chain.append(lambda s=seg, p=port:
                             program.port_port(s.src, s.count, p))
            feed_layout[(port, index)] = layout
        chains[f"in:{port}"] = chain

    for port in sorted(plan.drains):
        chain = []
        for index, seg in enumerate(plan.drains[port]):
            layout = {}
            if seg.kind == "mem":
                span = ((seg.num_strides - 1) * seg.stride_elems
                        + seg.per_access)
                base = alloc.alloc(span * seg.elem_bytes)
                layout["base"] = base
                chain.append(lambda s=seg, b=base, p=port: program.port_mem(
                    p, s.stride_elems * s.elem_bytes,
                    s.per_access * s.elem_bytes, s.num_strides, b,
                    elem_bytes=s.elem_bytes))
            elif seg.kind == "scatter":
                base = alloc.alloc((max(seg.indices) + 1) * 8)
                idx = alloc.alloc(len(seg.indices) * 8)
                ind_id = take_ind()
                layout["base"], layout["indices"] = base, idx
                layout["ind_port"] = ind_id
                image.append((idx, _pack(seg.indices, 8)))
                chain.append(lambda s=seg, a=idx, k=ind_id:
                             program.mem_to_indirect(a, len(s.indices), k))
                chain.append(lambda s=seg, b=base, k=ind_id, p=port:
                             program.ind_port_mem(
                                 k, p, b, len(s.indices),
                                 elem_bytes=s.elem_bytes, index_scale=8))
            elif seg.kind == "scratch":
                saddr = take_scratch(seg.count * seg.elem_bytes)
                layout["scratch"] = saddr
                chain.append(lambda s=seg, sa=saddr, p=port:
                             program.port_scratch(p, s.count, sa,
                                                  elem_bytes=s.elem_bytes))
            elif seg.kind == "clean":
                chain.append(lambda s=seg, p=port:
                             program.clean_port(s.count, p))
            # "recur": command already emitted by the feed side
            drain_layout[(port, index)] = layout
        chains[f"out:{port}"] = chain

    # A recurrence ties its feed chain to its drain chain: the SD_Port_Port
    # command must follow the seeds and precede every other drain of the
    # source port (same-(port, role) program order).
    if plan.recur_in:
        joined = chains.pop(f"in:{plan.recur_in}")
        joined.extend(chains.pop(f"out:{plan.recur_out}"))
        chains[f"in:{plan.recur_in}"] = joined

    # Phase 2: emit.  config -> scratch preloads -> barrier -> random
    # topological merge of the per-port chains -> full barrier.
    for emit in preamble:
        emit()
    if preamble:
        program.barrier_scratch_wr()
    rng = random.Random(plan.interleave_seed)
    order = sorted(chains)
    cursors = {name: 0 for name in order}
    live = [name for name in order if chains[name]]
    while live:
        name = rng.choice(live)
        chains[name][cursors[name]]()
        cursors[name] += 1
        if cursors[name] == len(chains[name]):
            live.remove(name)
    program.barrier_all()

    return BuiltCase(plan, program, config, feed_layout, drain_layout, image)
