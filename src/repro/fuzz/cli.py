"""The ``python -m repro fuzz`` entry point.

Modes:

* default — generate ``--count`` random cases from ``--seed`` and run the
  three-way oracle on each; diverging cases are shrunk and written as
  replayable JSON files under ``--save-dir``;
* ``--replay case.json`` — re-run one saved case and report its verdict;
* ``--smoke`` — replay every checked-in corpus case plus a small random
  batch; sized for a sub-minute CI job.  Smoke cases run the oracle with
  ``both_modes=True``, so the batched fast path (docs/PERFORMANCE.md) is
  checked against the slow path as a fourth leg on every CI run.
* ``--faults`` — run each random case under a random fault plan
  (``repro.resilience``).  A case only counts as a failure when a fault
  *escapes the diagnostics*: a non-SimError crash, or a SimError without
  an attached :class:`~repro.resilience.FailureReport`.  Oracle-flagged
  wrong results and diagnosed SimErrors are the expected, correct
  outcomes under injection.

Exit status is non-zero iff any divergence was observed.
"""

from __future__ import annotations

import pathlib
import random
import time
from typing import List, Optional

from .case import PlanError, plan_from_json, plan_to_json
from .generators import random_plan
from .oracle import run_case
from .shrink import shrink

#: random cases a --smoke run generates on top of the corpus replay
SMOKE_COUNT = 12
DEFAULT_COUNT = 100


def corpus_dir() -> pathlib.Path:
    return pathlib.Path(__file__).parent / "corpus"


def corpus_paths() -> List[pathlib.Path]:
    return sorted(corpus_dir().glob("*.json"))


def _check_rng(seed: int, tag: str) -> random.Random:
    # Injected into run_and_verify so mismatch sampling never touches the
    # module-level random state (see workloads.common.coerce_rng).
    return random.Random(f"verify:{seed}:{tag}")


def _fault_plan(seed: int, index: int):
    from ..resilience import FaultPlan

    return FaultPlan.random(f"fuzz:{seed}:{index}", count=2)


def _faulted_run_case(plan, fault_plan, rng=None):
    # Fresh injector per run: FaultInjector consumes its pending specs, so
    # reruns (shrinking, replays) must not see a drained plan.
    from ..resilience import FaultInjector, FaultPlan
    from ..sim.softbrain import SoftbrainParams

    injector = FaultInjector(FaultPlan.from_dict(fault_plan.to_dict()))
    params = SoftbrainParams(max_cycles=300_000)
    return run_case(plan, rng=rng, faults=injector, params=params)


def _fault_escapes(report) -> List[str]:
    """Divergences meaning the diagnostics layer failed, not the program."""
    escapes = []
    for divergence in report.divergences:
        if divergence.kind == "sim-crash":
            escapes.append(f"unstructured crash: {divergence.detail}")
        elif divergence.kind in ("sim-error", "sim-deadlock"):
            if getattr(divergence.exception, "report", None) is None:
                escapes.append(
                    f"SimError without crash dump: {divergence.detail}")
    return escapes


def _replay(path: pathlib.Path, seed: int, both_modes: bool = False) -> int:
    try:
        plan = plan_from_json(path.read_text())
    except OSError as exc:
        raise SystemExit(f"error: cannot read case file: {exc}")
    except (PlanError, ValueError) as exc:
        raise SystemExit(f"error: {path} is not a valid case file: {exc}")
    try:
        report = run_case(plan, rng=_check_rng(seed, plan.name),
                          both_modes=both_modes)
    except PlanError as exc:
        raise SystemExit(f"error: {path} violates plan legality: {exc}")
    if report.ok:
        print(f"{path}: OK ({plan.name}, "
              f"{len(plan_to_json(plan))} bytes)")
        return 0
    print(f"{path}: DIVERGED")
    for divergence in report.divergences:
        print(f"  {divergence}")
    return 1


def cmd_fuzz(args) -> int:
    started = time.time()
    failures = 0

    if args.replay:
        return _replay(pathlib.Path(args.replay), args.seed)

    replayed = 0
    if args.smoke:
        for path in corpus_paths():
            failures += _replay(path, args.seed, both_modes=True)
            replayed += 1

    count = args.count if args.count is not None else (
        SMOKE_COUNT if args.smoke else DEFAULT_COUNT)
    save_dir = pathlib.Path(args.save_dir)
    ran = 0
    for index in range(count):
        if args.time_budget and time.time() - started > args.time_budget:
            print(f"time budget ({args.time_budget}s) reached "
                  f"after {ran} cases")
            break
        name = f"fuzz-{args.seed}-{index}"
        plan = random_plan(random.Random(f"{args.seed}:{index}"), name=name)
        rng = _check_rng(args.seed, str(index))
        if getattr(args, "faults", False):
            fault_plan = _fault_plan(args.seed, index)
            report = _faulted_run_case(plan, fault_plan, rng=rng)
            ran += 1
            escapes = _fault_escapes(report)
            if not escapes:
                continue
            failures += 1
            print(f"{name}: FAULT ESCAPED DIAGNOSTICS "
                  f"(plan {[s.to_dict() for s in fault_plan.specs]})")
            for escape in escapes:
                print(f"  {escape}")
            if not args.no_shrink:
                plan = shrink(
                    plan,
                    lambda p: bool(_fault_escapes(
                        _faulted_run_case(p, fault_plan))))
                print(f"  shrunk to {build_num_commands(plan)} commands")
        else:
            report = run_case(plan, rng=rng, both_modes=args.smoke)
            ran += 1
            if report.ok:
                continue
            failures += 1
            print(f"{name}: DIVERGED")
            for divergence in report.divergences:
                print(f"  {divergence}")
            if not args.no_shrink:
                plan = shrink(
                    plan, lambda p: bool(run_case(p).divergences))
                print(f"  shrunk to {plan_to_json(plan).count(chr(10))} lines, "
                      f"{build_num_commands(plan)} commands")
        save_dir.mkdir(parents=True, exist_ok=True)
        case_path = save_dir / f"{name}.json"
        case_path.write_text(plan_to_json(plan))
        print(f"  repro written to {case_path}")

    wall = time.time() - started
    print(f"fuzz: {ran} generated + {replayed} corpus cases, "
          f"{failures} divergence(s), {wall:.1f}s")
    return 1 if failures else 0


def build_num_commands(plan) -> int:
    from .case import build_case

    return build_case(plan).program.num_commands
