"""Three-way differential oracle for fuzz cases.

Every case runs on three independent implementations of the same
semantics:

1. the **cycle-level simulator** (``repro.sim``), via the standard
   :func:`~repro.workloads.common.run_and_verify` entry point;
2. the **functional interpreter** (``repro.core.isa.interpreter``), the
   untimed golden model;
3. a **pure evaluation** done here: feed streams are computed directly
   from the plan's segments, the DFG is fired ``num_instances`` times with
   :meth:`Dfg.execute` (NOT the simulator's ``CompiledDfg`` — that is what
   makes this a genuinely third implementation), and drains are applied as
   plain writes to a copy of the initial memory image.

Any disagreement — memory image, scratchpad image, deadlock, crash,
instance count, or leftover port data — is reported as a
:class:`Divergence`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from ..core.isa.interpreter import FunctionalDeadlock, interpret_program
from ..sim.errors import SimError, SimulationDeadlock, SimulationLimit
from ..sim.memory import BackingStore
from ..sim.softbrain import SoftbrainParams
from ..workloads.common import BuiltWorkload, VerificationError, run_and_verify
from .case import (
    SCRATCH_CAPACITY,
    BuiltCase,
    CasePlan,
    build_case,
    element_indices,
)

WORD_MASK = (1 << 64) - 1


@dataclass
class Expected:
    """The pure evaluation's final state."""

    store: BackingStore
    scratch: bytearray
    out_streams: Dict[str, List[int]]


@dataclass
class Divergence:
    """One disagreement between implementations."""

    kind: str  # e.g. "sim-memory", "interp-deadlock"
    detail: str
    #: the raising exception, when the divergence was an exception (the
    #: campaign inspects ``exception.report`` for the crash dump)
    exception: Optional[BaseException] = field(default=None, compare=False,
                                               repr=False)

    def __str__(self) -> str:
        return f"[{self.kind}] {self.detail}"


@dataclass
class OracleReport:
    plan: CasePlan
    divergences: List[Divergence] = field(default_factory=list)
    #: cycles the simulator leg ran (0 when it crashed) — the fault
    #: campaign uses this to aim fault cycles inside the run window
    sim_cycles: int = 0

    @property
    def ok(self) -> bool:
        return not self.divergences


def _extend(raw: int, elem_bytes: int, signed: bool) -> int:
    """Zero/sign-extend a raw element to a 64-bit word."""
    bits = 8 * elem_bytes
    raw &= (1 << bits) - 1
    if signed and raw >> (bits - 1):
        raw -= 1 << bits
    return raw & WORD_MASK


def evaluate_case(built: BuiltCase) -> Expected:
    """Compute the reference result of a case without either simulator."""
    from .generators import dfg_from_spec

    plan = built.plan
    dfg = dfg_from_spec(plan.dfg_spec)
    instances = plan.num_instances

    # Feed streams; recurrence elements are placeholders resolved from the
    # source port's output stream as instances fire.
    feed_streams: Dict[str, List[Optional[int]]] = {}
    recur_seed_len = 0
    for port in sorted(plan.feeds):
        stream: List[Optional[int]] = []
        for seg in plan.feeds[port]:
            if seg.kind == "const":
                stream.extend([seg.value & WORD_MASK] * seg.count)
            elif seg.kind == "mem":
                for idx in element_indices(seg.per_access, seg.stride_elems,
                                           seg.num_strides):
                    stream.append(_extend(seg.array[idx], seg.elem_bytes,
                                          seg.signed))
            elif seg.kind == "scratch":
                stream.extend(_extend(v, seg.elem_bytes, seg.signed)
                              for v in seg.array)
            elif seg.kind == "indirect":
                stream.extend(_extend(seg.array[i], seg.elem_bytes, seg.signed)
                              for i in seg.indices)
            elif seg.kind == "recur":
                recur_seed_len = len(stream)
                stream.extend([None] * seg.count)
        feed_streams[port] = stream

    out_streams: Dict[str, List[int]] = {port: [] for port in plan.drains}
    state = dfg.make_state()
    for k in range(instances):
        inputs = {}
        for name, port in dfg.inputs.items():
            words = []
            for pos in range(k * port.width, (k + 1) * port.width):
                value = feed_streams[name][pos]
                if value is None:  # recurrence: produced by an earlier fire
                    value = out_streams[plan.recur_out][pos - recur_seed_len]
                words.append(value)
            inputs[name] = words
        results = dfg.execute(inputs, state)
        for name, values in results.items():
            out_streams[name].extend(values)

    # Apply the drains to a fresh copy of the initial image.
    store = built.fresh_store()
    scratch = bytearray(SCRATCH_CAPACITY)
    for port in sorted(plan.feeds):
        for index, seg in enumerate(plan.feeds[port]):
            if seg.kind == "scratch":
                base = built.feed_layout[(port, index)]["scratch"]
                for i, value in enumerate(seg.array):
                    offset = base + i * seg.elem_bytes
                    scratch[offset:offset + seg.elem_bytes] = (
                        (value & ((1 << (8 * seg.elem_bytes)) - 1))
                        .to_bytes(seg.elem_bytes, "little"))
    for port in sorted(plan.drains):
        cursor = 0
        for index, seg in enumerate(plan.drains[port]):
            values = out_streams[port][cursor:cursor + seg.num_elements]
            cursor += seg.num_elements
            layout = built.drain_layout[(port, index)]
            if seg.kind == "mem":
                for eidx, value in zip(
                    element_indices(seg.per_access, seg.stride_elems,
                                    seg.num_strides), values
                ):
                    store.write_word(layout["base"] + eidx * seg.elem_bytes,
                                     value, seg.elem_bytes)
            elif seg.kind == "scatter":
                for idx, value in zip(seg.indices, values):
                    store.write_word(layout["base"] + idx * 8, value,
                                     seg.elem_bytes)
            elif seg.kind == "scratch":
                base = layout["scratch"]
                for i, value in enumerate(values):
                    offset = base + i * seg.elem_bytes
                    scratch[offset:offset + seg.elem_bytes] = (
                        (value & ((1 << (8 * seg.elem_bytes)) - 1))
                        .to_bytes(seg.elem_bytes, "little"))
            # "clean" and "recur" consume without storing
    return Expected(store, scratch, out_streams)


def diff_stores(got: BackingStore, want: BackingStore,
                limit: int = 4,
                sample_rng: Optional[random.Random] = None) -> List[str]:
    """Byte-level differences between two sparse stores (absent pages
    compare as zeros).  ``sample_rng`` randomises which differing pages
    are detailed when there are more than ``limit`` — handy for spotting
    patterns across fuzz reruns without dumping megabytes."""
    got_pages = got.snapshot_pages()
    want_pages = want.snapshot_pages()
    zeros = bytes(4096)
    bad_pages = [
        pid for pid in sorted(set(got_pages) | set(want_pages))
        if got_pages.get(pid, zeros) != want_pages.get(pid, zeros)
    ]
    if sample_rng is not None and len(bad_pages) > limit:
        bad_pages = sorted(sample_rng.sample(bad_pages, limit))
    out = []
    for pid in bad_pages[:limit]:
        g = got_pages.get(pid, zeros)
        w = want_pages.get(pid, zeros)
        offset = next(i for i in range(4096) if g[i] != w[i])
        addr = (pid << 12) + offset
        out.append(f"addr=0x{addr:x}: got 0x{g[offset]:02x} "
                   f"want 0x{w[offset]:02x}")
    return out


def run_case(plan: CasePlan,
             rng: Optional[random.Random] = None,
             faults=None,
             params: Optional[SoftbrainParams] = None,
             both_modes: bool = False) -> OracleReport:
    """Run one plan through all three implementations and compare.

    ``faults`` (a :class:`repro.resilience.FaultInjector`) and ``params``
    apply to the cycle-level leg only; the interpreter and the pure
    evaluation always run fault-free, so under injection they serve as the
    reference against which a fault's effect is classified.

    ``both_modes`` adds a fourth oracle leg: the cycle-level simulator is
    rerun with ``fast_path`` inverted and the two runs must agree
    bit-for-bit (stats, memory pages, scratchpad, command timeline).  Any
    disagreement is a ``fastpath-*`` divergence.  Ignored under fault
    injection — the injector is single-use and the fast path disables
    itself when faults are armed, so the comparison would be meaningless.
    """
    built = build_case(plan)
    expected = evaluate_case(built)
    report = OracleReport(plan)
    instances = plan.num_instances

    # -- leg 1: cycle-level simulator ----------------------------------------
    def verify(memory, rng=None) -> None:
        mismatches = diff_stores(memory.store, expected.store,
                                 sample_rng=rng)
        if mismatches:
            raise VerificationError("; ".join(mismatches))

    workload = BuiltWorkload(plan.name, built.program, built.fabric,
                             built.fresh_memory(), verify)
    result = None
    sim_outcome = ("ok", "")
    try:
        result = run_and_verify(workload, rng=rng, faults=faults,
                                params=params)
    except VerificationError as exc:
        sim_outcome = ("sim-memory", str(exc))
        report.divergences.append(Divergence("sim-memory", str(exc),
                                             exception=exc))
    except (SimulationDeadlock, SimulationLimit) as exc:
        sim_outcome = ("sim-deadlock", str(exc))
        report.divergences.append(Divergence("sim-deadlock", str(exc),
                                             exception=exc))
    except SimError as exc:  # structured port/scratch/command failures
        sim_outcome = ("sim-error", f"{type(exc).__name__}: {exc}")
        report.divergences.append(
            Divergence("sim-error", f"{type(exc).__name__}: {exc}",
                       exception=exc))
    except Exception as exc:  # anything unstructured is a diagnostics bug
        sim_outcome = ("sim-crash", f"{type(exc).__name__}: {exc}")
        report.divergences.append(
            Divergence("sim-crash", f"{type(exc).__name__}: {exc}",
                       exception=exc))
    else:
        report.sim_cycles = result.stats.cycles
        if result.scratchpad.snapshot() != bytes(expected.scratch):
            report.divergences.append(
                Divergence("sim-scratch", _scratch_diff(
                    result.scratchpad.snapshot(), expected.scratch)))
        if result.stats.instances_fired != instances:
            report.divergences.append(Divergence(
                "sim-instances",
                f"fired {result.stats.instances_fired}, expected {instances}"))

    # -- leg 1b: the other execution mode ------------------------------------
    if both_modes and faults is None:
        report.divergences.extend(_other_mode_leg(
            plan, built, verify, rng, params, result, sim_outcome))

    # -- leg 2: functional interpreter ---------------------------------------
    store = built.fresh_store()
    try:
        final = interpret_program(built.program, store,
                                  scratch_bytes=SCRATCH_CAPACITY)
    except FunctionalDeadlock as exc:
        report.divergences.append(Divergence("interp-deadlock", str(exc)))
    except Exception as exc:
        report.divergences.append(
            Divergence("interp-crash", f"{type(exc).__name__}: {exc}"))
    else:
        mismatches = diff_stores(store, expected.store)
        if mismatches:
            report.divergences.append(
                Divergence("interp-memory", "; ".join(mismatches)))
        if bytes(final.scratch) != bytes(expected.scratch):
            report.divergences.append(
                Divergence("interp-scratch", _scratch_diff(
                    bytes(final.scratch), expected.scratch)))
        leftover = {
            f"{kind}{port_id}": len(queue)
            for (kind, port_id), queue in final.queues.items()
            if queue
        }
        if leftover:
            report.divergences.append(
                Divergence("interp-leftover",
                           f"undrained port data: {leftover}"))
    return report


def _other_mode_leg(plan, built, verify, rng, params, result,
                    sim_outcome) -> List[Divergence]:
    """Rerun the simulator leg with ``fast_path`` inverted and compare.

    The fast path is contractually a pure optimisation, so *everything*
    observable must match the slow path: failure classification on
    aborting runs; stats, memory pages, scratchpad image and command
    timeline on completing ones.
    """
    base = params if params is not None else SoftbrainParams()
    alt_params = replace(base, fast_path=not base.fast_path)
    workload = BuiltWorkload(plan.name, built.program, built.fabric,
                             built.fresh_memory(), verify)
    alt_result = None
    alt_outcome = ("ok", "")
    try:
        alt_result = run_and_verify(workload, rng=rng, params=alt_params)
    except VerificationError as exc:
        alt_outcome = ("sim-memory", str(exc))
    except (SimulationDeadlock, SimulationLimit) as exc:
        alt_outcome = ("sim-deadlock", str(exc))
    except SimError as exc:
        alt_outcome = ("sim-error", f"{type(exc).__name__}: {exc}")
    except Exception as exc:
        alt_outcome = ("sim-crash", f"{type(exc).__name__}: {exc}")

    label = (f"fast_path={base.fast_path} vs {alt_params.fast_path}")
    if sim_outcome[0] != alt_outcome[0]:
        return [Divergence(
            "fastpath-behavior",
            f"{label}: {sim_outcome[0] or 'ok'} vs {alt_outcome[0] or 'ok'} "
            f"({sim_outcome[1] or alt_outcome[1]})")]
    if result is None or alt_result is None:
        return []  # both legs aborted identically; nothing more to compare

    out: List[Divergence] = []
    got, want = result.stats.to_dict(), alt_result.stats.to_dict()
    if got != want:
        keys = [k for k in got if got.get(k) != want.get(k)]
        out.append(Divergence(
            "fastpath-stats",
            f"{label}: " + "; ".join(
                f"{k}: {got.get(k)} vs {want.get(k)}" for k in keys[:4])))
    mem_got = vars(result.memory.stats)
    mem_want = vars(alt_result.memory.stats)
    if mem_got != mem_want:
        out.append(Divergence("fastpath-stats",
                              f"{label}: memory stats {mem_got} vs {mem_want}"))
    mismatches = diff_stores(result.memory.store, alt_result.memory.store)
    if mismatches:
        out.append(Divergence("fastpath-memory",
                              f"{label}: " + "; ".join(mismatches)))
    if result.scratchpad.snapshot() != alt_result.scratchpad.snapshot():
        out.append(Divergence(
            "fastpath-scratch",
            f"{label}: " + _scratch_diff(result.scratchpad.snapshot(),
                                         alt_result.scratchpad.snapshot())))
    got_tl = [(t.index, t.enqueued, t.dispatched, t.completed)
              for t in result.timeline]
    want_tl = [(t.index, t.enqueued, t.dispatched, t.completed)
               for t in alt_result.timeline]
    if got_tl != want_tl:
        bad = next((pair for pair in zip(got_tl, want_tl)
                    if pair[0] != pair[1]),
                   (("len", len(got_tl)), ("len", len(want_tl))))
        out.append(Divergence(
            "fastpath-timeline", f"{label}: first mismatch {bad[0]} vs {bad[1]}"))
    return out


def _scratch_diff(got: bytes, want: bytes) -> str:
    for i, (g, w) in enumerate(zip(got, want)):
        if g != w:
            return f"scratch[{i}]: got 0x{g:02x} want 0x{w:02x}"
    return f"scratch length {len(got)} vs {len(want)}"
