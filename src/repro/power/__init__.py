"""Area and power accounting for Softbrain (Table 3 methodology)."""

from .model import (
    ComponentModel,
    PowerBreakdown,
    SOFTBRAIN_COMPONENTS,
    activity_factors,
    estimate_power,
    max_activity_power_mw,
    softbrain_area_mm2,
    softbrain_peak_power_mw,
)
from .tech import REFERENCE_NODE_NM, scale_area, scale_power

__all__ = [
    "ComponentModel",
    "PowerBreakdown",
    "REFERENCE_NODE_NM",
    "SOFTBRAIN_COMPONENTS",
    "activity_factors",
    "estimate_power",
    "max_activity_power_mw",
    "scale_area",
    "scale_power",
    "softbrain_area_mm2",
    "softbrain_peak_power_mw",
]
