"""Process-technology normalisation helpers.

The paper normalises every number to a 55 nm process (Table 3's caption):
DianNao's published figures are 65 nm, Aladdin models 40 nm, the CPU's
dynamic power is measured at 32 nm.  We use first-order constant-field
scaling — area scales with the square of feature size, power (at fixed
frequency and proportionally-scaled voltage) roughly linearly — which is
the same simple normalisation the paper applies.
"""

from __future__ import annotations


def scale_area(value_mm2: float, from_nm: float, to_nm: float) -> float:
    """Scale an area figure between process nodes (quadratic in feature size)."""
    if from_nm <= 0 or to_nm <= 0:
        raise ValueError("process nodes must be positive")
    return value_mm2 * (to_nm / from_nm) ** 2


def scale_power(value_mw: float, from_nm: float, to_nm: float) -> float:
    """Scale a power figure between process nodes (linear in feature size)."""
    if from_nm <= 0 or to_nm <= 0:
        raise ValueError("process nodes must be positive")
    return value_mw * (to_nm / from_nm)


#: the evaluation's common process node, nm
REFERENCE_NODE_NM = 55.0
