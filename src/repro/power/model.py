"""Area/power model of a Softbrain unit (the paper's Table 3 accounting).

Methodology mirrors the paper: per-component area and peak power come from
synthesis-calibrated constants at 55 nm / 1 GHz; a benchmark's power is
``static + activity x peak_dynamic`` per component, with activity factors
measured by the cycle-level simulator.  The constants are seeded so that at
the maximum DNN activity factors the breakdown reproduces Table 3's
published column (0.47 mm² / 119.3 mW per unit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..cgra.fabric import Fabric
from ..sim.softbrain import RunResult


@dataclass(frozen=True)
class ComponentModel:
    """Area plus static/peak-dynamic power of one Softbrain component."""

    name: str
    area_mm2: float
    static_mw: float
    dynamic_peak_mw: float

    def power_mw(self, activity: float) -> float:
        activity = min(max(activity, 0.0), 1.0)
        return self.static_mw + activity * self.dynamic_peak_mw

    @property
    def peak_mw(self) -> float:
        return self.static_mw + self.dynamic_peak_mw


#: 55 nm / 1 GHz component constants.  Peak totals match Table 3:
#: control core 39.1, CGRA network 31.2, FUs 24.4, stream engines 18.3,
#: scratchpad 2.6, vector ports 3.6 -> 119.2 mW; areas sum to 0.47 mm².
SOFTBRAIN_COMPONENTS: Dict[str, ComponentModel] = {
    "control_core": ComponentModel("control_core", 0.16, 15.0, 24.1),
    "cgra_network": ComponentModel("cgra_network", 0.12, 9.4, 21.8),
    "fus": ComponentModel("fus", 0.04, 4.9, 19.5),
    "stream_engines": ComponentModel("stream_engines", 0.02, 5.5, 12.8),
    "scratchpad": ComponentModel("scratchpad", 0.10, 0.8, 1.8),
    "vector_ports": ComponentModel("vector_ports", 0.03, 1.1, 2.5),
}


def softbrain_area_mm2(num_units: int = 1) -> float:
    """Total area of ``num_units`` Softbrain tiles at 55 nm."""
    return num_units * sum(c.area_mm2 for c in SOFTBRAIN_COMPONENTS.values())


def softbrain_peak_power_mw(num_units: int = 1) -> float:
    """Peak (activity = 1) power of ``num_units`` tiles."""
    return num_units * sum(c.peak_mw for c in SOFTBRAIN_COMPONENTS.values())


@dataclass
class PowerBreakdown:
    """Per-component power for one run, in mW (one Softbrain unit)."""

    component_mw: Dict[str, float]
    activity: Dict[str, float]

    @property
    def total_mw(self) -> float:
        return sum(self.component_mw.values())

    def energy_mj(self, cycles: int, freq_ghz: float = 1.0) -> float:
        """Energy in millijoules for a run of ``cycles`` at ``freq_ghz``."""
        seconds = cycles / (freq_ghz * 1e9)
        return self.total_mw * seconds  # mW * s == mJ

    def table(self) -> str:
        lines = [f"{'component':<16} {'activity':>8} {'power(mW)':>10}"]
        for name, mw in self.component_mw.items():
            lines.append(f"{name:<16} {self.activity[name]:>8.3f} {mw:>10.2f}")
        lines.append(f"{'TOTAL':<16} {'':>8} {self.total_mw:>10.2f}")
        return "\n".join(lines)


def activity_factors(result: RunResult, fabric: Fabric) -> Dict[str, float]:
    """Derive per-component activity factors from simulation statistics."""
    stats = result.stats
    cycles = max(1, stats.cycles)
    num_fus = max(1, fabric.num_fus)

    fu = stats.ops_executed / (cycles * num_fus)
    network = stats.cgra_utilization
    engines = sum(stats.engine_busy.values()) / (3.0 * cycles)
    mem_accesses = result.memory.stats.requests
    scratch_accesses = (
        result.scratchpad.stats.reads + result.scratchpad.stats.writes
    )
    scratch = scratch_accesses / cycles
    total_port_width = sum(p.width for p in fabric.input_ports) + sum(
        p.width for p in fabric.output_ports
    )
    # words moved per cycle, normalised by aggregate port bandwidth
    words_moved = stats.instances_fired * (
        sum(p.width for p in fabric.input_ports[:2]) or 1
    )
    ports = min(1.0, words_moved / (cycles * max(1, total_port_width // 2)))
    core = min(1.0, stats.control_instructions / cycles)
    return {
        "control_core": core,
        "cgra_network": min(1.0, network),
        "fus": min(1.0, fu),
        "stream_engines": min(1.0, engines),
        "scratchpad": min(1.0, scratch),
        "vector_ports": ports,
        "_memory_requests": min(1.0, mem_accesses / cycles),
    }


def estimate_power(
    result: RunResult,
    fabric: Fabric,
    activity_override: Optional[Mapping[str, float]] = None,
) -> PowerBreakdown:
    """Power of one Softbrain unit during a run.

    ``activity_override`` replaces measured activity factors (used to
    evaluate "max activity" design points like Table 3's column).
    """
    activity = dict(activity_factors(result, fabric))
    if activity_override:
        activity.update(activity_override)
    component_mw = {
        name: model.power_mw(activity.get(name, 0.0))
        for name, model in SOFTBRAIN_COMPONENTS.items()
    }
    return PowerBreakdown(component_mw, activity)


def max_activity_power_mw() -> Dict[str, float]:
    """Table 3's per-component power at maximum DNN activity factors."""
    return {name: model.peak_mw for name, model in SOFTBRAIN_COMPONENTS.items()}
