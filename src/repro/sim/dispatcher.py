"""Stream dispatcher: scoreboards, program-order port rules and barriers.

The dispatcher (Section 4.2) sits between the control core and the stream
engines.  It issues at most one command per cycle, in program order, once:

* every vector port the command uses is *free* (streams touching the same
  port must execute in program order),
* the target stream engine has a free stream-table entry, and
* no pending barrier forbids it.

Barriers block the head of the queue until their condition holds; other
already-issued streams keep running, which is how forward progress is
guaranteed.  ``SD_Barrier_All`` additionally stalls the control core while
it is anywhere in the queue.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Set, Tuple

from ..core.isa.commands import (
    Command,
    SDBarrierAll,
    SDBarrierScratchRd,
    SDBarrierScratchWr,
    SDConfig,
    is_barrier,
    port_uses,
)
from ..trace import TraceEvent
from .stats import CommandTrace

#: command-queue capacity between core and dispatcher
COMMAND_QUEUE_DEPTH = 16


class Dispatcher:
    """Issue logic with vector-port and stream-engine scoreboards.

    ``busy_ports`` is a counter per port rather than a set: the
    all-requests-in-flight optimisation (Section 4.2) lets a memory stream
    release its port for *issue* while its data is still in flight, so two
    streams can transiently own the same port — one draining, one issuing.
    """

    def __init__(self, sim: "SoftbrainSim") -> None:  # noqa: F821
        self.sim = sim
        self.queue: Deque[CommandTrace] = deque()
        self.busy_ports: Dict[Tuple[str, int], int] = {}
        self.issued_total = 0
        # Fast-path scan cache: a full scan that issued nothing is valid
        # until sim.dispatch_version changes (enqueue / port release /
        # stream completion / config apply).  "quiesce" verdicts also
        # depend on sim.quiesced(), which changes without a version bump,
        # so they re-check only that predicate per cycle.
        self._cache_version = -1
        self._cache_kind = ""  # "hard" | "quiesce"
        self._used_quiesce = False

    # -- core-facing interface ---------------------------------------------------

    def can_enqueue(self) -> bool:
        if len(self.queue) >= COMMAND_QUEUE_DEPTH:
            return False
        return not any(
            isinstance(t.command, SDBarrierAll) for t in self.queue
        )

    def enqueue(self, command: Command, cycle: int) -> Optional[CommandTrace]:
        """Enqueue ``command``; returns ``None`` when the queue is not
        ready this cycle (full, or an ``SD_Barrier_All`` is queued) — the
        core must hold the command and retry, exactly as the hardware
        stalls the issue stage."""
        if not self.can_enqueue():
            return None
        trace = self.sim.timeline.note_enqueue(command, cycle)
        self.queue.append(trace)
        self.sim.dispatch_version += 1
        sink = self.sim.trace
        if sink.enabled:
            sink.emit(TraceEvent(
                "command.enqueue", cycle, self.sim.unit, "dispatcher",
                {"index": trace.index, "command": trace.label,
                 "queue_depth": len(self.queue)},
            ))
        return trace

    @property
    def drained(self) -> bool:
        return not self.queue

    # -- issue logic ----------------------------------------------------------------

    def tick(self, cycle: int) -> bool:
        """Issue at most one command per cycle.

        The scan preserves the architecture's ordering rules: streams that
        touch the *same* port issue in program order, but a stream whose
        ports are free may issue past an earlier stalled stream on other
        ports (Section 4.2's scoreboard — without this, the paper's own
        Figure 6 command sequence would deadlock on the reset-constant /
        clean pair).  Barriers order everything behind them.
        """
        if not self.queue:
            return False
        if self.sim.config_pending:
            return False  # reconfiguration in flight orders everything

        use_cache = self.sim.fast_path_on
        if use_cache and self._cache_version == self.sim.dispatch_version:
            # Nothing the scan depends on changed since it last came up
            # empty; "quiesce" verdicts must still watch the one predicate
            # that moves without a version bump.
            if self._cache_kind == "hard" or not self.sim.quiesced():
                return False

        self._used_quiesce = False
        blocked: Set[Tuple[str, int]] = set()
        for position, trace in enumerate(self.queue):
            command = trace.command

            if is_barrier(command):
                sink = self.sim.trace
                if position == 0 and self._barrier_met(command):
                    self.queue.popleft()
                    trace.dispatched = cycle
                    trace.completed = cycle
                    if sink.enabled:
                        self._trace_barrier_release(sink, trace, cycle)
                    return True
                if sink.enabled and position == 0:
                    sink.emit(TraceEvent(
                        "barrier.wait", cycle, self.sim.unit, "dispatcher",
                        {"index": trace.index, "command": trace.label},
                    ))
                return self._blocked()  # nothing may pass a pending barrier

            if isinstance(command, SDConfig) and not self._resources_free(command):
                return self._blocked()  # nothing passes a reconfiguration

            ports = {
                (p.kind, p.port_id, role) for p, role in port_uses(command)
            }
            if ports & blocked:
                blocked |= ports  # later same-port streams must also wait
                continue
            if not self._resources_free(command):
                blocked |= ports
                continue
            blocked |= ports  # even if issued, later same-port cmds wait

            del self.queue[position]
            trace.dispatched = cycle
            for key in ports:
                self.busy_ports[key] = self.busy_ports.get(key, 0) + 1
            sink = self.sim.trace
            if sink.enabled:
                sink.emit(TraceEvent(
                    "command.dispatch", cycle, self.sim.unit, "dispatcher",
                    {"index": trace.index, "command": trace.label,
                     "engine": command.engine,
                     "wait_cycles": cycle - trace.enqueued},
                ))
            self.sim.issue_to_engine(command, trace)
            self.issued_total += 1
            self.sim.stats.commands_issued += 1
            return True
        return self._blocked()

    def _blocked(self) -> bool:
        """Record that a full scan issued nothing (fast-path cache)."""
        if self.sim.fast_path_on:
            self._cache_version = self.sim.dispatch_version
            self._cache_kind = "quiesce" if self._used_quiesce else "hard"
        return False

    def _trace_barrier_release(self, sink, trace: CommandTrace,
                               cycle: int) -> None:
        """Barriers dispatch and complete in the same cycle — emit both
        lifetime events so every timeline index appears in the trace."""
        common = {"index": trace.index, "command": trace.label,
                  "engine": "barrier"}
        sink.emit(TraceEvent(
            "command.dispatch", cycle, self.sim.unit, "dispatcher",
            dict(common, wait_cycles=cycle - trace.enqueued),
        ))
        sink.emit(TraceEvent(
            "command.complete", cycle, self.sim.unit, "dispatcher",
            dict(common, latency=0),
        ))

    def _resources_free(self, command: Command) -> bool:
        engine = self.sim.engines[command.engine]
        if not engine.has_free_slot():
            return False
        for port, role in port_uses(command):
            if self.busy_ports.get((port.kind, port.port_id, role), 0):
                return False
        if isinstance(command, SDConfig):
            # Reconfiguration must wait until the whole unit quiesces: the
            # port mapping and datapath are about to change.
            self._used_quiesce = True
            return self.sim.quiesced()
        return True

    def _barrier_met(self, command: Command) -> bool:
        if isinstance(command, SDBarrierScratchRd):
            return self.sim.outstanding["scratch_rd"] == 0
        if isinstance(command, SDBarrierScratchWr):
            return self.sim.outstanding["scratch_wr"] == 0
        assert isinstance(command, SDBarrierAll)
        self._used_quiesce = True
        return self.sim.quiesced()

    # -- completion callbacks ---------------------------------------------------------

    def release_port(self, kind: str, port_id: int, role: str) -> None:
        self.sim.dispatch_version += 1
        key = (kind, port_id, role)
        count = self.busy_ports.get(key, 0)
        if count <= 1:
            self.busy_ports.pop(key, None)
        else:
            self.busy_ports[key] = count - 1
