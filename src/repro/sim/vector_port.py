"""Vector-port runtime state: the FIFOs between stream engines and CGRA.

Each hardware vector port is a 512-bit-wide FIFO (Section 4.4).  We model
it as a word FIFO with *reservation*: a stream engine reserves space when it
issues a memory request so that in-flight data always has a landing slot
(the paper's backpressure contract — "a buffer is allocated on a request to
memory to ensure space exists").
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List

from ..cgra.fabric import HwVectorPort
from .errors import PortRuntimeError

__all__ = ["PortRuntimeError", "VectorPortState"]


class VectorPortState:
    """Runtime FIFO for one hardware vector port.

    Words enter via :meth:`push` (after :meth:`reserve`), leave via
    :meth:`pop_words`.  ``in_flight`` counts reserved-but-unarrived words so
    producers never overrun the FIFO.
    """

    def __init__(self, spec: HwVectorPort) -> None:
        self.spec = spec
        self.fifo: Deque[int] = deque()
        self.reserved = 0
        self.total_pushed = 0
        self.total_popped = 0

    @property
    def capacity_words(self) -> int:
        return self.spec.capacity_words

    @property
    def occupancy(self) -> int:
        return len(self.fifo)

    @property
    def free_words(self) -> int:
        return self.capacity_words - len(self.fifo) - self.reserved

    def reserve(self, nwords: int) -> None:
        if nwords > self.free_words:
            raise PortRuntimeError(
                f"port {self.spec.direction}{self.spec.port_id}: reserve "
                f"{nwords} > free {self.free_words}"
            )
        self.reserved += nwords

    def push(self, words: List[int], reserved: bool = True) -> None:
        if reserved:
            if len(words) > self.reserved:
                raise PortRuntimeError(
                    f"port {self.spec.direction}{self.spec.port_id}: push "
                    f"{len(words)} exceeds reservation {self.reserved}"
                )
            self.reserved -= len(words)
        elif len(words) > self.free_words:
            raise PortRuntimeError(
                f"port {self.spec.direction}{self.spec.port_id}: push "
                f"{len(words)} > free {self.free_words}"
            )
        self.fifo.extend(words)
        self.total_pushed += len(words)

    def can_pop(self, nwords: int) -> bool:
        return len(self.fifo) >= nwords

    def pop_words(self, nwords: int) -> List[int]:
        fifo = self.fifo
        if len(fifo) < nwords:
            raise PortRuntimeError(
                f"port {self.spec.direction}{self.spec.port_id}: pop "
                f"{nwords} > occupancy {len(fifo)}"
            )
        self.total_popped += nwords
        if nwords == len(fifo):  # common full-drain case: one bulk copy
            words = list(fifo)
            fifo.clear()
            return words
        popleft = fifo.popleft
        return [popleft() for _ in range(nwords)]

    def __repr__(self) -> str:
        return (
            f"VectorPortState({self.spec.direction}{self.spec.port_id}, "
            f"occ={self.occupancy}/{self.capacity_words}, "
            f"reserved={self.reserved})"
        )
