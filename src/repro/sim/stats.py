"""Simulation statistics and the command-lifetime timeline.

The timeline records, for every stream command, the cycles at which it was
*enqueued* by the control core, *dispatched* to a stream engine, and
*completed* — the three events the paper's execution-model figures (4 and 6)
visualise.  :func:`render_timeline` reproduces those figures as ASCII.

This module is the *aggregate* accounting; the structured per-event record
lives in :mod:`repro.trace`.  The two are bridged in both directions: the
``command.enqueue`` / ``command.dispatch`` / ``command.complete`` trace
events carry exactly the cycles a :class:`CommandTrace` stores, and a
:class:`SimStats` can be reconstructed from a recorded event stream with
:meth:`SimStats.from_events` (each counter here has a one-to-one emitting
event kind: ``engine.busy`` for :attr:`SimStats.engine_busy`,
``cgra.fire`` for :attr:`SimStats.instances_fired` /
:attr:`SimStats.ops_executed` / :attr:`SimStats.fu_activity`,
``cgra.stall`` for the two stall counters, ``command.dispatch`` for
:attr:`SimStats.commands_issued` and ``config.apply`` for
:attr:`SimStats.config_loads`).  The exactness of that correspondence is
enforced by :meth:`repro.trace.MetricsRegistry.reconcile`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..core.isa.commands import Command


@dataclass
class CommandTrace:
    """Lifetime of one command through the dispatcher.

    ``index`` is the stable per-run timeline position — the same value the
    ``index`` field of the :class:`repro.trace.TraceEvent` lifetime events
    (``command.enqueue`` / ``command.dispatch`` / ``command.complete``)
    carries, so ASCII timelines and exported traces can be joined on it.
    """

    index: int
    command: Command
    enqueued: int
    dispatched: Optional[int] = None
    completed: Optional[int] = None

    @property
    def label(self) -> str:
        return type(self.command).__name__.replace("SD", "SD_")


@dataclass
class SimStats:
    """Aggregate counters produced by one Softbrain simulation.

    Every counter except :attr:`cycles` and
    :attr:`control_instructions` is incremented at a program point that
    also emits a :class:`repro.trace.TraceEvent` (see the module
    docstring for the counter ↔ event-kind table), which is what makes
    :meth:`from_events` exact and lets
    :meth:`repro.trace.MetricsRegistry.reconcile` cross-check the two.
    """

    cycles: int = 0
    instances_fired: int = 0
    ops_executed: int = 0
    fu_activity: Dict[str, int] = field(default_factory=dict)
    engine_busy: Dict[str, int] = field(default_factory=dict)
    commands_issued: int = 0
    control_instructions: int = 0
    config_loads: int = 0
    cgra_stall_no_input: int = 0
    cgra_stall_no_output_room: int = 0

    def note_firing(self, ops: int, fu_ops: Dict[str, int]) -> None:
        self.instances_fired += 1
        self.ops_executed += ops
        for fu_name, count in fu_ops.items():
            self.fu_activity[fu_name] = self.fu_activity.get(fu_name, 0) + count

    def note_engine_busy(self, engine: str) -> None:
        self.engine_busy[engine] = self.engine_busy.get(engine, 0) + 1

    def note_engine_busy_bulk(self, engine: str, cycles: int) -> None:
        """Account ``cycles`` busy cycles at once (fast-path bursts: the
        slow path would have called :meth:`note_engine_busy` once per
        covered cycle, so the counters stay bit-identical)."""
        self.engine_busy[engine] = self.engine_busy.get(engine, 0) + cycles

    @property
    def ops_per_cycle(self) -> float:
        return self.ops_executed / self.cycles if self.cycles else 0.0

    @property
    def cgra_utilization(self) -> float:
        """Fraction of cycles with a new instance entering the pipeline."""
        return self.instances_fired / self.cycles if self.cycles else 0.0

    def to_dict(self) -> Dict[str, object]:
        """All counters plus derived rates, as JSON-serialisable data."""
        return {
            "cycles": self.cycles,
            "instances_fired": self.instances_fired,
            "ops_executed": self.ops_executed,
            "fu_activity": dict(self.fu_activity),
            "engine_busy": dict(self.engine_busy),
            "commands_issued": self.commands_issued,
            "control_instructions": self.control_instructions,
            "config_loads": self.config_loads,
            "cgra_stall_no_input": self.cgra_stall_no_input,
            "cgra_stall_no_output_room": self.cgra_stall_no_output_room,
            "ops_per_cycle": self.ops_per_cycle,
            "cgra_utilization": self.cgra_utilization,
        }

    @classmethod
    def from_events(cls, events: Iterable) -> "SimStats":
        """Rebuild the event-derivable counters from a recorded trace.

        Takes any iterable of :class:`repro.trace.TraceEvent`.  All
        counters with an emitting event kind are reconstructed exactly;
        :attr:`cycles` becomes the last event cycle + 1 (a lower bound on
        the true cycle count — drain-only tail cycles emit no events) and
        :attr:`control_instructions` stays 0 (the control core's
        per-instruction progress is deliberately untraced).
        """
        stats = cls()
        for event in events:
            kind = event.kind
            if kind == "engine.busy":
                stats.note_engine_busy(event.component)
            elif kind == "cgra.fire":
                stats.note_firing(event.data["ops"], event.data["fu"])
            elif kind == "cgra.stall":
                if event.data["cause"] == "no_input":
                    stats.cgra_stall_no_input += 1
                else:
                    stats.cgra_stall_no_output_room += 1
            elif kind == "command.dispatch":
                if event.data["engine"] != "barrier":
                    stats.commands_issued += 1
            elif kind == "config.apply":
                stats.config_loads += 1
            if event.cycle >= stats.cycles:
                stats.cycles = event.cycle + 1
        return stats


class Timeline:
    """Ordered command-lifetime records for one simulation."""

    def __init__(self) -> None:
        self.traces: List[CommandTrace] = []

    def note_enqueue(self, command: Command, cycle: int) -> CommandTrace:
        trace = CommandTrace(len(self.traces), command, cycle)
        self.traces.append(trace)
        return trace

    def __iter__(self):
        return iter(self.traces)

    def __len__(self) -> int:
        return len(self.traces)


def render_timeline(timeline: Timeline, width: int = 72) -> str:
    """ASCII rendering in the style of the paper's Figures 4(b) and 6.

    Each command gets a row: ``.`` idle, ``q`` enqueued-waiting, ``=``
    in-flight (dispatched, resource active), ``#`` completion cycle.
    """
    if not timeline.traces:
        return "(empty timeline)"
    horizon = max(t.completed or t.enqueued for t in timeline.traces) + 1
    scale = max(1, (horizon + width - 1) // width)
    cols = (horizon + scale - 1) // scale

    def col(cycle: int) -> int:
        return min(cols - 1, cycle // scale)

    lines = [f"cycles 0..{horizon - 1}  ({scale} cycles/char)"]
    for trace in timeline.traces:
        row = ["."] * cols
        end = trace.completed if trace.completed is not None else horizon - 1
        start = trace.dispatched if trace.dispatched is not None else end
        for c in range(col(trace.enqueued), col(start)):
            row[c] = "q"
        for c in range(col(start), col(end) + 1):
            row[c] = "="
        if trace.completed is not None:
            row[col(trace.completed)] = "#"
        label = f"C{trace.index:<3} {trace.label:<22}"
        lines.append(f"{label} |{''.join(row)}|")
    return "\n".join(lines)
