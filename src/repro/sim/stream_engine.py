"""Stream engines: concurrent executors of stream commands (Section 4.3).

Four engines mirror the paper's microarchitecture:

* :class:`MemReadEngine` — memory -> ports/scratchpad, config loads and
  indirect gathers; contains the *balance unit* that de-prioritises
  heavily-unbalanced vector ports to avoid deadlock (Section 4.5).
* :class:`MemWriteEngine` — ports -> memory, including indirect scatter.
* :class:`ScratchEngine` — the scratchpad's one read + one write port.
* :class:`RecurrenceEngine` — port-to-port recurrences, constants, cleans.

Each engine owns a small *stream table* of active streams; per cycle it
selects one ready stream per resource (a stream-request-pipeline slot) and
advances it by at most one line request / eight words.

Data convention: one stream element always occupies one 64-bit word at a
vector port.  ``elem_bytes < 8`` means narrow memory traffic (zero-extended
on load, truncated on store); packed sub-word SIMD data (e.g. 16-bit DNN
arrays) should be streamed with ``elem_bytes=8`` so each word carries four
16-bit lanes, exactly as the hardware's 512-bit buses do.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Iterator, List, Optional, Tuple

from ..core.isa.commands import (
    Command,
    PortRef,
    SDCleanPort,
    SDConfig,
    SDConstPort,
    SDIndPortMem,
    SDIndPortPort,
    SDMemPort,
    SDMemScratch,
    SDPortMem,
    SDPortPort,
    SDPortScratch,
    SDScratchPort,
    port_uses,
)
from ..core.isa.patterns import LINE_BYTES, LineRequest, affine_requests
from ..trace import TraceEvent
from .errors import StreamTableError
from .stats import CommandTrace
from .vector_port import VectorPortState

#: max words an engine moves between ports per cycle (512-bit bus)
WORDS_PER_CYCLE = 8
#: scratchpad SRAM read latency, cycles
SCRATCH_READ_LATENCY = 2


@dataclass
class ActiveStream:
    """One stream-table entry."""

    command: Command
    trace: CommandTrace
    requests: Optional[Iterator[LineRequest]] = None
    next_request: Optional[LineRequest] = None
    elements_left: int = 0
    elements_done: int = 0
    #: in-order delivery queue: (ready_cycle, words, dest or None)
    pending: Deque[Tuple[int, List[int], Optional[VectorPortState]]] = field(
        default_factory=deque
    )
    issued_all: bool = False
    #: ports already released to the dispatcher (all-requests-in-flight)
    early_released: bool = False

    def advance_request(self) -> None:
        """Pop the next line request from the pattern iterator."""
        assert self.requests is not None
        try:
            self.next_request = next(self.requests)
        except StopIteration:
            self.next_request = None
            self.issued_all = True


class StreamEngineBase:
    """Common stream-table behaviour; subclasses implement ``tick``."""

    name = "engine"

    def __init__(self, sim: "SoftbrainSim", table_size: int = 8) -> None:  # noqa: F821
        self.sim = sim
        self.table_size = table_size
        self.streams: List[ActiveStream] = []
        self._rr = 0  # round-robin pointer for fair selection
        # Fast-path burst window (docs/PERFORMANCE.md): while
        # ``cycle < _burst_until`` the engine has already pre-issued the
        # slow path's one-request-per-cycle work for ``_burst`` and is
        # "virtually busy".  ``_burst_final`` defers the issued_all flip
        # to the window's last cycle so early port release timing matches
        # the slow path exactly.
        self._burst: Optional[ActiveStream] = None
        self._burst_until = 0
        self._burst_final = False

    def has_free_slot(self) -> bool:
        return len(self.streams) < self.table_size

    def accept(self, command: Command, trace: CommandTrace) -> None:
        if not self.has_free_slot():
            raise StreamTableError(f"{self.name}: stream table full")
        self.streams.append(self._make_stream(command, trace))

    def _make_stream(self, command: Command, trace: CommandTrace) -> ActiveStream:
        return ActiveStream(command, trace)

    def idle(self) -> bool:
        return not self.streams

    def _retire(self, stream: ActiveStream, cycle: int) -> None:
        self.streams.remove(stream)
        self.sim.stream_completed(stream, cycle)

    def _note_busy(self, cycle: int, stream: ActiveStream) -> None:
        """Account one busy cycle (stats counter + the trace's
        ``engine.busy`` / ``stream.issue`` pair — kept in lock-step so the
        two accountings reconcile exactly)."""
        self.sim.stats.note_engine_busy(self.name)
        sink = self.sim.trace
        if sink.enabled:
            unit = self.sim.unit
            sink.emit(TraceEvent("engine.busy", cycle, unit, self.name, {}))
            sink.emit(TraceEvent(
                "stream.issue", cycle, unit, self.name,
                {"index": stream.trace.index, "command": stream.trace.label},
            ))

    def _fault_stalled(self, cycle: int) -> bool:
        """True while an injected ``engine.stall`` fault freezes this
        engine; schedules a wake-up so fast-forward still works."""
        injector = self.sim.faults
        if injector is None or cycle < injector.engine_stall_at:
            return False
        until = injector.engine_stall_until(self.name, cycle)
        if until > cycle:
            self.sim.schedule(until, None)
            return True
        return False

    def _drain_pending(self, stream: ActiveStream, cycle: int) -> bool:
        """Push in-order deliveries whose data has arrived.  True if any.

        Arrived data waits in the engine's request buffer until the
        destination port has room (the paper's "buffering for outstanding
        requests"), decoupling port depth from memory latency.
        """
        progressed = False
        injector = self.sim.faults
        while stream.pending and stream.pending[0][0] <= cycle:
            ready_at, words, dest = stream.pending[0]
            if dest is not None:
                if (injector is not None and words
                        and cycle >= injector.port_drop_at):
                    port_name = (f"{dest.spec.direction}"
                                 f"{dest.spec.port_id}")
                    dropped = injector.drop_port_words(
                        cycle, port_name, words)
                    if dropped is not words:
                        # persist the loss: the retried delivery must not
                        # resurrect the dropped word
                        words = dropped
                        stream.pending[0] = (ready_at, words, dest)
                if dest.free_words < len(words):
                    break
                dest.push(words, reserved=False)
                sink = self.sim.trace
                if sink.enabled and words:
                    sink.emit(TraceEvent(
                        "stream.drain", cycle, self.sim.unit, self.name,
                        {
                            "index": stream.trace.index,
                            "command": stream.trace.label,
                            "port": f"{dest.spec.direction}"
                                    f"{dest.spec.port_id}",
                            "words": len(words),
                        },
                    ))
            stream.pending.popleft()
            progressed = True
        return progressed

    def _pending_lines(self) -> int:
        """Outstanding request-buffer entries across this engine's streams."""
        return sum(len(s.pending) for s in self.streams)

    def _maybe_early_release(self, stream: ActiveStream) -> None:
        """All-requests-in-flight (Section 4.2): once every request of a
        stream is in the memory system, release its ports for issue so the
        next same-port stream can overlap its requests with this stream's
        remaining deliveries."""
        if not self.sim.params.all_requests_in_flight:
            return
        if stream.issued_all and not stream.early_released:
            stream.early_released = True
            for port, role in port_uses(stream.command):
                self.sim.dispatcher.release_port(port.kind, port.port_id, role)

    def _delivery_owners(self) -> dict:
        """Earliest stream per written port — only it may deliver,
        preserving program order across overlapped same-port streams."""
        owners: dict = {}
        for stream in self.streams:
            for port, role in port_uses(stream.command):
                if role != "w":
                    continue
                key = (port.kind, port.port_id)
                if key not in owners:
                    owners[key] = stream
        return owners

    def _may_deliver(self, owners: dict, stream: ActiveStream) -> bool:
        return all(
            owners[(p.kind, p.port_id)] is stream
            for p, role in port_uses(stream.command)
            if role == "w"
        )

    def _burst_catchup(self, cycle: int) -> None:
        """Close a burst window whose tail was fast-forwarded over.

        Only reachable after a quiet skip (core finished, dispatcher
        empty, no other engine active), so flipping ``issued_all`` before
        this cycle's scan instead of at the window's last cycle is
        unobservable: no consumer of the released ports can exist.
        """
        stream = self._burst
        if stream is not None and cycle >= self._burst_until:
            if self._burst_final:
                stream.issued_all = True
            self._burst = None

    def _burst_virtual(self, cycle: int, progressed: bool) -> Optional[bool]:
        """Handle one in-window cycle; None when no window is active.

        Mirrors the slow path's behaviour on this cycle: the engine is
        busy issuing (already accounted at burst time), and on the
        window's last cycle the final ``advance_request`` would have
        exhausted the pattern.  Returns False — allowing the main loop to
        fast-forward — only when the skip is provably invisible.
        """
        stream = self._burst
        if stream is None:
            return None
        if cycle >= self._burst_until - 1:
            if self._burst_final:
                stream.issued_all = True
            self._burst = None
        if progressed:
            return True
        return not self.sim.quiet_for_burst(self)

    def _burst_open(self, stream: ActiveStream, cycle: int, count: int) -> None:
        """Account and arm a ``count``-cycle burst window starting now."""
        # advance_request flips issued_all the moment the pattern
        # exhausts; the slow path would only do that on the window's last
        # cycle, so defer the flip until then.
        final = stream.issued_all
        if final:
            stream.issued_all = False
        self.sim.stats.note_engine_busy_bulk(self.name, count)
        self.sim.memory.reserve_window(cycle + count)
        self._burst = stream
        self._burst_until = cycle + count
        self._burst_final = final
        if count == 1:  # the window is this very cycle; close it now
            if final:
                stream.issued_all = True
            self._burst = None

    def _rotate(self, candidates: List[ActiveStream]) -> List[ActiveStream]:
        """Round-robin rotation for fair stream selection."""
        if not candidates:
            return candidates
        self._rr = (self._rr + 1) % len(candidates)
        return candidates[self._rr :] + candidates[: self._rr]

    def tick(self, cycle: int) -> bool:
        raise NotImplementedError


# ---------------------------------------------------------------------------
# Memory read engine (+ balance unit, config loads, indirect gather)
# ---------------------------------------------------------------------------

class MemReadEngine(StreamEngineBase):
    name = "mse_read"

    #: outstanding-request buffer capacity (64-byte entries)
    BUFFER_LINES = 32

    def _make_stream(self, command: Command, trace: CommandTrace) -> ActiveStream:
        stream = ActiveStream(command, trace)
        if isinstance(command, SDMemPort):
            stream.requests = affine_requests(command.pattern)
            stream.advance_request()
        elif isinstance(command, SDMemScratch):
            stream.requests = affine_requests(command.pattern)
            stream.advance_request()
        elif isinstance(command, SDIndPortPort):
            stream.elements_left = command.num_elements
        elif isinstance(command, SDConfig):
            stream.elements_left = 1
        else:
            raise TypeError(f"{self.name} cannot run {type(command).__name__}")
        return stream

    def _balance_score(self, stream: ActiveStream) -> int:
        """Balance unit: fewest queued+in-flight words at the target first."""
        command = stream.command
        dest: Optional[PortRef]
        if isinstance(command, (SDMemPort, SDIndPortPort)):
            dest = command.dest
        else:
            return 0  # scratch/config streams have no port to unbalance
        port = self.sim.port_state(dest)
        return port.occupancy + port.reserved

    def tick(self, cycle: int) -> bool:
        if self._fault_stalled(cycle):
            return False
        self._burst_catchup(cycle)
        progressed = False
        owners = self._delivery_owners()
        for stream in list(self.streams):
            if self._may_deliver(owners, stream) and self._drain_pending(
                stream, cycle
            ):
                progressed = True
            if stream.issued_all and not stream.pending:
                self._retire(stream, cycle)
                progressed = True
            else:
                self._maybe_early_release(stream)

        virtual = self._burst_virtual(cycle, progressed)
        if virtual is not None:
            return virtual
        if not self.sim.memory.can_accept(cycle):
            return progressed

        ready = [s for s in self.streams if self._can_issue(s)]
        if not ready:
            return progressed
        if self.sim.params.balance_unit:
            ready.sort(key=self._balance_score)
        else:
            ready = self._rotate(ready)
        if self._try_burst(ready[0], cycle):
            return True
        self._issue(ready[0], cycle)
        self._note_busy(cycle, ready[0])
        return True

    def _try_burst(self, stream: ActiveStream, cycle: int) -> bool:
        """Fast path: pre-issue a whole affine burst in one step.

        Legal only when the slow path would provably issue one request of
        this stream on every covered cycle and nothing else can observe
        the difference; see docs/PERFORMANCE.md for the eligibility rules.
        """
        sim = self.sim
        if not sim.fast_path_on or len(self.streams) != 1:
            return False
        command = stream.command
        if not isinstance(command, (SDMemPort, SDMemScratch)):
            return False
        memory = sim.memory
        timing = memory.params
        if (
            memory.units_attached > 1  # shared interface: competing units
            or timing.l2_hit_latency < 1
            or timing.dram_latency < 1  # zero-latency data could drain early
            # pending write-stream data would be a read-after-write hazard
            # against our pre-read of the backing store
            or sim.engines["mse_write"].streams
            or not sim.dispatch_frozen_for(("mse_read", "mse_write"))
        ):
            return False
        cap = self.BUFFER_LINES - len(stream.pending)
        if cap <= 1:
            return False
        pending = stream.pending
        schedule = sim.schedule
        store = memory.store
        count = 0
        if isinstance(command, SDMemPort):
            port = sim.port_state(command.dest)
            signed = command.pattern.signed
            while count < cap:
                request = stream.next_request
                if request is None:
                    break
                ready_at = memory.issue(
                    cycle + count, request.line_addr, False, request.bytes_used
                )
                words = store.read_elements(
                    request.element_addrs, request.elem_bytes, signed
                )
                pending.append((ready_at, words, port))
                schedule(ready_at, None)
                stream.advance_request()
                count += 1
        else:
            scratchpad = sim.scratchpad
            while count < cap:
                request = stream.next_request
                if request is None:
                    break
                ready_at = memory.issue(
                    cycle + count, request.line_addr, False, request.bytes_used
                )
                data = b"".join(
                    store.read(addr, request.elem_bytes)
                    for addr in request.element_addrs
                )
                base = (command.scratch_addr
                        + stream.elements_done * request.elem_bytes)
                stream.elements_done += request.num_elements
                schedule(
                    ready_at,
                    lambda base=base, data=data: scratchpad.write(base, data),
                )
                pending.append((ready_at, [], None))
                stream.advance_request()
                count += 1
        if count == 0:
            return False
        self._burst_open(stream, cycle, count)
        return True

    def _can_issue(self, stream: ActiveStream) -> bool:
        command = stream.command
        if self._pending_lines() >= self.BUFFER_LINES:
            return False
        if isinstance(command, (SDMemPort, SDMemScratch)):
            return stream.next_request is not None
        if isinstance(command, SDIndPortPort):
            if stream.elements_left <= 0:
                return False
            index_port = self.sim.port_state(command.index_port)
            return index_port.occupancy > 0
        if isinstance(command, SDConfig):
            return stream.elements_left > 0
        return False

    def _issue(self, stream: ActiveStream, cycle: int) -> None:
        command = stream.command
        memory = self.sim.memory
        if isinstance(command, SDMemPort):
            request = stream.next_request
            assert request is not None
            port = self.sim.port_state(command.dest)
            ready = memory.issue(cycle, request.line_addr, False, request.bytes_used)
            signed = command.pattern.signed
            words = [
                memory.store.read_extended(addr, request.elem_bytes, signed)
                for addr in request.element_addrs
            ]
            injector = self.sim.faults
            if injector is not None and cycle >= injector.mem_corrupt_at:
                words = injector.corrupt_read(cycle, words)
            stream.pending.append((ready, words, port))
            self.sim.schedule(ready, None)
            stream.advance_request()
        elif isinstance(command, SDMemScratch):
            request = stream.next_request
            assert request is not None
            ready = memory.issue(cycle, request.line_addr, False, request.bytes_used)
            data = b"".join(
                memory.store.read(addr, request.elem_bytes)
                for addr in request.element_addrs
            )
            base = command.scratch_addr + stream.elements_done * request.elem_bytes
            stream.elements_done += request.num_elements
            scratchpad = self.sim.scratchpad
            self.sim.schedule(ready, lambda: scratchpad.write(base, data))
            stream.pending.append((ready, [], None))
            stream.advance_request()
        elif isinstance(command, SDIndPortPort):
            index_port = self.sim.port_state(command.index_port)
            dest = self.sim.port_state(command.dest)
            # Indirect AGU: coalesce up to 4 increasing same-line addresses.
            addrs: List[int] = []
            limit = min(4, index_port.occupancy, stream.elements_left)
            line = None
            while len(addrs) < limit and index_port.occupancy:
                index = index_port.fifo[0]
                addr = command.offset_addr + index * command.index_scale
                addr_line = (addr // LINE_BYTES) * LINE_BYTES
                if line is None:
                    line = addr_line
                elif addr_line != line or addr < addrs[-1]:
                    break
                addrs.append(addr)
                index_port.pop_words(1)
            assert addrs and line is not None
            ready = memory.issue(
                cycle, line, False, len(addrs) * command.elem_bytes
            )
            words = [
                memory.store.read_extended(addr, command.elem_bytes, command.signed)
                for addr in addrs
            ]
            injector = self.sim.faults
            if injector is not None and cycle >= injector.mem_corrupt_at:
                words = injector.corrupt_read(cycle, words)
            stream.pending.append((ready, words, dest))
            self.sim.schedule(ready, None)
            stream.elements_left -= len(addrs)
            if stream.elements_left == 0:
                stream.issued_all = True
        elif isinstance(command, SDConfig):
            lines = (command.size + LINE_BYTES - 1) // LINE_BYTES
            ready = memory.issue(cycle, command.address, False, command.size)
            done = ready + max(0, lines - 1)
            self.sim.schedule(done, lambda: self.sim.apply_config(command.address))
            stream.pending.append((done, [], None))
            stream.elements_left = 0
            stream.issued_all = True
            self.sim.stats.config_loads += 1

# ---------------------------------------------------------------------------
# Memory write engine
# ---------------------------------------------------------------------------

class MemWriteEngine(StreamEngineBase):
    name = "mse_write"

    def _make_stream(self, command: Command, trace: CommandTrace) -> ActiveStream:
        stream = ActiveStream(command, trace)
        if isinstance(command, SDPortMem):
            stream.requests = affine_requests(command.pattern)
            stream.advance_request()
        elif isinstance(command, SDIndPortMem):
            stream.elements_left = command.num_elements
        else:
            raise TypeError(f"{self.name} cannot run {type(command).__name__}")
        return stream

    def tick(self, cycle: int) -> bool:
        if self._fault_stalled(cycle):
            return False
        self._burst_catchup(cycle)
        progressed = False
        for stream in list(self.streams):
            if self._drain_pending(stream, cycle):
                progressed = True
            if stream.issued_all and not stream.pending:
                self._retire(stream, cycle)
                progressed = True
            else:
                self._maybe_early_release(stream)

        virtual = self._burst_virtual(cycle, progressed)
        if virtual is not None:
            return virtual
        if not self.sim.memory.can_accept(cycle):
            return progressed

        ready = [s for s in self.streams if self._can_issue(s)]
        if not ready:
            return progressed
        chosen = self._rotate(ready)[0]
        if self._try_burst(chosen, cycle):
            return True
        self._issue(chosen, cycle)
        self._note_busy(cycle, chosen)
        return True

    #: burst window bound; port capacities are far smaller in practice
    BURST_LINES = 32

    def _try_burst(self, stream: ActiveStream, cycle: int) -> bool:
        """Fast path: drain a whole affine store burst in one step.

        Stricter than the read burst: popping source-port words early is
        only invisible while the CGRA is input-starved (its can_fire
        checks inputs before output room) and nothing can feed it — so
        every other engine must be empty and the dispatcher frozen.  See
        docs/PERFORMANCE.md.
        """
        sim = self.sim
        if not sim.fast_path_on or len(self.streams) != 1:
            return False
        command = stream.command
        if not isinstance(command, SDPortMem):
            return False
        memory = sim.memory
        timing = memory.params
        if (
            memory.units_attached > 1
            or timing.l2_hit_latency < 1
            or timing.dram_latency < 1
        ):
            return False
        for engine in sim._engine_list:
            if engine is not self and engine.streams:
                return False
        if not sim.dispatch_frozen_for(
            ("mse_read", "mse_write", "sse", "rse")
        ):
            return False
        cgra = sim.cgra
        if cgra is not None:
            if not cgra.inputs:
                return False
            if all(
                port.occupancy >= width for _, width, port in cgra.inputs
            ):
                return False  # could fire: output room must stay exact
        source = sim.port_state(command.source)
        # Prefix of requests fully covered by words already at the port —
        # the slow path would certainly issue one per cycle (deliveries
        # only ever add words behind them).
        occupancy = source.occupancy
        requests: List[LineRequest] = []
        total = 0
        while len(requests) < self.BURST_LINES:
            request = stream.next_request
            if request is None or total + request.num_elements > occupancy:
                break
            requests.append(request)
            total += request.num_elements
            stream.advance_request()
        if not requests:
            return False
        words_all = source.pop_words(total)
        store = memory.store
        position = 0
        for count, request in enumerate(requests):
            words = words_all[position:position + request.num_elements]
            position += request.num_elements
            ready_at = memory.issue(
                cycle + count, request.line_addr, True, request.bytes_used
            )
            writes = list(zip(request.element_addrs, words))
            elem_bytes = request.elem_bytes

            def apply(writes=writes, elem_bytes=elem_bytes) -> None:
                for addr, word in writes:
                    store.write_word(addr, word, elem_bytes)

            sim.schedule(ready_at, apply)
            stream.pending.append((ready_at, [], None))
        self._burst_open(stream, cycle, len(requests))
        return True

    def _can_issue(self, stream: ActiveStream) -> bool:
        command = stream.command
        if isinstance(command, SDPortMem):
            request = stream.next_request
            if request is None:
                return False
            source = self.sim.port_state(command.source)
            return source.occupancy >= request.num_elements
        if isinstance(command, SDIndPortMem):
            if stream.elements_left <= 0:
                return False
            index_port = self.sim.port_state(command.index_port)
            source = self.sim.port_state(command.source)
            return index_port.occupancy >= 1 and source.occupancy >= 1
        return False

    def _issue(self, stream: ActiveStream, cycle: int) -> None:
        command = stream.command
        memory = self.sim.memory
        if isinstance(command, SDPortMem):
            request = stream.next_request
            assert request is not None
            source = self.sim.port_state(command.source)
            words = source.pop_words(request.num_elements)
            ready = memory.issue(cycle, request.line_addr, True, request.bytes_used)
            writes = list(zip(request.element_addrs, words))
            elem_bytes = request.elem_bytes

            def apply(writes=writes, elem_bytes=elem_bytes) -> None:
                for addr, word in writes:
                    memory.store.write_word(addr, word, elem_bytes)

            self.sim.schedule(ready, apply)
            stream.pending.append((ready, [], None))
            stream.advance_request()
        else:
            assert isinstance(command, SDIndPortMem)
            index_port = self.sim.port_state(command.index_port)
            source = self.sim.port_state(command.source)
            count = min(
                4, index_port.occupancy, source.occupancy, stream.elements_left
            )
            # Coalesce same-line increasing addresses like the indirect AGU.
            addrs: List[int] = []
            line = None
            for i in range(count):
                index = index_port.fifo[i]
                addr = command.offset_addr + index * command.index_scale
                addr_line = (addr // LINE_BYTES) * LINE_BYTES
                if line is None:
                    line = addr_line
                elif addr_line != line or addr < addrs[-1]:
                    break
                addrs.append(addr)
            take = len(addrs)
            assert take >= 1 and line is not None
            index_port.pop_words(take)
            words = source.pop_words(take)
            ready = memory.issue(cycle, line, True, take * command.elem_bytes)
            writes = list(zip(addrs, words))
            elem_bytes = command.elem_bytes

            def apply(writes=writes, elem_bytes=elem_bytes) -> None:
                for addr, word in writes:
                    memory.store.write_word(addr, word, elem_bytes)

            self.sim.schedule(ready, apply)
            stream.pending.append((ready, [], None))
            stream.elements_left -= take
            if stream.elements_left == 0:
                stream.issued_all = True


# ---------------------------------------------------------------------------
# Scratchpad engine (one read port + one write port per cycle)
# ---------------------------------------------------------------------------

class ScratchEngine(StreamEngineBase):
    name = "sse"

    def _make_stream(self, command: Command, trace: CommandTrace) -> ActiveStream:
        stream = ActiveStream(command, trace)
        if isinstance(command, SDScratchPort):
            stream.requests = affine_requests(command.pattern)
            stream.advance_request()
        elif isinstance(command, SDPortScratch):
            stream.elements_left = command.num_elements
        else:
            raise TypeError(f"{self.name} cannot run {type(command).__name__}")
        return stream

    def tick(self, cycle: int) -> bool:
        if self._fault_stalled(cycle):
            return False
        progressed = False
        for stream in list(self.streams):
            if self._drain_pending(stream, cycle):
                progressed = True
            if stream.issued_all and not stream.pending:
                self._retire(stream, cycle)
                progressed = True

        # One read-stream action per cycle.
        reads = [
            s
            for s in self.streams
            if isinstance(s.command, SDScratchPort) and self._read_ready(s)
        ]
        if reads:
            chosen = self._rotate(reads)[0]
            self._issue_read(chosen, cycle)
            self._note_busy(cycle, chosen)
            progressed = True

        # One write-stream action per cycle.
        writes = [
            s
            for s in self.streams
            if isinstance(s.command, SDPortScratch) and self._write_ready(s)
        ]
        if writes:
            self._issue_write(writes[0], cycle)
            self._note_busy(cycle, writes[0])
            progressed = True
        return progressed

    def _read_ready(self, stream: ActiveStream) -> bool:
        if stream.next_request is None:
            return False
        # A short request buffer covers the 2-cycle SRAM latency.
        return len(stream.pending) < 4

    def _issue_read(self, stream: ActiveStream, cycle: int) -> None:
        command = stream.command
        assert isinstance(command, SDScratchPort)
        request = stream.next_request
        assert request is not None
        port = self.sim.port_state(command.dest)
        if self.sim.fast_path_on:  # batched variant: same stats, no trace
            words = self.sim.scratchpad.read_elements(
                request.element_addrs, request.elem_bytes,
                command.pattern.signed,
            )
        else:
            words = [
                self.sim.scratchpad.read_extended(
                    addr, request.elem_bytes, command.pattern.signed
                )
                for addr in request.element_addrs
            ]
        stream.pending.append((cycle + SCRATCH_READ_LATENCY, words, port))
        self.sim.schedule(cycle + SCRATCH_READ_LATENCY, None)
        stream.advance_request()

    def _write_ready(self, stream: ActiveStream) -> bool:
        if stream.elements_left <= 0:
            return False
        source = self.sim.port_state(stream.command.source)  # type: ignore[attr-defined]
        return source.occupancy >= 1

    def _issue_write(self, stream: ActiveStream, cycle: int) -> None:
        command = stream.command
        assert isinstance(command, SDPortScratch)
        source = self.sim.port_state(command.source)
        max_elems = self.sim.scratchpad.width_bytes // command.elem_bytes
        count = min(max_elems, source.occupancy, stream.elements_left)
        words = source.pop_words(count)
        done = command.num_elements - stream.elements_left
        addr = command.scratch_addr + done * command.elem_bytes
        data = b"".join(
            (w & ((1 << (8 * command.elem_bytes)) - 1)).to_bytes(
                command.elem_bytes, "little"
            )
            for w in words
        )
        self.sim.scratchpad.write(addr, data)
        stream.elements_left -= count
        if stream.elements_left == 0:
            stream.issued_all = True


# ---------------------------------------------------------------------------
# Recurrence / constant engine
# ---------------------------------------------------------------------------

class RecurrenceEngine(StreamEngineBase):
    name = "rse"

    def _make_stream(self, command: Command, trace: CommandTrace) -> ActiveStream:
        stream = ActiveStream(command, trace)
        if isinstance(command, (SDConstPort, SDCleanPort, SDPortPort)):
            stream.elements_left = command.num_elements
        else:
            raise TypeError(f"{self.name} cannot run {type(command).__name__}")
        return stream

    def tick(self, cycle: int) -> bool:
        if self._fault_stalled(cycle):
            return False
        progressed = False
        for stream in list(self.streams):
            if stream.elements_left == 0:
                self._retire(stream, cycle)
                progressed = True

        ready = [s for s in self.streams if self._ready(s)]
        if not ready:
            return progressed
        chosen = self._rotate(ready)[0]
        self._issue(chosen, cycle)
        self._note_busy(cycle, chosen)
        return True

    def _ready(self, stream: ActiveStream) -> bool:
        command = stream.command
        if stream.elements_left <= 0:
            return False
        if isinstance(command, SDConstPort):
            return self.sim.port_state(command.dest).free_words >= 1
        if isinstance(command, SDCleanPort):
            return self.sim.port_state(command.source).occupancy >= 1
        assert isinstance(command, SDPortPort)
        source = self.sim.port_state(command.source)
        dest = self.sim.port_state(command.dest)
        return source.occupancy >= 1 and dest.free_words >= 1

    def _issue(self, stream: ActiveStream, cycle: int) -> None:
        command = stream.command
        if isinstance(command, SDConstPort):
            dest = self.sim.port_state(command.dest)
            count = min(WORDS_PER_CYCLE, dest.free_words, stream.elements_left)
            dest.push([command.value] * count, reserved=False)
        elif isinstance(command, SDCleanPort):
            source = self.sim.port_state(command.source)
            count = min(WORDS_PER_CYCLE, source.occupancy, stream.elements_left)
            source.pop_words(count)
        else:
            assert isinstance(command, SDPortPort)
            source = self.sim.port_state(command.source)
            dest = self.sim.port_state(command.dest)
            count = min(
                WORDS_PER_CYCLE,
                source.occupancy,
                dest.free_words,
                stream.elements_left,
            )
            words = source.pop_words(count)
            dest.push(words, reserved=False)
        stream.elements_left -= count
