"""Memory substrate: functional backing store + cache timing model.

Softbrain's memory stream engine talks to a wide-interface L2-class cache
(Section 4.3): 64-byte requests, one accepted per cycle, with misses served
by a DRAM model with its own latency and bandwidth.  The same object holds
the *functional* byte-addressable contents (a sparse page store, since
stream programs use scattered address regions) and the *timing* model that
tells the stream engines when a request's data is available.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional

from ..core.isa.patterns import LINE_BYTES
from ..trace import NULL_SINK, SHARED_UNIT, TraceEvent, TraceSink
from .errors import MemoryProtocolError

_PAGE_BITS = 12
_PAGE_BYTES = 1 << _PAGE_BITS


@dataclass
class MemoryParams:
    """Timing knobs for the cache/memory hierarchy.

    Defaults model the paper's standalone-device setup: an L2-class cache
    with a 64 B/cycle interface, and DRAM sustaining one line per
    ``dram_gap_cycles`` (4 -> 16 B/cycle, roughly half a DDR3 channel at
    1 GHz, matching the memory-bandwidth-sensitivity the DNN results show).
    """

    l2_size_bytes: int = 2 * 1024 * 1024
    l2_hit_latency: int = 12
    dram_latency: int = 90
    dram_gap_cycles: int = 4
    accepts_per_cycle: int = 1


class BackingStore:
    """Sparse byte-addressable functional memory."""

    def __init__(self) -> None:
        self._pages: Dict[int, bytearray] = {}

    def _page(self, addr: int) -> bytearray:
        page_id = addr >> _PAGE_BITS
        page = self._pages.get(page_id)
        if page is None:
            page = bytearray(_PAGE_BYTES)
            self._pages[page_id] = page
        return page

    def read(self, addr: int, size: int) -> bytes:
        out = bytearray(size)
        pos = 0
        while pos < size:
            page = self._page(addr + pos)
            offset = (addr + pos) & (_PAGE_BYTES - 1)
            chunk = min(size - pos, _PAGE_BYTES - offset)
            out[pos : pos + chunk] = page[offset : offset + chunk]
            pos += chunk
        return bytes(out)

    def write(self, addr: int, data: bytes) -> None:
        pos = 0
        size = len(data)
        while pos < size:
            page = self._page(addr + pos)
            offset = (addr + pos) & (_PAGE_BYTES - 1)
            chunk = min(size - pos, _PAGE_BYTES - offset)
            page[offset : offset + chunk] = data[pos : pos + chunk]
            pos += chunk

    def read_word(self, addr: int, size: int = 8, signed: bool = False) -> int:
        return int.from_bytes(self.read(addr, size), "little", signed=signed)

    def read_extended(self, addr: int, size: int, signed: bool) -> int:
        """Read a narrow element as a raw 64-bit word (zero/sign-extended)."""
        value = int.from_bytes(self.read(addr, size), "little", signed=signed)
        return value & 0xFFFF_FFFF_FFFF_FFFF

    def write_word(self, addr: int, value: int, size: int = 8) -> None:
        self.write(addr, (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little"))

    def read_elements(self, addrs, size: int, signed: bool):
        """Batched :meth:`read_extended` over same-size elements.

        Functionally identical to calling ``read_extended`` per address —
        including materialising the touched pages, so
        :meth:`snapshot_pages` is unaffected by which variant ran.  The
        fast common case (element fully inside one page) skips the
        per-read ``bytearray`` assembly of :meth:`read`.
        """
        out = []
        page_mask = _PAGE_BYTES - 1
        for addr in addrs:
            offset = addr & page_mask
            if offset + size <= _PAGE_BYTES:
                page = self._page(addr)
                value = int.from_bytes(
                    page[offset:offset + size], "little", signed=signed
                )
            else:  # element straddles a page boundary: take the slow route
                value = int.from_bytes(
                    self.read(addr, size), "little", signed=signed
                )
            out.append(value & 0xFFFF_FFFF_FFFF_FFFF)
        return out

    def snapshot_pages(self) -> Dict[int, bytes]:
        """Immutable copy of all touched pages (page id -> bytes).

        Absent pages read as zeros, so two stores are equal iff their
        snapshots agree on the union of their page ids with zero-fill —
        the comparison the differential oracle performs.
        """
        return {pid: bytes(page) for pid, page in self._pages.items()}


@dataclass
class MemoryStats:
    """Traffic counters for the power model and reports."""

    reads: int = 0
    writes: int = 0
    hits: int = 0
    misses: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    @property
    def requests(self) -> int:
        return self.reads + self.writes


class MemorySystem:
    """Functional contents + request timing for the memory interface.

    Timing contract: :meth:`issue` is called with the current cycle and a
    line address; it returns the cycle at which the request's data is
    available (read) or globally visible (write).  The interface accepts at
    most ``accepts_per_cycle`` requests per cycle; callers must not call
    :meth:`issue` unless :meth:`can_accept` said yes this cycle.
    """

    def __init__(self, params: Optional[MemoryParams] = None) -> None:
        self.params = params or MemoryParams()
        self.store = BackingStore()
        self.stats = MemoryStats()
        self._cached_lines: "OrderedDict[int, None]" = OrderedDict()
        self._capacity_lines = self.params.l2_size_bytes // LINE_BYTES
        self._accepted_at: int = -1
        self._accepted_count: int = 0
        self._dram_free_at: int = 0
        #: fast-path burst reservation: a stream engine that pre-issued a
        #: burst owns every accept slot before this cycle (see
        #: docs/PERFORMANCE.md); 0 = no reservation
        self._reserved_until: int = 0
        #: Softbrain units attached to this memory (multi-unit runs share
        #: one MemorySystem; bursts are only legal with a single requester)
        self.units_attached: int = 0
        self.trace: TraceSink = NULL_SINK
        self._trace_unit = SHARED_UNIT
        #: optional fault injector (``mem.delay`` faults); None = no cost
        self._faults = None

    def attach_trace(self, sink: TraceSink, unit: int = SHARED_UNIT) -> None:
        """Emit one ``mem.access`` event per accepted line request.

        ``unit`` tags the events; a memory shared by several units keeps
        the default :data:`~repro.trace.SHARED_UNIT`.
        """
        self.trace = sink
        self._trace_unit = unit

    def attach_faults(self, injector) -> None:
        """Let a :class:`repro.resilience.FaultInjector` stretch response
        latencies (``mem.delay`` faults)."""
        self._faults = injector

    # -- functional -----------------------------------------------------------

    def preload(self, addr: int, data: bytes) -> None:
        """Initialise memory contents before simulation."""
        self.store.write(addr, data)

    # -- timing -----------------------------------------------------------------

    def register_unit(self) -> None:
        """Count one more Softbrain unit using this memory interface."""
        self.units_attached += 1

    def reserve_window(self, until_cycle: int) -> None:
        """Reserve every accept slot strictly before ``until_cycle``.

        Used by the fast path after pre-issuing a burst: the slow path
        would have consumed one accept per covered cycle, so any other
        would-be requester must see the interface as busy for the whole
        window to keep timing bit-identical.
        """
        self._reserved_until = until_cycle

    def can_accept(self, cycle: int) -> bool:
        if cycle < self._reserved_until:
            return False
        if cycle != self._accepted_at:
            return True
        return self._accepted_count < self.params.accepts_per_cycle

    def _note_accept(self, cycle: int) -> None:
        if cycle != self._accepted_at:
            self._accepted_at = cycle
            self._accepted_count = 0
        self._accepted_count += 1

    def _touch_line(self, line_addr: int) -> bool:
        """LRU lookup/fill; returns True on hit."""
        hit = line_addr in self._cached_lines
        if hit:
            self._cached_lines.move_to_end(line_addr)
        else:
            self._cached_lines[line_addr] = None
            if len(self._cached_lines) > self._capacity_lines:
                self._cached_lines.popitem(last=False)
        return hit

    def issue(self, cycle: int, line_addr: int, is_write: bool, nbytes: int) -> int:
        """Issue one line request; returns the data-ready cycle."""
        if not self.can_accept(cycle):
            raise MemoryProtocolError(
                "memory interface over-subscribed this cycle"
            )
        self._note_accept(cycle)
        hit = self._touch_line(line_addr)
        if is_write:
            self.stats.writes += 1
            self.stats.bytes_written += nbytes
        else:
            self.stats.reads += 1
            self.stats.bytes_read += nbytes
        if hit:
            self.stats.hits += 1
            ready = cycle + self.params.l2_hit_latency
        else:
            self.stats.misses += 1
            start = max(cycle, self._dram_free_at)
            self._dram_free_at = start + self.params.dram_gap_cycles
            ready = start + self.params.dram_latency
        if self._faults is not None and cycle >= self._faults.mem_delay_at:
            ready += self._faults.mem_delay(cycle, line_addr, is_write)
        if self.trace.enabled:
            self.trace.emit(TraceEvent(
                "mem.access", cycle, self._trace_unit, "memory",
                {"line_addr": line_addr, "write": is_write,
                 "bytes": nbytes, "hit": hit, "ready": ready},
            ))
        return ready

    def warm(self, addr: int, nbytes: int) -> None:
        """Mark an address range as L2-resident (for warm-cache runs)."""
        first = (addr // LINE_BYTES) * LINE_BYTES
        last = addr + nbytes
        for line in range(first, last, LINE_BYTES):
            self._touch_line(line)
