"""Multi-unit Softbrain: N tiles sharing one memory interface (Figure 1(b)
scaled out, the paper's 8-unit DianNao-comparison configuration).

All units advance in lock-step, each with its own control core, stream
engines, scratchpad and CGRA, but one shared :class:`MemorySystem`:
the shared interface accepts one request per cycle *in total* and the
shared DRAM bandwidth is arbitrated naturally by the per-cycle accept
limit — contention is simulated, not modelled.

This is the high-fidelity alternative to the single-unit + scaled-bandwidth
approximation used by the DNN harness (a test cross-validates the two).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.isa.program import StreamProgram
from ..trace import TraceSink
from .errors import SimError, SimulationDeadlock, SimulationLimit
from .memory import MemorySystem
from .softbrain import RunResult, SoftbrainParams, SoftbrainSim


@dataclass
class MultiUnitResult:
    """Per-unit results plus the whole-device cycle count."""

    unit_results: List[RunResult]
    cycles: int
    memory: MemorySystem

    @property
    def total_instances(self) -> int:
        return sum(r.stats.instances_fired for r in self.unit_results)

    @property
    def total_ops(self) -> int:
        return sum(r.stats.ops_executed for r in self.unit_results)


def run_multi_unit(
    programs: List[StreamProgram],
    fabric_factory,
    memory: Optional[MemorySystem] = None,
    params: Optional[SoftbrainParams] = None,
    trace: Optional[TraceSink] = None,
) -> MultiUnitResult:
    """Simulate one program per unit on a shared memory interface.

    ``fabric_factory`` is called once per unit (each tile has its own
    fabric instance).  Returns when every unit's program has drained; the
    device cycle count is the slowest unit's finish cycle.

    With ``trace``, each unit's events carry its index as ``unit`` and
    the shared memory interface emits device-level events tagged
    :data:`~repro.trace.SHARED_UNIT`.
    """
    if not programs:
        raise ValueError("need at least one unit program")
    memory = memory or MemorySystem()
    params = params or SoftbrainParams()
    if trace is not None and trace.enabled:
        memory.attach_trace(trace)  # shared: keep the device-level tag
    sims = [
        SoftbrainSim(program, fabric=fabric_factory(), memory=memory,
                     params=params, trace=trace, unit_id=index)
        for index, program in enumerate(programs)
    ]
    finish_cycle = [0] * len(sims)
    done = [False] * len(sims)

    cycle = 0
    while not all(done):
        progress = False
        for index, sim in enumerate(sims):
            if done[index]:
                continue
            try:
                if sim.step(cycle):
                    progress = True
            except SimError as exc:
                raise sim._fail(exc) from None
            if sim.finished():
                done[index] = True
                finish_cycle[index] = cycle
        if all(done):
            break
        if not progress:
            next_events = [
                sim.next_event_cycle()
                for index, sim in enumerate(sims)
                if not done[index] and sim.next_event_cycle() is not None
            ]
            if next_events:
                cycle = max(cycle + 1, min(next_events))
                continue
            stuck = [s for i, s in enumerate(sims) if not done[i]]
            raise _fail_multi(
                stuck,
                SimulationDeadlock(
                    f"multi-unit deadlock at cycle {cycle}: "
                    f"{len(stuck)} of {len(sims)} units stuck"
                ),
                cycle,
            ) from None
        cycle += 1
        if cycle > params.max_cycles:
            stuck = [s for i, s in enumerate(sims) if not done[i]]
            raise _fail_multi(
                stuck,
                SimulationLimit(
                    f"multi-unit run exceeded {params.max_cycles} cycles"
                ),
                cycle,
            ) from None

    results = [
        sim.finalize(finish_cycle[index]) for index, sim in enumerate(sims)
    ]
    return MultiUnitResult(results, max(finish_cycle), memory)


def _fail_multi(stuck: List[SoftbrainSim], exc: SimError,
                cycle: int) -> SimError:
    """Attach an aggregated crash dump covering every stuck unit."""
    from ..resilience.report import build_multi_unit_report

    exc.cycle = cycle
    exc.program_name = "+".join(sim.program.name for sim in stuck)
    for sim in stuck:
        sim.cycle = cycle
    exc.report = build_multi_unit_report(stuck, exc)
    message = exc.args[0] if exc.args else type(exc).__name__
    exc.args = (f"{message}\n{exc.report.render()}",)
    return exc
