"""Pipelined CGRA execution with coarse-grained dataflow firing.

Section 4.4: when one instance worth of data is available on every relevant
input vector port — and, because the mesh has no flow control, space is
guaranteed at the output ports — all of it is released into the fabric
simultaneously.  The fabric is fully pipelined (initiation interval 1), so
a new instance may fire every cycle; results emerge ``config.latency``
cycles later at the output ports.

:class:`CompiledDfg` flattens a validated DFG into an index-addressed step
list so the per-firing cost in the simulator stays small.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.compiler.config import CgraConfig
from ..core.dfg.graph import Constant, Dfg
from ..core.dfg.instructions import (
    ACCUMULATOR_OPS,
    WORD_BITS,
    WORD_MASK,
    accumulate_combine,
    accumulator_identity,
    get_operation,
    mask_word,
)
from ..trace import TraceEvent
from .vector_port import VectorPortState


def _compile_step(op, lane_bits, operand_spec, out_idx, acc_slot, identity):
    """Specialise one DFG step into a closure (fast path only).

    The closures replicate :meth:`Operation.evaluate` /
    :func:`accumulate_combine` arithmetic exactly — same ``to_signed`` /
    ``from_signed`` lane math — just without per-call validation, lane
    splitting into lists, or operand-list allocation.  Bit-identical
    output is enforced by tests/test_property_fastpath.py.
    """
    lane_mask = (1 << lane_bits) - 1
    sign = 1 << (lane_bits - 1)
    shifts = tuple(range(0, WORD_BITS, lane_bits))

    if acc_slot >= 0:
        combine = get_operation(ACCUMULATOR_OPS[op.name]).lane_fn
        (value_const, value_ref), (reset_const, reset_ref) = operand_spec

        def step(values, state):
            value = value_ref if value_const else values[value_ref]
            reset = reset_ref if reset_const else values[reset_ref]
            current = state[acc_slot] & WORD_MASK
            value &= WORD_MASK
            word = 0
            for shift in shifts:
                a = (((current >> shift) & lane_mask) ^ sign) - sign
                b = (((value >> shift) & lane_mask) ^ sign) - sign
                word |= (combine(a, b) & lane_mask) << shift
            values[out_idx] = word
            state[acc_slot] = identity if reset else word

        return step

    fn = op.lane_fn
    if op.whole_word:

        def step(values, state):
            args = [
                (v if c else values[v]) & WORD_MASK for c, v in operand_spec
            ]
            values[out_idx] = fn(*args, lane_bits) & WORD_MASK

        return step

    if len(operand_spec) == 1:
        (const0, ref0), = operand_spec

        def step(values, state):
            word0 = (ref0 if const0 else values[ref0]) & WORD_MASK
            word = 0
            for shift in shifts:
                a = (((word0 >> shift) & lane_mask) ^ sign) - sign
                word |= (fn(a) & lane_mask) << shift
            values[out_idx] = word

        return step

    if len(operand_spec) == 2:
        (const0, ref0), (const1, ref1) = operand_spec

        def step(values, state):
            word0 = (ref0 if const0 else values[ref0]) & WORD_MASK
            word1 = (ref1 if const1 else values[ref1]) & WORD_MASK
            word = 0
            for shift in shifts:
                a = (((word0 >> shift) & lane_mask) ^ sign) - sign
                b = (((word1 >> shift) & lane_mask) ^ sign) - sign
                word |= (fn(a, b) & lane_mask) << shift
            values[out_idx] = word

        return step

    def step(values, state):
        words = [
            (v if c else values[v]) & WORD_MASK for c, v in operand_spec
        ]
        word = 0
        for shift in shifts:
            lanes = [
                (((w >> shift) & lane_mask) ^ sign) - sign for w in words
            ]
            word |= (fn(*lanes) & lane_mask) << shift
        values[out_idx] = word

    return step


class CompiledDfg:
    """Index-flattened executor for one DFG (much faster than Dfg.execute).

    With ``specialize=True`` (fast path) each step additionally gets a
    precompiled closure; :meth:`run` then avoids the generic
    :meth:`Operation.evaluate` machinery while producing bit-identical
    results.
    """

    def __init__(self, dfg: Dfg, specialize: bool = False) -> None:
        self.dfg = dfg
        index: Dict[Tuple[str, int], int] = {}
        self.input_slots: List[Tuple[str, int, int]] = []  # (port, lane, idx)
        for name, port in dfg.inputs.items():
            for lane in range(port.width):
                index[(name, lane)] = len(index)
                self.input_slots.append((name, lane, index[(name, lane)]))
        self.num_inputs = len(index)

        #: (operation, lane bits, operand spec, out index, acc slot or -1)
        self.steps: List[Tuple] = []
        self.acc_identity: List[int] = []  # identity word per accumulator slot
        for inst in dfg.topological_order():
            out_idx = len(index)
            index[(inst.name, 0)] = out_idx
            operand_spec: List[Tuple[bool, int]] = []
            for operand in inst.operands:
                if isinstance(operand, Constant):
                    operand_spec.append((True, mask_word(operand.word)))
                else:
                    operand_spec.append((False, index[(operand.node, operand.lane)]))
            acc_slot = -1
            if inst.is_accumulator:
                acc_slot = len(self.acc_identity)
                self.acc_identity.append(
                    accumulator_identity(inst.op.name, inst.lane_bits)
                )
            self.steps.append(
                (inst.op, inst.lane_bits, tuple(operand_spec), out_idx, acc_slot)
            )
        self.num_values = len(index)

        self.output_slots: List[Tuple[str, List[int]]] = [
            (name, [index[(ref.node, ref.lane)] for ref in port.sources])
            for name, port in dfg.outputs.items()
        ]

        self._fast_steps = None
        if specialize:
            self._fast_steps = [
                _compile_step(
                    op, lane_bits, operand_spec, out_idx, acc_slot,
                    self.acc_identity[acc_slot] if acc_slot >= 0 else 0,
                )
                for op, lane_bits, operand_spec, out_idx, acc_slot
                in self.steps
            ]

    def make_state(self) -> List[int]:
        return list(self.acc_identity)

    def run(
        self, inputs: Dict[str, List[int]], state: List[int]
    ) -> Dict[str, List[int]]:
        """Execute one instance; mutates accumulator ``state`` in place."""
        values = [0] * self.num_values
        for port_name, lane, idx in self.input_slots:
            values[idx] = inputs[port_name][lane]
        if self._fast_steps is not None:
            for step in self._fast_steps:
                step(values, state)
            return {
                name: [values[i] for i in slots]
                for name, slots in self.output_slots
            }
        for op, lane_bits, operand_spec, out_idx, acc_slot in self.steps:
            operands = [
                const if is_const else values[const]
                for is_const, const in operand_spec
            ]
            if acc_slot >= 0:
                value, reset = operands
                total = accumulate_combine(
                    op.name, state[acc_slot], value, lane_bits
                )
                values[out_idx] = total
                state[acc_slot] = (
                    self.acc_identity[acc_slot] if reset else total
                )
            else:
                values[out_idx] = op.evaluate(operands, lane_bits)
        return {
            name: [values[i] for i in slots] for name, slots in self.output_slots
        }


class CgraExecutor:
    """Runtime firing logic for the currently-loaded configuration."""

    def __init__(self, sim: "SoftbrainSim", config: CgraConfig) -> None:  # noqa: F821
        self.sim = sim
        self.config = config
        self.compiled = CompiledDfg(
            config.dfg, specialize=getattr(sim, "fast_path_on", False)
        )
        self.state = self.compiled.make_state()
        self.in_flight = 0

        dfg = config.dfg
        self.inputs: List[Tuple[str, int, VectorPortState]] = [
            (
                name,
                port.width,
                sim.input_ports[config.hw_input_port(name)],
            )
            for name, port in dfg.inputs.items()
        ]
        self.outputs: List[Tuple[str, int, VectorPortState]] = [
            (
                name,
                port.width,
                sim.output_ports[config.hw_output_port(name)],
            )
            for name, port in dfg.outputs.items()
        ]
        # Per-firing cost bookkeeping, computed once.
        self.ops_per_instance = dfg.num_instructions
        self.fu_ops_per_instance: Dict[str, int] = {}
        for inst_name, coord in config.placement.items():
            fu_name = config.fabric.pes[coord].fu.name
            self.fu_ops_per_instance[fu_name] = (
                self.fu_ops_per_instance.get(fu_name, 0) + 1
            )

    def can_fire(self) -> Tuple[bool, str]:
        for _, width, port in self.inputs:
            if port.occupancy < width:
                return False, "input"
        for _, width, port in self.outputs:
            if port.free_words < width:
                return False, "output"
        return True, ""

    def tick(self, cycle: int) -> bool:
        """Fire at most one instance (II = 1)."""
        ok, why = self.can_fire()
        sink = self.sim.trace
        if not ok:
            # Only count stalls while there is actually upstream data;
            # the cgra.stall emissions mirror the counters one-for-one.
            if why == "output":
                self.sim.stats.cgra_stall_no_output_room += 1
                if sink.enabled:
                    sink.emit(TraceEvent(
                        "cgra.stall", cycle, self.sim.unit, "cgra",
                        {"cause": "no_output_room"},
                    ))
            elif any(port.occupancy for _, _, port in self.inputs):
                self.sim.stats.cgra_stall_no_input += 1
                if sink.enabled:
                    sink.emit(TraceEvent(
                        "cgra.stall", cycle, self.sim.unit, "cgra",
                        {"cause": "no_input"},
                    ))
            return False
        inputs = {
            name: port.pop_words(width) for name, width, port in self.inputs
        }
        results = self.compiled.run(inputs, self.state)
        injector = self.sim.faults
        if injector is not None and cycle >= injector.cgra_at:
            injector.flip_cgra_output(cycle, results)
        for name, width, port in self.outputs:
            port.reserve(width)
        self.in_flight += 1
        done = cycle + self.config.latency

        def deliver() -> None:
            for name, width, port in self.outputs:
                port.push(results[name])
            self.in_flight -= 1

        self.sim.schedule(done, deliver)
        self.sim.stats.note_firing(self.ops_per_instance, self.fu_ops_per_instance)
        if sink.enabled:
            sink.emit(TraceEvent(
                "cgra.fire", cycle, self.sim.unit, "cgra",
                {"ops": self.ops_per_instance,
                 "fu": self.fu_ops_per_instance},
            ))
        return True
