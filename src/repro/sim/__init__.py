"""Cycle-level simulator of the Softbrain microarchitecture.

Observability: every component accepts a :class:`repro.trace.TraceSink`
(via ``run_program(..., trace=...)`` / ``run_multi_unit(..., trace=...)``)
and emits the structured events documented in ``docs/TRACING.md``.
"""

from .cgra_exec import CgraExecutor, CompiledDfg
from .control_core import ControlCore
from .dispatcher import COMMAND_QUEUE_DEPTH, Dispatcher
from .memory import BackingStore, MemoryParams, MemoryStats, MemorySystem
from .multi_unit import MultiUnitResult, run_multi_unit
from .scratchpad import Scratchpad, ScratchpadError, ScratchpadStats
from .softbrain import (
    RunResult,
    SimulationDeadlock,
    SimulationLimit,
    SoftbrainParams,
    SoftbrainSim,
    run_program,
)
from .stats import CommandTrace, SimStats, Timeline, render_timeline
from .stream_engine import (
    ActiveStream,
    MemReadEngine,
    MemWriteEngine,
    RecurrenceEngine,
    ScratchEngine,
    StreamEngineBase,
    WORDS_PER_CYCLE,
)
from .vector_port import PortRuntimeError, VectorPortState

__all__ = [
    "ActiveStream",
    "BackingStore",
    "COMMAND_QUEUE_DEPTH",
    "CgraExecutor",
    "CommandTrace",
    "CompiledDfg",
    "ControlCore",
    "Dispatcher",
    "MemReadEngine",
    "MemWriteEngine",
    "MemoryParams",
    "MemoryStats",
    "MemorySystem",
    "MultiUnitResult",
    "PortRuntimeError",
    "RecurrenceEngine",
    "RunResult",
    "ScratchEngine",
    "Scratchpad",
    "ScratchpadError",
    "ScratchpadStats",
    "SimStats",
    "SimulationDeadlock",
    "SimulationLimit",
    "SoftbrainParams",
    "SoftbrainSim",
    "StreamEngineBase",
    "Timeline",
    "VectorPortState",
    "WORDS_PER_CYCLE",
    "render_timeline",
    "run_multi_unit",
]
