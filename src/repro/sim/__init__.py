"""Cycle-level simulator of the Softbrain microarchitecture.

Observability: every component accepts a :class:`repro.trace.TraceSink`
(via ``run_program(..., trace=...)`` / ``run_multi_unit(..., trace=...)``)
and emits the structured events documented in ``docs/TRACING.md``.

Failure model: every simulator failure derives from
:class:`~repro.sim.errors.SimError` and carries ``program_name``,
``cycle`` and (when raised through the run loop) a structured
``report`` crash dump; see ``docs/RESILIENCE.md``.
"""

from .cgra_exec import CgraExecutor, CompiledDfg
from .control_core import ControlCore
from .dispatcher import COMMAND_QUEUE_DEPTH, Dispatcher
from .errors import (
    ConfigError,
    IllegalCommandError,
    MemoryProtocolError,
    PortRuntimeError,
    ScratchpadError,
    SimError,
    SimulationDeadlock,
    SimulationLimit,
    StreamTableError,
)
from .memory import BackingStore, MemoryParams, MemoryStats, MemorySystem
from .multi_unit import MultiUnitResult, run_multi_unit
from .scratchpad import Scratchpad, ScratchpadStats
from .softbrain import (
    RunResult,
    SoftbrainParams,
    SoftbrainSim,
    run_program,
)
from .stats import CommandTrace, SimStats, Timeline, render_timeline
from .stream_engine import (
    ActiveStream,
    MemReadEngine,
    MemWriteEngine,
    RecurrenceEngine,
    ScratchEngine,
    StreamEngineBase,
    WORDS_PER_CYCLE,
)
from .vector_port import PortRuntimeError, VectorPortState

__all__ = [
    "ActiveStream",
    "BackingStore",
    "COMMAND_QUEUE_DEPTH",
    "CgraExecutor",
    "CommandTrace",
    "CompiledDfg",
    "ConfigError",
    "ControlCore",
    "Dispatcher",
    "IllegalCommandError",
    "MemReadEngine",
    "MemWriteEngine",
    "MemoryParams",
    "MemoryProtocolError",
    "MemoryStats",
    "MemorySystem",
    "MultiUnitResult",
    "PortRuntimeError",
    "RecurrenceEngine",
    "RunResult",
    "ScratchEngine",
    "Scratchpad",
    "ScratchpadError",
    "ScratchpadStats",
    "SimError",
    "SimStats",
    "SimulationDeadlock",
    "SimulationLimit",
    "SoftbrainParams",
    "SoftbrainSim",
    "StreamEngineBase",
    "StreamTableError",
    "Timeline",
    "VectorPortState",
    "WORDS_PER_CYCLE",
    "render_timeline",
    "run_multi_unit",
]
