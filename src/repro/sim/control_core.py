"""Control core: the low-power in-order scalar core that generates commands.

The core's only job in an accelerated phase is to run the stream
coordination program — a handful of instructions per command (Table 2
encodes each as 1-3 RISC instructions) plus whatever address arithmetic the
program models with ``host()`` items.  The core is single-issue: generating
a command whose encoding occupies *k* instruction slots takes *k* cycles,
after which the command enters the dispatcher queue (unless the queue is
stalled by ``SD_Barrier_All`` or full, in which case the core stalls too —
Section 4.2's core interface).
"""

from __future__ import annotations

from typing import List

from ..core.isa.commands import Command
from ..core.isa.program import HostCompute, ProgramItem


class ControlCore:
    """Single-issue in-order command generator."""

    def __init__(self, sim: "SoftbrainSim", items: List[ProgramItem]) -> None:  # noqa: F821
        self.sim = sim
        self.items = items
        self.pc = 0
        self._cycles_into_item = 0
        self.stall_cycles = 0
        self.instructions_executed = 0

    @property
    def finished(self) -> bool:
        return self.pc >= len(self.items)

    def tick(self, cycle: int) -> bool:
        """Advance one cycle; returns True if the core made progress."""
        if self.finished:
            return False
        item = self.items[self.pc]
        if isinstance(item, HostCompute):
            self._cycles_into_item += 1
            self.instructions_executed += 1
            if self._cycles_into_item >= item.cycles:
                self.pc += 1
                self._cycles_into_item = 0
            return True
        assert isinstance(item, Command)
        cost = item.instruction_count
        if self._cycles_into_item + 1 < cost:
            self._cycles_into_item += 1
            self.instructions_executed += 1
            return True
        # Final cycle of generation: hand the command to the dispatcher.
        if not self.sim.dispatcher.can_enqueue():
            self.stall_cycles += 1
            return False
        injector = self.sim.faults
        if injector is not None and self.pc >= injector.cmd_at:
            # cmd.illegal faults mangle the encoded command word here, at
            # the core/dispatcher boundary (may raise IllegalCommandError)
            item = injector.mangle_command(self.pc, item)
        self.instructions_executed += 1
        self.sim.dispatcher.enqueue(item, cycle)
        self.pc += 1
        self._cycles_into_item = 0
        return True
