"""Programmable scratchpad: the private address space for data reuse.

A single-read-, single-write-ported SRAM (Section 4.3), 64 bytes wide —
sized proportional to the CGRA's maximum consumption rate.  The scratchpad
stream engine may perform one read-stream access and one write-stream
access per cycle; the dispatcher's scratch barriers order readers against
writers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..trace import NULL_SINK, TraceEvent, TraceSink
from .errors import ScratchpadError

__all__ = ["Scratchpad", "ScratchpadError", "ScratchpadStats"]


@dataclass
class ScratchpadStats:
    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0


class Scratchpad:
    """Functional contents and access counters of the scratchpad SRAM."""

    def __init__(self, size_bytes: int = 4096, width_bytes: int = 64) -> None:
        if size_bytes <= 0 or size_bytes % width_bytes:
            raise ValueError("scratchpad size must be a positive multiple of width")
        self.size_bytes = size_bytes
        self.width_bytes = width_bytes
        self._data = bytearray(size_bytes)
        self.stats = ScratchpadStats()
        self.trace: TraceSink = NULL_SINK
        self._trace_unit = 0
        self._clock: Optional[Callable[[], int]] = None

    def attach_trace(self, sink: TraceSink, unit: int,
                     clock: Callable[[], int]) -> None:
        """Emit ``scratch.read`` / ``scratch.write`` events into ``sink``.

        ``clock`` supplies the current cycle (the scratchpad itself is
        unclocked; the owning :class:`~repro.sim.softbrain.SoftbrainSim`
        passes its own cycle counter).
        """
        self.trace = sink
        self._trace_unit = unit
        self._clock = clock

    def _check(self, addr: int, size: int) -> None:
        if addr < 0 or addr + size > self.size_bytes:
            raise ScratchpadError(
                f"scratch access [{addr}, {addr + size}) outside "
                f"0..{self.size_bytes}"
            )

    def read(self, addr: int, size: int) -> bytes:
        self._check(addr, size)
        self.stats.reads += 1
        self.stats.bytes_read += size
        if self.trace.enabled:
            self.trace.emit(TraceEvent(
                "scratch.read", self._clock() if self._clock else 0,
                self._trace_unit, "scratchpad",
                {"addr": addr, "bytes": size},
            ))
        return bytes(self._data[addr : addr + size])

    def write(self, addr: int, data: bytes) -> None:
        self._check(addr, len(data))
        self.stats.writes += 1
        self.stats.bytes_written += len(data)
        if self.trace.enabled:
            self.trace.emit(TraceEvent(
                "scratch.write", self._clock() if self._clock else 0,
                self._trace_unit, "scratchpad",
                {"addr": addr, "bytes": len(data)},
            ))
        self._data[addr : addr + len(data)] = data

    def read_elements(self, addrs, size: int, signed: bool):
        """Batched :meth:`read_extended` over same-size elements.

        Bulk-updates the access counters by exactly what the per-element
        calls would have added, so :class:`ScratchpadStats` stays
        bit-identical.  Emits no trace events — callers use this only on
        untraced fast-path runs (``sim.fast_path_on``).
        """
        for addr in addrs:
            self._check(addr, size)
        n = len(addrs)
        self.stats.reads += n
        self.stats.bytes_read += n * size
        data = self._data
        return [
            int.from_bytes(data[addr:addr + size], "little", signed=signed)
            & 0xFFFF_FFFF_FFFF_FFFF
            for addr in addrs
        ]

    def snapshot(self) -> bytes:
        """The full scratchpad image, without touching the access stats
        (used for end-state comparison by tests and the fuzz oracle)."""
        return bytes(self._data)

    def read_word(self, addr: int, size: int = 8, signed: bool = False) -> int:
        return int.from_bytes(self.read(addr, size), "little", signed=signed)

    def read_extended(self, addr: int, size: int, signed: bool) -> int:
        """Read a narrow element as a raw 64-bit word (zero/sign-extended)."""
        value = int.from_bytes(self.read(addr, size), "little", signed=signed)
        return value & 0xFFFF_FFFF_FFFF_FFFF

    def write_word(self, addr: int, value: int, size: int = 8) -> None:
        self.write(addr, (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little"))
