"""Softbrain: the top-level cycle-level simulator (Figure 7).

One Softbrain unit = control core + stream dispatcher + three stream-engine
groups + vector ports + CGRA, attached to a scratchpad and the memory
hierarchy.  :func:`run_program` is the main entry point::

    result = run_program(program, fabric=dnn_provisioned())
    print(result.stats.cycles)

The main loop is cycle-stepped with event-driven fast-forward: when no
component can make progress in a cycle, the clock jumps to the next pending
event (memory completion, CGRA pipeline exit).  A cycle with no progress
*and* no pending events is a deadlock and raises
:class:`SimulationDeadlock` — the situation the paper's balance unit and
buffering rules exist to prevent.  Every :class:`~repro.sim.errors.SimError`
escaping :meth:`SoftbrainSim.run` carries a structured
:class:`repro.resilience.FailureReport` (wait-for graph with root-cause
chains, per-component snapshots, trace tail) on ``exc.report``; see
``docs/RESILIENCE.md``.

Fault injection: pass a :class:`repro.resilience.FaultInjector` as
``faults`` and the thin hooks in the memory system, stream engines, CGRA
executor and control core inject the planned faults.  Zero-fault runs pay
one ``is None`` test per hook site.

Observability: pass a :class:`repro.trace.TraceSink` as ``trace`` and
every component emits structured :class:`repro.trace.TraceEvent` records
— ``command.enqueue`` / ``command.dispatch`` / ``command.complete``
lifetimes (the machine-readable form of the
:class:`repro.sim.stats.Timeline`), ``engine.busy``, ``cgra.fire`` /
``cgra.stall``, ``mem.access``, ``scratch.read`` / ``scratch.write``,
``barrier.wait`` and periodic ``port.sample`` depth probes.  The default
:data:`repro.trace.NULL_SINK` keeps every hot path a single boolean test;
see ``docs/TRACING.md`` for the full vocabulary.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..cgra.fabric import Fabric, dnn_provisioned
from ..core.isa.commands import (
    Command,
    PortRef,
    SDBarrierAll,
    SDConfig,
    SDMemScratch,
    SDPortScratch,
    SDScratchPort,
    port_uses,
)
from ..core.isa.program import StreamProgram
from ..trace import NULL_SINK, TraceEvent, TraceSink
from .cgra_exec import CgraExecutor
from .control_core import ControlCore
from .dispatcher import Dispatcher
from .errors import ConfigError, SimError, SimulationDeadlock, SimulationLimit
from .memory import MemorySystem
from .scratchpad import Scratchpad
from .stats import SimStats, Timeline
from .stream_engine import (
    ActiveStream,
    MemReadEngine,
    MemWriteEngine,
    RecurrenceEngine,
    ScratchEngine,
    StreamEngineBase,
)


@dataclass
class SoftbrainParams:
    """Per-unit structural parameters.

    The two boolean flags ablate the microarchitectural mechanisms of
    Section 4: the memory read engine's *balance unit* (deadlock avoidance
    and fairness across vector ports) and the dispatcher's
    *all-requests-in-flight* port state (overlapping same-port streams).
    """

    scratch_bytes: int = 4096
    stream_table_size: int = 8
    max_cycles: int = 50_000_000
    balance_unit: bool = True
    all_requests_in_flight: bool = True
    #: stepped cycles between ``port.sample`` trace events (traced runs only)
    trace_sample_interval: int = 64
    #: batched fast-path execution (docs/PERFORMANCE.md): burst-issue
    #: affine streams, cache empty dispatcher scans and specialise the
    #: compiled DFG.  A pure optimisation — cycles, stats and memory
    #: images are bit-identical to ``fast_path=False`` (enforced by
    #: tests/test_golden_stats.py and tests/test_property_fastpath.py).
    #: Automatically disabled while tracing or fault injection is active.
    fast_path: bool = True


@dataclass
class RunResult:
    """Everything one simulation produced."""

    stats: SimStats
    timeline: Timeline
    memory: MemorySystem
    scratchpad: Scratchpad

    @property
    def cycles(self) -> int:
        return self.stats.cycles


class SoftbrainSim:
    """One Softbrain unit plus its memory interface."""

    def __init__(
        self,
        program: StreamProgram,
        fabric: Optional[Fabric] = None,
        memory: Optional[MemorySystem] = None,
        params: Optional[SoftbrainParams] = None,
        trace: Optional[TraceSink] = None,
        unit_id: int = 0,
        faults: Optional["FaultInjector"] = None,  # noqa: F821
    ) -> None:
        self.program = program
        self.fabric = fabric or dnn_provisioned()
        self.params = params or SoftbrainParams()
        self.memory = memory or MemorySystem()
        self.scratchpad = Scratchpad(self.params.scratch_bytes)
        self.stats = SimStats()
        self.timeline = Timeline()
        self.trace = trace or NULL_SINK
        self.unit = unit_id
        if self.trace.enabled:
            self.scratchpad.attach_trace(
                self.trace, unit_id, lambda: self.cycle
            )
            # A shared MemorySystem may already carry a device-level sink
            # (multi-unit); otherwise this unit owns the memory events.
            if not self.memory.trace.enabled:
                self.memory.attach_trace(self.trace, unit_id)
        self._next_port_sample = 0
        self._sampled_ports: set = set()

        from .vector_port import VectorPortState

        self.input_ports: Dict[int, VectorPortState] = {
            p.port_id: VectorPortState(p) for p in self.fabric.input_ports
        }
        self.output_ports: Dict[int, VectorPortState] = {
            p.port_id: VectorPortState(p) for p in self.fabric.output_ports
        }
        self.indirect_ports: Dict[int, VectorPortState] = {
            p.port_id: VectorPortState(p) for p in self.fabric.indirect_ports
        }

        self.engines: Dict[str, StreamEngineBase] = {
            "mse_read": MemReadEngine(self, self.params.stream_table_size),
            "mse_write": MemWriteEngine(self, self.params.stream_table_size),
            "sse": ScratchEngine(self, self.params.stream_table_size),
            "rse": RecurrenceEngine(self, self.params.stream_table_size),
        }
        self._engine_list = list(self.engines.values())
        #: fast path active for this run?  Tracing needs the per-cycle
        #: event emissions and fault hooks need every slow-path call site,
        #: so either one forces the reference path.
        self.fast_path_on = (
            self.params.fast_path and not self.trace.enabled
            and faults is None
        )
        #: bumped whenever anything a dispatcher scan depends on changes
        self.dispatch_version = 0
        self.memory.register_unit()
        self.dispatcher = Dispatcher(self)
        self.core = ControlCore(self, program.items)
        self.cgra: Optional[CgraExecutor] = None
        self.config_pending = False
        self.outstanding: Dict[str, int] = {"scratch_rd": 0, "scratch_wr": 0}

        #: optional fault injector; every hook site tests ``is None`` only
        self.faults = faults
        if faults is not None:
            faults.attach(self)
            self.memory.attach_faults(faults)

        self._events: List = []  # heap of (cycle, seq, fn-or-None)
        self._event_seq = 0
        self.cycle = 0

    # -- services used by components --------------------------------------------

    def port_state(self, ref: PortRef):
        if ref.kind == "in":
            return self.input_ports[ref.port_id]
        if ref.kind == "out":
            return self.output_ports[ref.port_id]
        return self.indirect_ports[ref.port_id]

    def schedule(self, cycle: int, fn: Optional[Callable[[], None]]) -> None:
        """Schedule ``fn`` (or a pure wake-up when None) at ``cycle``."""
        self._event_seq += 1
        heapq.heappush(self._events, (cycle, self._event_seq, fn))

    def issue_to_engine(self, command: Command, trace) -> None:
        if isinstance(command, SDConfig):
            self.config_pending = True
        if isinstance(command, SDScratchPort):
            self.outstanding["scratch_rd"] += 1
        elif isinstance(command, (SDPortScratch, SDMemScratch)):
            self.outstanding["scratch_wr"] += 1
        self.engines[command.engine].accept(command, trace)

    def stream_completed(self, stream: ActiveStream, cycle: int) -> None:
        command = stream.command
        stream.trace.completed = cycle
        self.dispatch_version += 1
        if self.trace.enabled:
            self.trace.emit(TraceEvent(
                "command.complete", cycle, self.unit, "dispatcher",
                {
                    "index": stream.trace.index,
                    "command": stream.trace.label,
                    "engine": command.engine,
                    "latency": cycle - (stream.trace.dispatched or cycle),
                },
            ))
        if isinstance(command, SDScratchPort):
            self.outstanding["scratch_rd"] -= 1
        elif isinstance(command, (SDPortScratch, SDMemScratch)):
            self.outstanding["scratch_wr"] -= 1
        if not stream.early_released:
            for port, role in port_uses(command):
                self.dispatcher.release_port(port.kind, port.port_id, role)

    def apply_config(self, address: int) -> None:
        image = self.program.config_images.get(address)
        if image is None:
            raise ConfigError(f"no configuration image at 0x{address:x}")
        if (
            image.fabric.name != self.fabric.name
            or image.fabric.mesh.cols != self.fabric.mesh.cols
            or image.fabric.mesh.rows != self.fabric.mesh.rows
        ):
            raise ConfigError(
                f"config {image.dfg.name!r} was scheduled for fabric "
                f"{image.fabric.name!r}, unit has {self.fabric.name!r}"
            )
        self.cgra = CgraExecutor(self, image)
        self.config_pending = False
        self.dispatch_version += 1
        if self.trace.enabled:
            self.trace.emit(TraceEvent(
                "config.apply", self.cycle, self.unit, "softbrain",
                {"address": address, "dfg": image.dfg.name},
            ))

    # -- fast-path predicates (docs/PERFORMANCE.md) ------------------------------

    def dispatch_frozen_for(self, engines) -> bool:
        """No command targeting ``engines`` can leave the queue soon.

        A burst window is only legal while the set of streams competing
        for its resources cannot change.  That holds when (a) the core
        cannot enqueue anything new — it has finished, or an
        ``SD_Barrier_All`` already in the queue freezes it — and (b) no
        queued command targets one of ``engines``.
        """
        queue = self.dispatcher.queue
        if not self.core.finished and not any(
            isinstance(t.command, SDBarrierAll) for t in queue
        ):
            return False
        for trace in queue:
            if trace.command.engine in engines:
                return False
        return True

    def quiet_for_burst(self, engine) -> bool:
        """True when skipping this cycle is invisible outside ``engine``.

        Used by a bursting engine to decide whether the main loop may
        fast-forward over the rest of its window: every other component
        must be provably unable to act *or to count a stall* this cycle.
        """
        if not self.core.finished or self.dispatcher.queue:
            return False
        for other in self._engine_list:
            if other is not engine and other.streams:
                return False
        cgra = self.cgra
        if cgra is not None:
            inputs = cgra.inputs
            if not inputs:
                return False  # a sourceless DFG would fire every cycle
            for _, _width, port in inputs:
                if port.fifo:
                    return False  # visible stall counting (or a firing)
        return True

    def quiesced(self) -> bool:
        """All issued work is complete (used by SD_Barrier_All and config)."""
        if any(not engine.idle() for engine in self.engines.values()):
            return False
        if self.cgra is not None and self.cgra.in_flight:
            return False
        return not self._events

    # -- main loop ------------------------------------------------------------------

    def _finished(self) -> bool:
        return (
            self.core.finished
            and self.dispatcher.drained
            and self.quiesced()
        )

    def step(self, cycle: int) -> bool:
        """Advance all components one cycle; True if anything progressed."""
        self.cycle = cycle
        progress = False
        events = self._events
        while events and events[0][0] <= cycle:
            _, _, fn = heapq.heappop(events)
            if fn is not None:
                fn()
            progress = True
        if self.core.tick(cycle):
            progress = True
        if self.dispatcher.tick(cycle):
            progress = True
        if self.fast_path_on:
            # An engine with an empty stream table cannot progress and has
            # no per-cycle side effects; skip its tick entirely.
            for engine in self._engine_list:
                if engine.streams and engine.tick(cycle):
                    progress = True
        else:
            for engine in self._engine_list:
                if engine.tick(cycle):
                    progress = True
        if self.cgra is not None and self.cgra.tick(cycle):
            progress = True
        if self.trace.enabled and cycle >= self._next_port_sample:
            self._sample_ports(cycle)
        return progress

    def _sample_ports(self, cycle: int) -> None:
        """Emit ``port.sample`` depth probes for every active port.

        A port is sampled while it holds or awaits data, plus once more
        after it empties so depth series return to zero.
        """
        self._next_port_sample = cycle + self.params.trace_sample_interval
        emit = self.trace.emit
        for ports in (self.input_ports, self.output_ports,
                      self.indirect_ports):
            for state in ports.values():
                name = f"{state.spec.direction}{state.spec.port_id}"
                occupancy, reserved = state.occupancy, state.reserved
                if occupancy or reserved:
                    self._sampled_ports.add(name)
                elif name in self._sampled_ports:
                    self._sampled_ports.discard(name)
                else:
                    continue
                emit(TraceEvent(
                    "port.sample", cycle, self.unit, "ports",
                    {"port": name, "occupancy": occupancy,
                     "reserved": reserved},
                ))

    def finished(self) -> bool:
        return self._finished()

    def next_event_cycle(self) -> Optional[int]:
        return self._events[0][0] if self._events else None

    def finalize(self, cycle: int) -> RunResult:
        """Record final statistics after the last active cycle."""
        self.cycle = cycle
        self.stats.cycles = cycle
        self.stats.control_instructions = self.core.instructions_executed
        return RunResult(self.stats, self.timeline, self.memory, self.scratchpad)

    def run(self) -> RunResult:
        try:
            return self._run_loop()
        except SimError as exc:
            raise self._fail(exc) from None

    def _run_loop(self) -> RunResult:
        cycle = 0
        while True:
            progress = self.step(cycle)
            if self._finished():
                break
            if not progress:
                next_event = self.next_event_cycle()
                if next_event is None:
                    raise SimulationDeadlock(
                        f"deadlock at cycle {cycle} in program "
                        f"{self.program.name!r}"
                    )
                cycle = max(cycle + 1, next_event)
            else:
                cycle += 1
            if cycle > self.params.max_cycles:
                self.cycle = cycle
                raise SimulationLimit(
                    f"exceeded {self.params.max_cycles} cycles in "
                    f"{self.program.name!r}"
                )
        return self.finalize(cycle)

    def _fail(self, exc: SimError) -> SimError:
        """Annotate an escaping failure with context and a crash dump.

        Imported lazily so the zero-fault, no-failure fast path never pays
        for the diagnostics machinery.
        """
        from ..resilience.report import build_failure_report

        if exc.program_name is None:
            exc.program_name = self.program.name
        if exc.cycle is None:
            exc.cycle = self.cycle
        if exc.report is None:
            exc.report = build_failure_report(self, exc)
            message = exc.args[0] if exc.args else type(exc).__name__
            exc.args = (f"{message}\n{exc.report.render()}",)
        return exc


def run_program(
    program: StreamProgram,
    fabric: Optional[Fabric] = None,
    memory: Optional[MemorySystem] = None,
    params: Optional[SoftbrainParams] = None,
    trace: Optional[TraceSink] = None,
    faults: Optional["FaultInjector"] = None,  # noqa: F821
) -> RunResult:
    """Simulate a stream program on one Softbrain unit.

    ``trace`` attaches a :class:`repro.trace.TraceSink`; the caller owns
    the sink's lifetime (call ``sink.close()`` after the run).  ``faults``
    attaches a :class:`repro.resilience.FaultInjector` whose planned
    faults fire at their chosen cycles (``docs/RESILIENCE.md``).
    """
    sim = SoftbrainSim(program, fabric=fabric, memory=memory, params=params,
                       trace=trace, faults=faults)
    return sim.run()
