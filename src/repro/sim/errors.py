"""Unified simulator exception hierarchy.

Every failure the cycle-level simulator can raise derives from
:class:`SimError`, which carries the context a post-mortem needs:

* ``program_name`` / ``cycle`` — where the failure happened (filled in by
  the failing :class:`~repro.sim.softbrain.SoftbrainSim` if the raise site
  did not know them);
* ``report`` — a structured :class:`repro.resilience.FailureReport` crash
  dump (wait-for graph, component snapshots, trace tail, injected faults),
  attached by the simulator's failure path;
* ``kind`` — a stable short tag (``"deadlock"``, ``"limit"``, ...) used by
  crash-dump files and the fault-campaign classifier.

The base derives from :class:`RuntimeError` so callers written against the
old ad-hoc exceptions keep working; :class:`ScratchpadError` additionally
keeps its historical :class:`ValueError` parentage.
"""

from __future__ import annotations

from typing import Optional


class SimError(RuntimeError):
    """Base of every simulator-raised failure."""

    #: stable machine-readable failure class (overridden per subclass)
    kind: str = "error"

    def __init__(
        self,
        message: str = "",
        *,
        program_name: Optional[str] = None,
        cycle: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.program_name = program_name
        self.cycle = cycle
        #: structured crash dump, attached by the simulator's failure path
        self.report = None  # type: Optional[object]


class SimulationDeadlock(SimError):
    """No component can progress and no events are pending."""

    kind = "deadlock"


class SimulationLimit(SimError):
    """The cycle budget was exhausted before the program finished."""

    kind = "limit"


class PortRuntimeError(SimError):
    """FIFO protocol violation (overflow/underflow) — a simulator bug."""

    kind = "port-protocol"


class ScratchpadError(SimError, ValueError):
    """Out-of-range scratchpad access (the address space is private)."""

    kind = "scratch-bounds"


class ConfigError(SimError):
    """A CGRA configuration load failed (missing image, wrong fabric)."""

    kind = "config"


class StreamTableError(SimError):
    """A stream engine was handed a command without a free table entry."""

    kind = "stream-table"


class MemoryProtocolError(SimError):
    """The memory interface was over-subscribed within one cycle."""

    kind = "mem-protocol"


class IllegalCommandError(SimError):
    """A command word failed to decode or referenced unknown resources."""

    kind = "illegal-command"
