"""Figures 12-15: broadly-provisioned Softbrain vs per-workload ASICs.

Per workload: simulate the stream-dataflow program on the one
broadly-provisioned Softbrain unit; model the CPU baseline over the scalar
census; sweep the mini-Aladdin design space and select the iso-performance
Pareto point with power priority (Section 7.3's rule); then derive the four
figures' series — speedup, power efficiency and energy efficiency relative
to the OOO4 core, and ASIC area relative to Softbrain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..baselines.asic.dse import explore_design_space, select_iso_performance
from ..baselines.asic.power_area import AsicEstimate
from ..baselines.cpu import CpuParams, estimate_cpu_cycles
from ..power.model import estimate_power, softbrain_area_mm2
from ..workloads.common import run_and_verify
from ..workloads.machsuite import MACHSUITE
from .dnn_comparison import geomean

#: figure order in the paper's plots
WORKLOAD_ORDER = [
    "bfs",
    "spmv-crs",
    "spmv-ellpack",
    "stencil",
    "stencil3d",
    "gemm",
    "md",
    "viterbi",
]


@dataclass
class MachSuiteRow:
    """Everything Figures 12-15 need for one workload."""

    workload: str
    cpu_cycles: float
    cpu_power_mw: float
    softbrain_cycles: int
    softbrain_power_mw: float
    asic: AsicEstimate

    # -- Figure 12: performance relative to the OOO4 core -------------------
    @property
    def softbrain_speedup(self) -> float:
        return self.cpu_cycles / self.softbrain_cycles

    @property
    def asic_speedup(self) -> float:
        return self.cpu_cycles / self.asic.cycles

    # -- Figure 13: power efficiency ------------------------------------------
    @property
    def softbrain_power_eff(self) -> float:
        return self.cpu_power_mw / self.softbrain_power_mw

    @property
    def asic_power_eff(self) -> float:
        return self.cpu_power_mw / self.asic.power_mw

    # -- Figure 14: energy efficiency -------------------------------------------
    @property
    def softbrain_energy_eff(self) -> float:
        cpu_energy = self.cpu_power_mw * self.cpu_cycles
        sb_energy = self.softbrain_power_mw * self.softbrain_cycles
        return cpu_energy / sb_energy

    @property
    def asic_energy_eff(self) -> float:
        cpu_energy = self.cpu_power_mw * self.cpu_cycles
        return cpu_energy / (self.asic.power_mw * self.asic.cycles)

    # -- Figure 15: area relative to Softbrain -----------------------------------
    @property
    def asic_area_ratio(self) -> float:
        return self.asic.area_mm2 / softbrain_area_mm2()


def machsuite_comparison(
    workloads: Optional[List[str]] = None,
    cpu_params: CpuParams = CpuParams(),
) -> List[MachSuiteRow]:
    rows: List[MachSuiteRow] = []
    for name in workloads if workloads is not None else WORKLOAD_ORDER:
        builder, ddg_fn, census_fn, base_fn = MACHSUITE[name]
        built = builder()
        result = run_and_verify(built)
        power = estimate_power(result, built.fabric).total_mw

        census = census_fn()
        cpu = estimate_cpu_cycles(census, cpu_params)

        ddg = ddg_fn()
        points = explore_design_space(ddg, base=base_fn())
        asic = select_iso_performance(points, target_cycles=result.cycles)

        rows.append(
            MachSuiteRow(
                workload=name,
                cpu_cycles=cpu.cycles,
                cpu_power_mw=cpu_params.power_mw,
                softbrain_cycles=result.cycles,
                softbrain_power_mw=power,
                asic=asic,
            )
        )
    return rows


def _figure(rows: List[MachSuiteRow], title: str, sb_attr: str, asic_attr: str,
            unit: str = "x") -> str:
    lines = [title, f"{'workload':<14} {'Softbrain':>10} {'ASIC':>10}", "-" * 36]
    for row in rows:
        lines.append(
            f"{row.workload:<14} {getattr(row, sb_attr):>9.1f}{unit} "
            f"{getattr(row, asic_attr):>9.1f}{unit}"
        )
    lines.append("-" * 36)
    lines.append(
        f"{'GM':<14} "
        f"{geomean([getattr(r, sb_attr) for r in rows]):>9.1f}{unit} "
        f"{geomean([getattr(r, asic_attr) for r in rows]):>9.1f}{unit}"
    )
    return "\n".join(lines)


def format_figure12(rows: List[MachSuiteRow]) -> str:
    return _figure(
        rows,
        "Figure 12: speedup relative to OOO4 core",
        "softbrain_speedup",
        "asic_speedup",
    )


def format_figure13(rows: List[MachSuiteRow]) -> str:
    return _figure(
        rows,
        "Figure 13: power efficiency relative to OOO4 core",
        "softbrain_power_eff",
        "asic_power_eff",
    )


def format_figure14(rows: List[MachSuiteRow]) -> str:
    return _figure(
        rows,
        "Figure 14: energy efficiency relative to OOO4 core",
        "softbrain_energy_eff",
        "asic_energy_eff",
    )


def format_figure15(rows: List[MachSuiteRow]) -> str:
    lines = [
        "Figure 15: ASIC area relative to Softbrain (Softbrain = 1.0)",
        f"{'workload':<14} {'ASIC/Softbrain':>15}",
        "-" * 30,
    ]
    for row in rows:
        lines.append(f"{row.workload:<14} {row.asic_area_ratio:>15.3f}")
    ratios = [r.asic_area_ratio for r in rows]
    lines.append("-" * 30)
    lines.append(f"{'GM':<14} {geomean(ratios):>15.3f}")
    total = sum(r.asic.area_mm2 for r in rows)
    lines.append(
        f"all eight ASICs together / one Softbrain: "
        f"{total / softbrain_area_mm2():.2f}x"
    )
    return "\n".join(lines)
