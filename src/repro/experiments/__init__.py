"""Experiment harnesses: one per table/figure of the evaluation."""

from .area_power import Table3, format_table3, table3
from .capabilities import capability_scores, format_table1
from .dnn_comparison import (
    DnnRow,
    dnn_comparison,
    format_figure11,
    geomean,
    run_softbrain_dnn,
)
from .generality import format_table4, table4_rows
from .sensitivity import (
    SweepPoint,
    SweepResult,
    format_sweep,
    sweep_dram_bandwidth,
    sweep_port_depth,
    sweep_stream_table,
)
from .machsuite_comparison import (
    MachSuiteRow,
    format_figure12,
    format_figure13,
    format_figure14,
    format_figure15,
    machsuite_comparison,
)

__all__ = [
    "DnnRow",
    "MachSuiteRow",
    "Table3",
    "capability_scores",
    "dnn_comparison",
    "format_figure11",
    "format_figure12",
    "format_figure13",
    "format_figure14",
    "format_figure15",
    "format_table1",
    "format_table3",
    "format_table4",
    "geomean",
    "machsuite_comparison",
    "run_softbrain_dnn",
    "sweep_dram_bandwidth",
    "sweep_port_depth",
    "sweep_stream_table",
    "SweepPoint",
    "SweepResult",
    "format_sweep",
    "table3",
    "table4_rows",
]
