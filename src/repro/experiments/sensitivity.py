"""Design-parameter sensitivity sweeps for Softbrain.

Quantifies the hardware parameters Section 3.3/4 leaves as provisioning
choices: vector-port depth (recurrence buffering, latency tolerance),
DRAM bandwidth (the memory-bound workloads' ceiling), and the stream-table
size (concurrent streams per engine).  Each sweep re-simulates a workload
with one knob varied and everything else fixed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

from ..sim.memory import MemoryParams, MemorySystem
from ..sim.softbrain import SoftbrainParams, run_program
from ..workloads.common import BuiltWorkload


@dataclass
class SweepPoint:
    """One (knob value, cycles) sample."""

    value: int
    cycles: int


@dataclass
class SweepResult:
    knob: str
    workload: str
    points: List[SweepPoint]

    @property
    def best(self) -> SweepPoint:
        return min(self.points, key=lambda p: p.cycles)

    @property
    def worst(self) -> SweepPoint:
        return max(self.points, key=lambda p: p.cycles)

    @property
    def spread(self) -> float:
        return self.worst.cycles / max(1, self.best.cycles)


def _rerun(built: BuiltWorkload, fabric, params=None, memory_params=None) -> int:
    memory = MemorySystem(memory_params)
    memory.store = built.memory.store
    result = run_program(built.program, fabric=fabric, memory=memory,
                         params=params)
    built.memory = memory
    built.verify(memory)
    return result.cycles


def sweep_port_depth(
    make_workload: Callable[..., BuiltWorkload],
    fabric_factory: Callable[[int], object],
    depths: Sequence[int] = (2, 4, 8, 16, 32, 64),
) -> SweepResult:
    """Vector-port FIFO depth: latency tolerance of the port interface."""
    points = []
    name = ""
    for depth in depths:
        fabric = fabric_factory(depth)
        built = make_workload(fabric=fabric)
        name = built.name
        points.append(SweepPoint(depth, _rerun(built, fabric)))
    return SweepResult("port_depth", name, points)


def sweep_dram_bandwidth(
    make_workload: Callable[..., BuiltWorkload],
    gaps: Sequence[int] = (1, 2, 4, 8, 16, 32),
) -> SweepResult:
    """DRAM line gap (64 B per ``gap`` cycles): the streaming-BW ceiling."""
    points = []
    name = ""
    for gap in gaps:
        built = make_workload()
        name = built.name
        cycles = _rerun(
            built,
            built.fabric,
            memory_params=MemoryParams(dram_gap_cycles=gap),
        )
        points.append(SweepPoint(gap, cycles))
    return SweepResult("dram_gap_cycles", name, points)


def sweep_stream_table(
    make_workload: Callable[..., BuiltWorkload],
    sizes: Sequence[int] = (5, 6, 8, 12, 16),
) -> SweepResult:
    """Stream-table entries per engine: concurrent streams in flight."""
    points = []
    name = ""
    for size in sizes:
        built = make_workload()
        name = built.name
        cycles = _rerun(
            built,
            built.fabric,
            params=SoftbrainParams(stream_table_size=size),
        )
        points.append(SweepPoint(size, cycles))
    return SweepResult("stream_table_size", name, points)


def format_sweep(result: SweepResult) -> str:
    lines = [
        f"sensitivity: {result.knob} on {result.workload} "
        f"(spread {result.spread:.2f}x)",
        f"{result.knob:>18} {'cycles':>10}",
    ]
    for point in result.points:
        marker = "  <- best" if point is result.best else ""
        lines.append(f"{point.value:>18} {point.cycles:>10}{marker}")
    return "\n".join(lines)
