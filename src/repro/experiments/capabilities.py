"""Table 1: architectural specialization capability matrix.

The qualitative comparison of SIMD, SIMT, vector-thread, spatial-dataflow
and stream-dataflow architectures across the eight specialization
capabilities of Section 2.1, under the paper's stated assumption of
high-parallelism, small-footprint compute kernels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

ARCHITECTURES = (
    "SIMD",
    "SIMT",
    "Vector Threads",
    "Spatial Dataflow",
    "Stream-Dataflow",
)

#: (group, capability) -> per-architecture verdicts, in ARCHITECTURES order
CAPABILITIES: List[Tuple[str, str, Tuple[str, ...]]] = [
    (
        "Instr.",
        "Amortize instruction dispatch",
        ("Yes", "Yes", "Yes SIMD/ No Scalar", "Somewhat", "Yes"),
    ),
    (
        "Instr.",
        "Reduce control divergence penalty",
        ("No", "Somewhat", "Yes", "Yes", "Somewhat"),
    ),
    (
        "Instr.",
        "Avoids large register file access",
        ("No", "No", "No", "Yes", "Yes"),
    ),
    (
        "Memory",
        "Coalesce spatially-local memory access",
        ("Yes", "Yes", "Yes SIMD/ No Scalar", "No", "Yes"),
    ),
    (
        "Memory",
        "Avoid redundant addr. gen. for spatial access",
        ("Yes", "No", "Yes SIMD/ No Scalar", "No", "Yes"),
    ),
    (
        "Memory",
        "Provide efficient memory for data reuse",
        ("No", "Yes", "No", "No", "Yes"),
    ),
    (
        "Util.",
        "Avoid multi-issue logic",
        ("No", "Yes", "No", "Yes", "Yes"),
    ),
    (
        "Util.",
        "Avoid multi-threading logic and state",
        ("Yes", "No", "Yes", "Yes", "Yes"),
    ),
]


@dataclass
class CapabilityScore:
    """Summary score per architecture (Yes=1, Somewhat/mixed=0.5, No=0)."""

    architecture: str
    score: float
    max_score: int


def _verdict_value(verdict: str) -> float:
    if verdict == "Yes":
        return 1.0
    if verdict == "No":
        return 0.0
    return 0.5  # Somewhat / mixed SIMD-scalar


def capability_scores() -> List[CapabilityScore]:
    scores = []
    for idx, arch in enumerate(ARCHITECTURES):
        total = sum(_verdict_value(row[2][idx]) for row in CAPABILITIES)
        scores.append(CapabilityScore(arch, total, len(CAPABILITIES)))
    return scores


def format_table1() -> str:
    width = max(len(row[1]) for row in CAPABILITIES) + 2
    header = f"{'':{width}}" + "".join(f"{a:>18}" for a in ARCHITECTURES)
    lines = [
        "Table 1: architectural specialization capabilities",
        "(assumption: high-parallelism, small-footprint compute kernels)",
        header,
        "-" * len(header),
    ]
    group_seen = set()
    for group, capability, verdicts in CAPABILITIES:
        prefix = f"[{group}] " if group not in group_seen else "       "
        group_seen.add(group)
        label = (prefix + capability)[: width - 1]
        lines.append(f"{label:{width}}" + "".join(f"{v:>18}" for v in verdicts))
    lines.append("-" * len(header))
    scores = capability_scores()
    lines.append(
        f"{'score (Yes=1, partial=0.5)':{width}}"
        + "".join(f"{s.score:>17.1f}/{s.max_score}" for s in scores)
    )
    return "\n".join(lines)
