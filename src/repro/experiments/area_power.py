"""Table 3: area and power breakdown of Softbrain vs DianNao.

Reproduces the published accounting: per-component area and maximum-
activity power of one Softbrain unit (DNN-provisioned), the 8-unit total,
the DianNao reference figures, and the overhead ratios the abstract quotes
(~1.7x area, ~2.3x power).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..baselines.diannao import DIANNAO_AREA_MM2, DIANNAO_POWER_MW
from ..power.model import (
    SOFTBRAIN_COMPONENTS,
    softbrain_area_mm2,
    softbrain_peak_power_mw,
)

#: display labels matching the paper's Table 3 rows
COMPONENT_LABELS: Dict[str, str] = {
    "control_core": "Control Core + 16kB I & D$",
    "cgra_network": "CGRA Network",
    "fus": "FUs (4x5)",
    "stream_engines": "5x Stream Engines",
    "scratchpad": "Scratchpad (4KB)",
    "vector_ports": "Vector Ports (In & Out)",
}


@dataclass
class Table3:
    """The full Table 3 contents."""

    component_area_mm2: Dict[str, float]
    component_power_mw: Dict[str, float]
    unit_area_mm2: float
    unit_power_mw: float
    total_area_mm2: float
    total_power_mw: float
    diannao_area_mm2: float
    diannao_power_mw: float

    @property
    def area_overhead(self) -> float:
        return self.total_area_mm2 / self.diannao_area_mm2

    @property
    def power_overhead(self) -> float:
        return self.total_power_mw / self.diannao_power_mw


def table3(num_units: int = 8) -> Table3:
    areas = {n: c.area_mm2 for n, c in SOFTBRAIN_COMPONENTS.items()}
    powers = {n: c.peak_mw for n, c in SOFTBRAIN_COMPONENTS.items()}
    return Table3(
        component_area_mm2=areas,
        component_power_mw=powers,
        unit_area_mm2=softbrain_area_mm2(),
        unit_power_mw=softbrain_peak_power_mw(),
        total_area_mm2=softbrain_area_mm2(num_units),
        total_power_mw=softbrain_peak_power_mw(num_units),
        diannao_area_mm2=DIANNAO_AREA_MM2,
        diannao_power_mw=DIANNAO_POWER_MW,
    )


def format_table3(data: Table3, num_units: int = 8) -> str:
    lines = [
        "Table 3: area and power breakdown (55 nm, max DNN activity)",
        f"{'component':<28} {'area (mm^2)':>12} {'power (mW)':>11}",
        "-" * 53,
    ]
    for name, label in COMPONENT_LABELS.items():
        lines.append(
            f"{label:<28} {data.component_area_mm2[name]:>12.2f} "
            f"{data.component_power_mw[name]:>11.1f}"
        )
    lines.append("-" * 53)
    lines.append(
        f"{'1 Softbrain Total':<28} {data.unit_area_mm2:>12.2f} "
        f"{data.unit_power_mw:>11.1f}"
    )
    lines.append(
        f"{f'{num_units} Softbrain Units':<28} {data.total_area_mm2:>12.2f} "
        f"{data.total_power_mw:>11.1f}"
    )
    lines.append(
        f"{'DianNao':<28} {data.diannao_area_mm2:>12.2f} "
        f"{data.diannao_power_mw:>11.1f}"
    )
    lines.append("-" * 53)
    lines.append(
        f"{'Softbrain/DianNao overhead':<28} {data.area_overhead:>12.2f} "
        f"{data.power_overhead:>11.2f}"
    )
    return "\n".join(lines)
