"""Figure 11: DNN-layer speedups of GPU, DianNao and Softbrain over a CPU.

Softbrain runs as 8 units (Section 7.1's FU-count-matched configuration):
the workload is partitioned across units, unit 0 is simulated with its
1/8 share of DRAM bandwidth, and the slowest unit's cycles (the partitions
are symmetric, so unit 0's) stand for the whole device.  The CPU, GPU and
DianNao see the full workload through their analytical models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..baselines.cpu import estimate_cpu_cycles
from ..baselines.diannao import estimate_diannao_cycles
from ..baselines.gpu import estimate_gpu_cycles
from ..power.model import estimate_power
from ..sim.memory import MemoryParams, MemorySystem
from ..sim.softbrain import RunResult, run_program
from ..workloads.dnn import (
    DNN_LAYERS,
    DnnLayer,
    build_dnn_layer,
    gpu_workload,
    layer_cost,
)

NUM_UNITS = 8


def geomean(values: List[float]) -> float:
    if not values:
        return 0.0
    product = 1.0
    for v in values:
        product *= max(v, 1e-12)
    return product ** (1.0 / len(values))


@dataclass
class DnnRow:
    """One Figure 11 group: speedups over the CPU baseline."""

    layer: str
    cpu_cycles: float
    gpu_speedup: float
    diannao_speedup: float
    softbrain_speedup: float
    softbrain_cycles: float
    softbrain_power_mw: float  # all 8 units


def run_softbrain_dnn(layer: DnnLayer, num_units: int = NUM_UNITS) -> RunResult:
    """Simulate unit 0's share with its slice of DRAM bandwidth."""
    built = build_dnn_layer(layer, unit_id=0, num_units=num_units)
    base = MemoryParams()
    shared = MemoryParams(
        l2_size_bytes=base.l2_size_bytes,
        l2_hit_latency=base.l2_hit_latency,
        dram_latency=base.dram_latency,
        dram_gap_cycles=base.dram_gap_cycles * num_units,
        accepts_per_cycle=base.accepts_per_cycle,
    )
    memory = MemorySystem(shared)
    # Re-point the built workload's preloaded contents at the shared model.
    memory.store = built.memory.store
    # Regions read by every unit are fetched from DRAM once chip-wide and
    # shared through the cache; unit 0 sees them warm.
    for addr, nbytes in built.meta.get("shared_regions", []):
        memory.warm(addr, nbytes)
    result = run_program(built.program, fabric=built.fabric, memory=memory)
    built.memory = memory
    built.verify(memory)
    return result


def dnn_comparison(layers: Optional[List[DnnLayer]] = None) -> List[DnnRow]:
    """Compute every Figure 11 bar group."""
    rows: List[DnnRow] = []
    for layer in layers if layers is not None else DNN_LAYERS:
        cpu = estimate_cpu_cycles(layer.cpu_census()).cycles
        gpu = estimate_gpu_cycles(gpu_workload(layer))
        diannao = estimate_diannao_cycles(layer_cost(layer))
        result = run_softbrain_dnn(layer)
        built_fabric = result  # clarity: power uses the run's stats
        from ..cgra.fabric import dnn_provisioned

        power = estimate_power(result, dnn_provisioned()).total_mw * NUM_UNITS
        rows.append(
            DnnRow(
                layer=layer.name,
                cpu_cycles=cpu,
                gpu_speedup=cpu / gpu,
                diannao_speedup=cpu / diannao,
                softbrain_speedup=cpu / result.cycles,
                softbrain_cycles=result.cycles,
                softbrain_power_mw=power,
            )
        )
    return rows


def format_figure11(rows: List[DnnRow]) -> str:
    """Render the Figure 11 series (speedup over CPU, log-scale bars)."""
    lines = [
        f"{'layer':<10} {'GPU':>8} {'DianNao':>9} {'Softbrain':>10}",
        "-" * 40,
    ]
    for row in rows:
        lines.append(
            f"{row.layer:<10} {row.gpu_speedup:>7.1f}x "
            f"{row.diannao_speedup:>8.1f}x {row.softbrain_speedup:>9.1f}x"
        )
    lines.append("-" * 40)
    lines.append(
        f"{'GM':<10} {geomean([r.gpu_speedup for r in rows]):>7.1f}x "
        f"{geomean([r.diannao_speedup for r in rows]):>8.1f}x "
        f"{geomean([r.softbrain_speedup for r in rows]):>9.1f}x"
    )
    return "\n".join(lines)
