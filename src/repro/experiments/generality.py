"""Table 4: MachSuite workload characterisation on stream-dataflow.

Builds every implemented workload and derives its stream-pattern usage from
the actual commands, plus the paper's list of workloads that do not map to
the architecture and why.
"""

from __future__ import annotations

from typing import List

from ..workloads.characterization import (
    CharacterizationRow,
    UNSUITABLE,
    characterize,
)
from ..workloads.machsuite import MACHSUITE

#: the eight workloads the paper's Table 4 evaluates, in its order
PAPER_WORKLOADS = [
    "bfs", "gemm", "md", "spmv-crs", "spmv-ellpack",
    "stencil", "stencil3d", "viterbi",
]
#: additional workloads the paper lists as fitting the paradigm (footnote 3)
EXTENSION_WORKLOADS = ["fft", "nw", "backprop"]


def table4_rows(include_extensions: bool = False) -> List[CharacterizationRow]:
    names = PAPER_WORKLOADS + (EXTENSION_WORKLOADS if include_extensions else [])
    return [characterize(MACHSUITE[name][0]()) for name in names]


def format_table4(rows: List[CharacterizationRow]) -> str:
    lines = [
        "Table 4: workload characterisation",
        f"{'workload':<14} {'stream patterns':<46} {'datapath'}",
        "-" * 96,
    ]
    for row in rows:
        patterns = ", ".join(row.patterns)
        marker = " (extension)" if row.name in EXTENSION_WORKLOADS else ""
        lines.append(f"{row.name:<14} {patterns:<46} {row.datapath}{marker}")
    lines.append("")
    lines.append("Unsuitable codes:")
    for name, reason in UNSUITABLE:
        lines.append(f"  {name:<12} {reason}")
    return "\n".join(lines)
