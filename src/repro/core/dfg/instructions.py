"""Functional-unit operation semantics for stream-dataflow DFGs.

The Softbrain CGRA datapath is 64 bits wide and every functional unit can
operate on sub-words: one 64-bit lane, two 32-bit lanes or four 16-bit lanes
per firing (Section 4.4 of the paper).  This module defines the operation
registry shared by the DFG layer (software semantics), the CGRA hardware
model (latency/energy per op) and the spatial scheduler (which FU can run
which op).

All arithmetic is two's-complement integer arithmetic that wraps at the lane
width, mirroring fixed-point hardware.  Values travel between nodes as Python
ints holding the raw 64-bit word (``0 <= word < 2**64``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

WORD_BITS = 64
WORD_MASK = (1 << WORD_BITS) - 1

#: lane widths supported by the sub-word SIMD datapath
SUBWORD_WIDTHS = (64, 32, 16)


def mask_word(value: int) -> int:
    """Clamp an arbitrary Python int to a raw 64-bit word."""
    return value & WORD_MASK


def to_signed(value: int, bits: int) -> int:
    """Interpret the low ``bits`` of ``value`` as a two's-complement int."""
    value &= (1 << bits) - 1
    sign_bit = 1 << (bits - 1)
    return (value ^ sign_bit) - sign_bit


def from_signed(value: int, bits: int) -> int:
    """Encode a Python int as a ``bits``-wide two's-complement field."""
    return value & ((1 << bits) - 1)


def split_lanes(word: int, lane_bits: int) -> List[int]:
    """Split a 64-bit word into unsigned lanes, lowest lane first."""
    lane_mask = (1 << lane_bits) - 1
    count = WORD_BITS // lane_bits
    return [(word >> (i * lane_bits)) & lane_mask for i in range(count)]


def join_lanes(lanes: Sequence[int], lane_bits: int) -> int:
    """Pack unsigned lane values (lowest first) back into a 64-bit word."""
    lane_mask = (1 << lane_bits) - 1
    word = 0
    for i, lane in enumerate(lanes):
        word |= (lane & lane_mask) << (i * lane_bits)
    return word


def fixed_point_sigmoid(x: int, frac_bits: int = 8) -> int:
    """Piecewise-linear sigmoid on fixed-point input, as a 16-bit FU would.

    Uses the classic hard-sigmoid approximation ``clamp(x/4 + 0.5, 0, 1)``
    which is what small lookup/PLA sigmoid units (e.g. DianNao's NFU-3)
    implement.  Input and output are Q(frac_bits) fixed point.
    """
    one = 1 << frac_bits
    y = (x >> 2) + (one >> 1)
    if y < 0:
        return 0
    if y > one:
        return one
    return y


# ---------------------------------------------------------------------------
# Operation registry
# ---------------------------------------------------------------------------

#: a lane-level semantic function: (signed operands...) -> signed result
LaneFn = Callable[..., int]


@dataclass(frozen=True)
class Operation:
    """A functional-unit operation.

    Attributes:
        name: canonical lower-case mnemonic (``"add"``, ``"mul"``...).
        arity: number of data inputs.
        latency: pipeline depth in cycles on the CGRA.
        energy_pj: switching energy per firing in picojoules (55 nm-class,
            used by the power model's activity accounting).
        lane_fn: per-lane semantics on signed ints; result is re-encoded
            at the lane width with wraparound.
        commutative: whether operand order is irrelevant (scheduler freedom).
        whole_word: the op sees whole 64-bit words instead of lanes — used
            for horizontal reductions across sub-words (``hadd16`` etc.),
            where ``lane_bits`` selects the sub-word size being reduced.
    """

    name: str
    arity: int
    latency: int
    energy_pj: float
    lane_fn: LaneFn
    commutative: bool = False
    whole_word: bool = False

    def evaluate(self, operands: Sequence[int], lane_bits: int = 64) -> int:
        """Apply the op to raw 64-bit words, lane-wise at ``lane_bits``."""
        if len(operands) != self.arity:
            raise ValueError(
                f"{self.name} expects {self.arity} operands, got {len(operands)}"
            )
        if lane_bits not in SUBWORD_WIDTHS:
            raise ValueError(f"unsupported lane width {lane_bits}")
        if self.whole_word:
            signed_result = self.lane_fn(
                *(mask_word(w) for w in operands), lane_bits
            )
            return mask_word(signed_result)
        per_operand_lanes = [split_lanes(mask_word(w), lane_bits) for w in operands]
        out_lanes = []
        for lane_values in zip(*per_operand_lanes):
            signed = [to_signed(v, lane_bits) for v in lane_values]
            out_lanes.append(from_signed(self.lane_fn(*signed), lane_bits))
        return join_lanes(out_lanes, lane_bits)


_REGISTRY: Dict[str, Operation] = {}


def register(op: Operation) -> Operation:
    """Add an operation to the global registry (name must be unique)."""
    if op.name in _REGISTRY:
        raise ValueError(f"operation {op.name!r} already registered")
    _REGISTRY[op.name] = op
    return op


def get_operation(name: str) -> Operation:
    """Look up an operation by mnemonic; raises KeyError with suggestions."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown operation {name!r}; known: {known}") from None


def all_operations() -> Tuple[Operation, ...]:
    """All registered operations, sorted by name."""
    return tuple(_REGISTRY[k] for k in sorted(_REGISTRY))


def _div(a: int, b: int) -> int:
    # Hardware-style division: round toward zero, divide-by-zero yields -1
    # (all ones) like many DSP datapaths rather than trapping.
    if b == 0:
        return -1
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _mod(a: int, b: int) -> int:
    if b == 0:
        return a
    r = abs(a) % abs(b)
    return -r if a < 0 else r


def _rshift(a: int, b: int) -> int:
    return a >> (b & 63)


def _lshift(a: int, b: int) -> int:
    return a << (b & 63)


# Arithmetic -----------------------------------------------------------------
register(Operation("add", 2, 1, 0.10, lambda a, b: a + b, commutative=True))
register(Operation("sub", 2, 1, 0.10, lambda a, b: a - b))
register(Operation("mul", 2, 2, 0.80, lambda a, b: a * b, commutative=True))
register(Operation("div", 2, 8, 2.40, _div))
register(Operation("mod", 2, 8, 2.40, _mod))
register(Operation("abs", 1, 1, 0.05, abs))
register(Operation("neg", 1, 1, 0.05, lambda a: -a))
register(Operation("min", 2, 1, 0.10, min, commutative=True))
register(Operation("max", 2, 1, 0.10, max, commutative=True))

# Logic / shifts --------------------------------------------------------------
register(Operation("and", 2, 1, 0.03, lambda a, b: a & b, commutative=True))
register(Operation("or", 2, 1, 0.03, lambda a, b: a | b, commutative=True))
register(Operation("xor", 2, 1, 0.03, lambda a, b: a ^ b, commutative=True))
register(Operation("shl", 2, 1, 0.05, _lshift))
register(Operation("shr", 2, 1, 0.05, _rshift))

# Comparisons (produce 0/1 in the lane) ---------------------------------------
register(Operation("eq", 2, 1, 0.05, lambda a, b: int(a == b), commutative=True))
register(Operation("ne", 2, 1, 0.05, lambda a, b: int(a != b), commutative=True))
register(Operation("lt", 2, 1, 0.05, lambda a, b: int(a < b)))
register(Operation("le", 2, 1, 0.05, lambda a, b: int(a <= b)))
register(Operation("gt", 2, 1, 0.05, lambda a, b: int(a > b)))
register(Operation("ge", 2, 1, 0.05, lambda a, b: int(a >= b)))

# Predication: select(pred, a, b) == a if pred != 0 else b --------------------
register(Operation("select", 3, 1, 0.08, lambda p, a, b: a if p != 0 else b))

# Routing / identity ----------------------------------------------------------
register(Operation("pass", 1, 1, 0.01, lambda a: a))

# Horizontal reductions (whole-word: sum the sub-word lanes into a scalar) ----
def _hadd(word: int, lane_bits: int) -> int:
    return sum(to_signed(v, lane_bits) for v in split_lanes(word, lane_bits))


def _hmin(word: int, lane_bits: int) -> int:
    return min(to_signed(v, lane_bits) for v in split_lanes(word, lane_bits))


def _hmax(word: int, lane_bits: int) -> int:
    return max(to_signed(v, lane_bits) for v in split_lanes(word, lane_bits))


register(Operation("hadd", 1, 1, 0.15, _hadd, whole_word=True))
register(Operation("hmin", 1, 1, 0.12, _hmin, whole_word=True))
register(Operation("hmax", 1, 1, 0.12, _hmax, whole_word=True))

# Fused / special units --------------------------------------------------------
register(Operation("madd", 3, 2, 0.85, lambda a, b, c: a * b + c))
register(Operation("sigmoid", 1, 2, 0.40, fixed_point_sigmoid))
# Stateful accumulators ---------------------------------------------------------
# The lane function is a placeholder: accumulation is stateful and handled by
# the DFG/CGRA execution engines using ``accumulate_combine`` below.  The
# operands are ``(value, reset)``: each firing outputs ``combine(state,
# value)``; a nonzero reset returns the state to the op's identity afterwards
# (the paper's Figure 6 ``acc``/``Port_R`` idiom).
register(Operation("acc", 2, 1, 0.12, lambda a, r: a))
register(Operation("accmin", 2, 1, 0.12, lambda a, r: a))
register(Operation("accmax", 2, 1, 0.12, lambda a, r: a))

#: accumulator op name -> (combining op name, identity generator)
ACCUMULATOR_OPS = {"acc": "add", "accmin": "min", "accmax": "max"}


def accumulator_identity(op_name: str, lane_bits: int) -> int:
    """The 64-bit word holding the identity in every lane of an accumulator."""
    if op_name == "acc":
        return 0
    if op_name == "accmin":  # +max per lane
        lane = (1 << (lane_bits - 1)) - 1
    elif op_name == "accmax":  # -min per lane
        lane = 1 << (lane_bits - 1)
    else:
        raise KeyError(f"{op_name!r} is not an accumulator op")
    return join_lanes([lane] * (WORD_BITS // lane_bits), lane_bits)


def accumulate_combine(op_name: str, state: int, value: int, lane_bits: int) -> int:
    """Lane-wise combine of accumulator state with an incoming word."""
    combine = get_operation(ACCUMULATOR_OPS[op_name])
    return combine.evaluate([state, value], lane_bits)
