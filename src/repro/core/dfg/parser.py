"""Text format for dataflow graphs — the paper's "simple graph language".

Grammar (one statement per line, ``;`` starts a comment)::

    input  <Port> <width>
    <name> = <op> <operand> ... [@<lane_bits>]
    output <Port> <operand> ...

Operands are value names (``m0``), input-port lanes (``A.2`` — ``A`` alone
means lane 0), or immediates (``#42``).  ``@16`` / ``@32`` select sub-word
lane width.  Example (Figure 3's dot product)::

    input A 3
    input B 3
    m0 = mul A.0 B.0
    m1 = mul A.1 B.1
    m2 = mul A.2 B.2
    s0 = add m0 m1
    s1 = add s0 m2
    output C s1
"""

from __future__ import annotations

from typing import List

from .graph import Constant, Dfg, DfgError, Operand, ValueRef
from .validate import validate_dfg


class DfgParseError(DfgError):
    """Raised with a line number when the text form is malformed."""


def _parse_operand(token: str) -> Operand:
    if token.startswith("#"):
        try:
            return Constant(int(token[1:], 0))
        except ValueError:
            raise DfgParseError(f"bad immediate {token!r}") from None
    if "." in token:
        node, _, lane = token.partition(".")
        try:
            return ValueRef(node, int(lane))
        except ValueError:
            raise DfgParseError(f"bad lane in operand {token!r}") from None
    return ValueRef(token)


def parse_dfg(text: str, name: str = "dfg") -> Dfg:
    """Parse the text language into a validated :class:`Dfg`."""
    dfg = Dfg(name)
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";", 1)[0].strip()
        if not line:
            continue
        try:
            _parse_line(dfg, line)
        except (DfgError, KeyError) as exc:
            raise DfgParseError(f"line {lineno}: {exc}") from None
    validate_dfg(dfg)
    return dfg


def _parse_line(dfg: Dfg, line: str) -> None:
    tokens = line.split()
    if tokens[0] == "input":
        if len(tokens) not in (2, 3):
            raise DfgParseError(f"expected 'input NAME [WIDTH]', got {line!r}")
        width = int(tokens[2]) if len(tokens) == 3 else 1
        dfg.add_input(tokens[1], width)
        return
    if tokens[0] == "output":
        if len(tokens) < 3:
            raise DfgParseError(f"expected 'output NAME SRC...', got {line!r}")
        sources = []
        for token in tokens[2:]:
            operand = _parse_operand(token)
            if isinstance(operand, Constant):
                raise DfgParseError("output sources must be value refs")
            sources.append(operand)
        dfg.add_output(tokens[1], sources)
        return
    if len(tokens) >= 3 and tokens[1] == "=":
        value_name, mnemonic = tokens[0], tokens[2]
        lane_bits = 64
        operand_tokens = tokens[3:]
        if operand_tokens and operand_tokens[-1].startswith("@"):
            lane_bits = int(operand_tokens[-1][1:])
            operand_tokens = operand_tokens[:-1]
        operands = [_parse_operand(t) for t in operand_tokens]
        dfg.add_instruction(value_name, mnemonic, operands, lane_bits)
        return
    raise DfgParseError(f"unrecognised statement {line!r}")


def dfg_to_text(dfg: Dfg) -> str:
    """Serialise a DFG back to the text language (round-trips with parse)."""
    lines: List[str] = [f"; DFG {dfg.name}"]
    for port in dfg.inputs.values():
        lines.append(f"input {port.name} {port.width}")
    for inst in dfg.topological_order():
        operands = " ".join(str(o) for o in inst.operands)
        suffix = f" @{inst.lane_bits}" if inst.lane_bits != 64 else ""
        lines.append(f"{inst.name} = {inst.op.name} {operands}{suffix}")
    for port in dfg.outputs.values():
        sources = " ".join(str(s) for s in port.sources)
        lines.append(f"output {port.name} {sources}")
    return "\n".join(lines) + "\n"
