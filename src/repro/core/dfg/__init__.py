"""Dataflow-graph abstraction: the computation half of stream-dataflow."""

from .builder import DfgBuilder, PortHandle
from .graph import Constant, Dfg, DfgError, InputPort, Instruction, OutputPort, ValueRef
from .instructions import (
    Operation,
    all_operations,
    get_operation,
    mask_word,
    to_signed,
    from_signed,
)
from .parser import DfgParseError, dfg_to_text, parse_dfg
from .validate import validate_dfg

__all__ = [
    "Constant",
    "Dfg",
    "DfgBuilder",
    "DfgError",
    "DfgParseError",
    "InputPort",
    "Instruction",
    "Operation",
    "OutputPort",
    "PortHandle",
    "ValueRef",
    "all_operations",
    "dfg_to_text",
    "from_signed",
    "get_operation",
    "mask_word",
    "parse_dfg",
    "to_signed",
    "validate_dfg",
]
