"""Dataflow-graph (DFG) representation for stream-dataflow computation.

A DFG (Figure 3(a) of the paper) is an acyclic graph of instructions whose
only inputs and outputs are *named vector ports* with explicit widths.  For
every set of words arriving on the input ports, one set of words is produced
on the output ports — a *computation instance*.  Direct accumulation (an
instruction feeding a later instance of itself) is the single permitted form
of cycle and is modelled by the ``acc`` instruction, which keeps state across
instances and is reset under control of a dedicated reset operand (exactly
the ``Port_R``/``acc`` idiom of the paper's Figure 6 classifier example).

This module is pure software semantics: it knows nothing about the CGRA.
The spatial scheduler (:mod:`repro.core.compiler`) maps these graphs onto
hardware; the simulator (:mod:`repro.sim`) fires them instance-at-a-time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from .instructions import (
    ACCUMULATOR_OPS,
    Operation,
    accumulate_combine,
    accumulator_identity,
    get_operation,
    mask_word,
)


@dataclass(frozen=True)
class ValueRef:
    """Reference to one 64-bit word produced inside the DFG.

    ``node`` names either an instruction (lane must be 0) or an input port
    (lane selects which of the port's words).
    """

    node: str
    lane: int = 0

    def __str__(self) -> str:
        return self.node if self.lane == 0 else f"{self.node}.{self.lane}"


@dataclass(frozen=True)
class Constant:
    """An immediate operand stored in the FU configuration."""

    word: int

    def __str__(self) -> str:
        return f"#{self.word}"


Operand = Union[ValueRef, Constant]


@dataclass
class InputPort:
    """Named DFG input with an explicit vector width (words per instance)."""

    name: str
    width: int


@dataclass
class OutputPort:
    """Named DFG output; ``sources`` lists the word producers, lane order."""

    name: str
    width: int
    sources: List[ValueRef] = field(default_factory=list)


@dataclass
class Instruction:
    """One computation node.

    Attributes:
        name: unique value name within the DFG.
        op: the functional-unit operation.
        operands: data inputs, in operation order.
        lane_bits: sub-word lane width (64, 32 or 16).
        is_accumulator: True for ``acc`` nodes, which carry state across
            computation instances (operands are ``(value, reset)``).
    """

    name: str
    op: Operation
    operands: List[Operand]
    lane_bits: int = 64

    @property
    def is_accumulator(self) -> bool:
        return self.op.name in ACCUMULATOR_OPS


class DfgError(ValueError):
    """Raised for malformed dataflow graphs."""


class Dfg:
    """A complete dataflow graph with named vector ports.

    Build one directly, through :class:`~repro.core.dfg.builder.DfgBuilder`,
    or by parsing the text language (:mod:`repro.core.dfg.parser`).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.inputs: Dict[str, InputPort] = {}
        self.outputs: Dict[str, OutputPort] = {}
        self.instructions: Dict[str, Instruction] = {}
        self._order: List[str] = []  # insertion order of instructions
        self._topo_cache: Optional[List[Instruction]] = None

    # -- construction --------------------------------------------------------

    def add_input(self, name: str, width: int = 1) -> InputPort:
        self._check_fresh_name(name)
        if width < 1 or width > 8:
            raise DfgError(f"port {name!r}: width must be in 1..8, got {width}")
        port = InputPort(name, width)
        self.inputs[name] = port
        return port

    def add_output(self, name: str, sources: Sequence[ValueRef]) -> OutputPort:
        self._check_fresh_name(name)
        sources = list(sources)
        if not 1 <= len(sources) <= 8:
            raise DfgError(f"port {name!r}: width must be in 1..8")
        port = OutputPort(name, len(sources), sources)
        self.outputs[name] = port
        return port

    def add_instruction(
        self,
        name: str,
        op: Union[str, Operation],
        operands: Sequence[Operand],
        lane_bits: int = 64,
    ) -> Instruction:
        self._check_fresh_name(name)
        if isinstance(op, str):
            op = get_operation(op)
        inst = Instruction(name, op, list(operands), lane_bits)
        self.instructions[name] = inst
        self._order.append(name)
        self._topo_cache = None
        return inst

    def _check_fresh_name(self, name: str) -> None:
        if name in self.inputs or name in self.outputs or name in self.instructions:
            raise DfgError(f"name {name!r} already used in DFG {self.name!r}")

    # -- introspection --------------------------------------------------------

    @property
    def num_instructions(self) -> int:
        return len(self.instructions)

    def op_histogram(self) -> Dict[str, int]:
        """Count of instructions per operation mnemonic (for provisioning)."""
        histogram: Dict[str, int] = {}
        for inst in self.instructions.values():
            histogram[inst.op.name] = histogram.get(inst.op.name, 0) + 1
        return histogram

    def operand_refs(self, inst: Instruction) -> List[ValueRef]:
        return [o for o in inst.operands if isinstance(o, ValueRef)]

    def consumers(self) -> Dict[str, List[str]]:
        """Map from producer value name to the instruction names that read it."""
        out: Dict[str, List[str]] = {}
        for inst in self.instructions.values():
            for ref in self.operand_refs(inst):
                out.setdefault(ref.node, []).append(inst.name)
        return out

    def topological_order(self) -> List[Instruction]:
        """Instructions in dependence order (accumulator self-state excluded).

        Raises :class:`DfgError` on a true cycle, which the architecture
        forbids (general cyclic dependences must use recurrence streams).
        The result is memoised (the simulator calls this per firing).
        """
        if self._topo_cache is not None:
            return self._topo_cache
        indegree: Dict[str, int] = {n: 0 for n in self.instructions}
        successors: Dict[str, List[str]] = {n: [] for n in self.instructions}
        for inst in self.instructions.values():
            for ref in self.operand_refs(inst):
                if ref.node in self.instructions:
                    successors[ref.node].append(inst.name)
                    indegree[inst.name] += 1
        ready = [n for n in self._order if indegree[n] == 0]
        order: List[Instruction] = []
        while ready:
            name = ready.pop(0)
            order.append(self.instructions[name])
            for succ in successors[name]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self.instructions):
            cyclic = sorted(set(self.instructions) - {i.name for i in order})
            raise DfgError(f"DFG {self.name!r} has a cycle through {cyclic}")
        self._topo_cache = order
        return order

    def depth_by_node(self) -> Dict[str, int]:
        """Pipeline depth (cycles) at which each value is produced.

        Input-port words are available at depth 0; an instruction's result
        appears ``op.latency`` cycles after its deepest operand.  Routing
        delay is added later by the spatial scheduler.
        """
        depth: Dict[str, int] = {name: 0 for name in self.inputs}
        for inst in self.topological_order():
            operand_depth = 0
            for ref in self.operand_refs(inst):
                operand_depth = max(operand_depth, depth[ref.node])
            depth[inst.name] = operand_depth + inst.op.latency
        return depth

    @property
    def latency(self) -> int:
        """Compute latency of one instance, input ports to output ports."""
        depth = self.depth_by_node()
        latest = 0
        for port in self.outputs.values():
            for ref in port.sources:
                latest = max(latest, depth[ref.node])
        return latest

    # -- functional execution -------------------------------------------------

    def make_state(self) -> Dict[str, int]:
        """Fresh accumulator state (value name -> identity word)."""
        return {
            inst.name: accumulator_identity(inst.op.name, inst.lane_bits)
            for inst in self.instructions.values()
            if inst.is_accumulator
        }

    def execute(
        self,
        port_values: Mapping[str, Sequence[int]],
        state: Optional[Dict[str, int]] = None,
    ) -> Dict[str, List[int]]:
        """Run one computation instance.

        Args:
            port_values: words for every input port (list length == width).
            state: accumulator state from :meth:`make_state`; mutated in
                place.  Omit for stateless graphs.

        Returns:
            Words for every output port, by name.
        """
        values: Dict[Tuple[str, int], int] = {}
        for name, port in self.inputs.items():
            try:
                words = port_values[name]
            except KeyError:
                raise DfgError(f"missing input port {name!r}") from None
            if len(words) != port.width:
                raise DfgError(
                    f"port {name!r} expects {port.width} words, got {len(words)}"
                )
            for lane, word in enumerate(words):
                values[(name, lane)] = mask_word(word)

        def read(operand: Operand) -> int:
            if isinstance(operand, Constant):
                return mask_word(operand.word)
            return values[(operand.node, operand.lane)]

        for inst in self.topological_order():
            operand_words = [read(o) for o in inst.operands]
            if inst.is_accumulator:
                if state is None:
                    raise DfgError(
                        f"accumulator {inst.name!r} requires explicit state"
                    )
                value, reset = operand_words
                total = accumulate_combine(
                    inst.op.name, state[inst.name], value, inst.lane_bits
                )
                values[(inst.name, 0)] = total
                state[inst.name] = (
                    accumulator_identity(inst.op.name, inst.lane_bits)
                    if reset
                    else total
                )
            else:
                values[(inst.name, 0)] = inst.op.evaluate(
                    operand_words, inst.lane_bits
                )

        return {
            name: [values[(ref.node, ref.lane)] for ref in port.sources]
            for name, port in self.outputs.items()
        }

    def __repr__(self) -> str:
        return (
            f"Dfg({self.name!r}, inputs={list(self.inputs)}, "
            f"outputs={list(self.outputs)}, n_inst={self.num_instructions})"
        )
