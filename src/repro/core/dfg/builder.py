"""Fluent builder API for constructing dataflow graphs in Python.

The paper's workflow has developers write DFGs in a small graph language
(see :mod:`repro.core.dfg.parser`); this builder is the equivalent
programmatic interface, convenient for parameterised kernels such as the
N-way multiply-accumulate datapaths of Table 4::

    b = DfgBuilder("dotprod")
    a, w = b.input("A", 3), b.input("B", 3)
    products = [b.mul(a[i], w[i]) for i in range(3)]
    b.output("C", b.reduce_tree("add", products))
    dfg = b.build()
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from .graph import Constant, Dfg, Operand, ValueRef
from .validate import validate_dfg


class PortHandle:
    """Handle to a DFG input port; index it to get per-lane value refs."""

    def __init__(self, name: str, width: int) -> None:
        self.name = name
        self.width = width

    def __getitem__(self, lane: int) -> ValueRef:
        if not 0 <= lane < self.width:
            raise IndexError(f"port {self.name!r} has width {self.width}")
        return ValueRef(self.name, lane)

    def __iter__(self):
        return (self[i] for i in range(self.width))

    def __len__(self) -> int:
        return self.width


OperandLike = Union[ValueRef, Constant, PortHandle, int]


def as_operand(value: OperandLike) -> Operand:
    """Coerce ints to constants and 1-wide port handles to their lane 0."""
    if isinstance(value, int):
        return Constant(value)
    if isinstance(value, PortHandle):
        return value[0]
    return value


class DfgBuilder:
    """Incrementally builds (and finally validates) a :class:`Dfg`."""

    def __init__(self, name: str) -> None:
        self._dfg = Dfg(name)
        self._counter = 0

    def _fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    def input(self, name: str, width: int = 1) -> PortHandle:
        """Declare a named input port and return its lane handle."""
        self._dfg.add_input(name, width)
        return PortHandle(name, width)

    def op(
        self,
        mnemonic: str,
        *operands: OperandLike,
        name: Optional[str] = None,
        lane_bits: int = 64,
    ) -> ValueRef:
        """Add an instruction; returns a ref to its result."""
        inst_name = name or self._fresh(f"_{mnemonic}_")
        self._dfg.add_instruction(
            inst_name, mnemonic, [as_operand(o) for o in operands], lane_bits
        )
        return ValueRef(inst_name)

    # Convenience wrappers for the common mnemonics -------------------------

    def add(self, a: OperandLike, b: OperandLike, **kw) -> ValueRef:
        return self.op("add", a, b, **kw)

    def sub(self, a: OperandLike, b: OperandLike, **kw) -> ValueRef:
        return self.op("sub", a, b, **kw)

    def mul(self, a: OperandLike, b: OperandLike, **kw) -> ValueRef:
        return self.op("mul", a, b, **kw)

    def min(self, a: OperandLike, b: OperandLike, **kw) -> ValueRef:
        return self.op("min", a, b, **kw)

    def max(self, a: OperandLike, b: OperandLike, **kw) -> ValueRef:
        return self.op("max", a, b, **kw)

    def select(self, p: OperandLike, a: OperandLike, b: OperandLike, **kw) -> ValueRef:
        return self.op("select", p, a, b, **kw)

    def sigmoid(self, a: OperandLike, **kw) -> ValueRef:
        return self.op("sigmoid", a, **kw)

    def accumulate(
        self, value: OperandLike, reset: OperandLike, name: Optional[str] = None
    ) -> ValueRef:
        """Stateful add-accumulator; ``reset`` nonzero clears after output."""
        return self.op("acc", value, reset, name=name)

    def reduce_tree(self, mnemonic: str, values: Sequence[OperandLike]) -> ValueRef:
        """Balanced binary reduction tree (the paper's adder/min trees)."""
        refs: List[Operand] = [as_operand(v) for v in values]
        if not refs:
            raise ValueError("reduce_tree needs at least one value")
        while len(refs) > 1:
            next_level: List[Operand] = []
            for i in range(0, len(refs) - 1, 2):
                next_level.append(self.op(mnemonic, refs[i], refs[i + 1]))
            if len(refs) % 2:
                next_level.append(refs[-1])
            refs = next_level
        result = refs[0]
        if isinstance(result, Constant):
            return self.op("pass", result)
        return result  # type: ignore[return-value]

    def output(self, name: str, sources: Union[OperandLike, Sequence[OperandLike]]):
        """Declare an output port fed by one or more value refs."""
        if isinstance(sources, (ValueRef, Constant, PortHandle, int)):
            sources = [sources]
        refs: List[ValueRef] = []
        for source in sources:
            operand = as_operand(source)
            if isinstance(operand, Constant):
                operand = self.op("pass", operand)
            refs.append(operand)
        self._dfg.add_output(name, refs)

    def build(self, validate: bool = True) -> Dfg:
        """Finish construction, optionally running full validation."""
        if validate:
            validate_dfg(self._dfg)
        return self._dfg
