"""Structural validation of dataflow graphs.

The hardware/software interface imposes real constraints that the paper
calls out in Section 3.3: vector ports have maximum widths, the computation
substrate is acyclic apart from direct accumulation, and every operand must
resolve to a produced value.  The compiler and simulator both assume a graph
that has passed :func:`validate_dfg`.
"""

from __future__ import annotations

from typing import List

from .graph import Constant, Dfg, DfgError, ValueRef
from .instructions import SUBWORD_WIDTHS


def validate_dfg(dfg: Dfg) -> None:
    """Raise :class:`DfgError` describing every structural problem found."""
    problems: List[str] = []

    producers = set(dfg.inputs) | set(dfg.instructions)

    for inst in dfg.instructions.values():
        if len(inst.operands) != inst.op.arity:
            problems.append(
                f"{inst.name}: op {inst.op.name!r} wants {inst.op.arity} "
                f"operands, has {len(inst.operands)}"
            )
        if inst.lane_bits not in SUBWORD_WIDTHS:
            problems.append(f"{inst.name}: bad lane width {inst.lane_bits}")
        for operand in inst.operands:
            if isinstance(operand, Constant):
                continue
            problems.extend(_check_ref(dfg, producers, inst.name, operand))

    for port in dfg.outputs.values():
        if len(port.sources) != port.width:
            problems.append(
                f"output {port.name}: width {port.width} != "
                f"{len(port.sources)} sources"
            )
        for ref in port.sources:
            problems.extend(_check_ref(dfg, producers, f"output {port.name}", ref))

    if not dfg.outputs:
        problems.append("DFG has no output ports")
    if not dfg.inputs:
        problems.append("DFG has no input ports")

    # Topological order raises on true cycles; accumulators are legal.
    if not problems:
        dfg.topological_order()

    unread = _unread_values(dfg)
    if unread:
        problems.append(f"values never consumed: {sorted(unread)}")

    if problems:
        raise DfgError(
            f"DFG {dfg.name!r} failed validation:\n  " + "\n  ".join(problems)
        )


def _check_ref(dfg: Dfg, producers: set, context: str, ref: ValueRef) -> List[str]:
    if ref.node not in producers:
        return [f"{context}: reads undefined value {ref}"]
    if ref.node in dfg.inputs:
        width = dfg.inputs[ref.node].width
        if not 0 <= ref.lane < width:
            return [f"{context}: lane {ref.lane} out of range for port {ref.node}"]
    elif ref.lane != 0:
        return [f"{context}: instruction {ref.node} has a single output lane"]
    return []


def _unread_values(dfg: Dfg) -> set:
    """Instruction results that feed neither another instruction nor an output."""
    read = set()
    for inst in dfg.instructions.values():
        for ref in dfg.operand_refs(inst):
            read.add(ref.node)
    for port in dfg.outputs.values():
        for ref in port.sources:
            read.add(ref.node)
    return set(dfg.instructions) - read
