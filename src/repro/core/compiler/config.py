"""Scheduler output: the configuration image for one DFG on one fabric.

A :class:`CgraConfig` is what ``SD_Config`` loads (Section 3.3): instruction
placement, routed edges, vector-port mapping and delay-FIFO settings.  The
simulator consumes its ``latency`` (full pipeline depth through the fabric)
and ``port_map``; the power model consumes its placement/route statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ...cgra.fabric import Fabric
from ...cgra.network import Coord, Link
from ..dfg.graph import Dfg

#: identifies one routed dataflow edge: (producer value, consumer, slot).
#: ``consumer`` is an instruction name or ``"out:<port>"``; slot is the
#: operand index (or output-port lane).
EdgeKey = Tuple[str, str, int]


@dataclass
class RoutedEdge:
    """One routed, delay-matched dataflow edge."""

    key: EdgeKey
    src: Coord
    dst: Coord
    links: List[Link]
    extra_delay: int = 0

    @property
    def hops(self) -> int:
        return len(self.links)

    @property
    def latency(self) -> int:
        """Edge traversal time: hops + one local switch + matching delay."""
        return self.hops + 1 + self.extra_delay


@dataclass
class CgraConfig:
    """A complete, valid mapping of a DFG onto a fabric."""

    dfg: Dfg
    fabric: Fabric
    placement: Dict[str, Coord]
    port_map: Dict[str, int]  # DFG port name -> hw port id (per direction)
    edges: Dict[EdgeKey, RoutedEdge]
    latency: int
    initiation_interval: int = 1

    @property
    def config_size_bytes(self) -> int:
        return self.fabric.config_size_bytes

    @property
    def total_hops(self) -> int:
        return sum(edge.hops for edge in self.edges.values())

    @property
    def total_extra_delay(self) -> int:
        return sum(edge.extra_delay for edge in self.edges.values())

    def hw_input_port(self, dfg_port: str) -> int:
        if dfg_port not in self.dfg.inputs:
            raise KeyError(f"{dfg_port!r} is not an input port of {self.dfg.name}")
        return self.port_map[dfg_port]

    def hw_output_port(self, dfg_port: str) -> int:
        if dfg_port not in self.dfg.outputs:
            raise KeyError(f"{dfg_port!r} is not an output port of {self.dfg.name}")
        return self.port_map[dfg_port]

    def active_fus(self) -> Dict[str, int]:
        """Ops actually placed, by FU flavour — drives dynamic power."""
        histogram: Dict[str, int] = {}
        for inst_name, coord in self.placement.items():
            fu_name = self.fabric.pes[coord].fu.name
            histogram[fu_name] = histogram.get(fu_name, 0) + 1
        return histogram

    def summary(self) -> str:
        return (
            f"{self.dfg.name} on {self.fabric.name}: "
            f"{len(self.placement)} insts, {len(self.edges)} edges, "
            f"{self.total_hops} hops, latency {self.latency}, "
            f"II {self.initiation_interval}"
        )
