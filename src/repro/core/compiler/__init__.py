"""DFG-to-CGRA spatial compiler (place, route, delay-match)."""

from .config import CgraConfig, EdgeKey, RoutedEdge
from .delay_match import DelayMatchError, DelaySolution, compute_delays
from .routing import RouterState, RoutingError, route_value
from .scheduler import SchedulingError, map_ports, schedule

__all__ = [
    "CgraConfig",
    "DelayMatchError",
    "DelaySolution",
    "EdgeKey",
    "RoutedEdge",
    "RouterState",
    "RoutingError",
    "SchedulingError",
    "compute_delays",
    "map_ports",
    "route_value",
    "schedule",
]
