"""Delay matching for the flow-control-free CGRA mesh.

Softbrain's mesh has no flow control (the paper halved network area by
removing it), so correctness requires that all operands of an instruction
arrive in the *same cycle*, and that all lanes of an output vector port
exit together.  The compiler guarantees this by programming the per-input
delay FIFOs; this module computes the required settings and the resulting
full-pipeline latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from ...cgra.pe import MAX_INPUT_DELAY
from ..dfg.graph import Constant, Dfg, ValueRef
from .config import EdgeKey


class DelayMatchError(RuntimeError):
    """A required operand delay exceeds the hardware FIFO depth."""


@dataclass
class DelaySolution:
    """Delay-FIFO settings plus derived timing for a placed DFG.

    Attributes:
        extra_delay: cycles of programmed delay per edge.
        fire_time: cycle each instruction fires (inputs injected at 0).
        latency: cycles from input-port release to the last output-port word.
    """

    extra_delay: Dict[EdgeKey, int]
    fire_time: Dict[str, int]
    latency: int


def _producer_value(ref: ValueRef) -> str:
    return str(ref)


def compute_delays(
    dfg: Dfg,
    edge_hops: Mapping[EdgeKey, int],
    max_delay: int = MAX_INPUT_DELAY,
) -> DelaySolution:
    """Solve delay matching given per-edge hop counts.

    ``edge_hops`` must contain every dataflow edge: operand edges keyed
    ``(str(ref), inst_name, operand_index)`` and output edges keyed
    ``(str(ref), "out:<port>", lane)``.  Edge raw latency is
    ``hops + 1`` (one local-switch traversal).

    Raises :class:`DelayMatchError` if any required delay exceeds
    ``max_delay``.
    """
    ready: Dict[str, int] = {}  # value name -> cycle the value is produced
    for port_name, port in dfg.inputs.items():
        ready[port_name] = 0  # str() form of a lane-0 ref
        for lane in range(port.width):
            ready[f"{port_name}.{lane}"] = 0

    extra_delay: Dict[EdgeKey, int] = {}
    fire_time: Dict[str, int] = {}

    for inst in dfg.topological_order():
        arrivals: Dict[EdgeKey, int] = {}
        for slot, operand in enumerate(inst.operands):
            if isinstance(operand, Constant):
                continue  # constants live in the PE configuration
            key = (_producer_value(operand), inst.name, slot)
            if key not in edge_hops:
                raise KeyError(f"missing route for edge {key}")
            arrivals[key] = ready[_producer_value(operand)] + edge_hops[key] + 1
        fire = max(arrivals.values(), default=0)
        for key, arrival in arrivals.items():
            needed = fire - arrival
            if needed > max_delay:
                raise DelayMatchError(
                    f"edge {key} needs {needed} delay cycles (max {max_delay})"
                )
            extra_delay[key] = needed
        fire_time[inst.name] = fire
        ready[inst.name] = fire + inst.op.latency

    latency = 0
    for port_name, port in dfg.outputs.items():
        arrivals: Dict[EdgeKey, int] = {}
        for lane, ref in enumerate(port.sources):
            key = (_producer_value(ref), f"out:{port_name}", lane)
            if key not in edge_hops:
                raise KeyError(f"missing route for edge {key}")
            arrivals[key] = ready[_producer_value(ref)] + edge_hops[key] + 1
        port_exit = max(arrivals.values())
        for key, arrival in arrivals.items():
            needed = port_exit - arrival
            if needed > max_delay:
                raise DelayMatchError(
                    f"edge {key} needs {needed} delay cycles (max {max_delay})"
                )
            extra_delay[key] = needed
        latency = max(latency, port_exit)

    return DelaySolution(extra_delay, fire_time, latency)
