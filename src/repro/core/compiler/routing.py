"""Router for DFG edges on the circuit-switched mesh.

Since the network is circuit-switched, each channel of a directed link is
owned by one *producer value* for the whole phase.  Fan-out therefore routes
as a multicast tree: a link already carrying a value may be reused by the
same value for free, but carrying a second value consumes another channel.
The router is a congestion-aware BFS (uniform link cost, first-found
shortest path avoiding exhausted links).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Set

from ...cgra.network import Coord, Link, MeshNetwork


class RoutingError(RuntimeError):
    """Raised when an edge cannot be routed within channel capacity."""


@dataclass
class RouterState:
    """Tracks channel occupancy per directed link during routing.

    ``occupancy[link]`` is the set of producer values using that link; its
    size may not exceed ``mesh.channels``.
    """

    mesh: MeshNetwork
    occupancy: Dict[Link, Set[str]] = field(default_factory=dict)

    def users(self, link: Link) -> Set[str]:
        return self.occupancy.setdefault(link, set())

    def can_use(self, link: Link, producer: str) -> bool:
        users = self.users(link)
        return producer in users or len(users) < self.mesh.channels

    def claim_path(self, path: List[Link], producer: str) -> None:
        for link in path:
            self.users(link).add(producer)

    def total_channels_used(self) -> int:
        return sum(len(users) for users in self.occupancy.values())


def route_value(
    state: RouterState,
    producer: str,
    src: Coord,
    dst: Coord,
) -> List[Link]:
    """Find a shortest path ``src`` -> ``dst`` respecting channel capacity.

    Links already carrying ``producer`` cost nothing extra (multicast), so
    BFS layers are ordered to prefer reuse.  Returns the link list (empty
    when ``src == dst``); raises :class:`RoutingError` when no path exists.
    """
    if src == dst:
        return []
    mesh = state.mesh
    # 0-1 BFS: reused links cost 0, fresh channel claims cost 1.
    best: Dict[Coord, int] = {src: 0}
    parent: Dict[Coord, Link] = {}
    queue: deque = deque([(0, src)])
    while queue:
        cost, coord = queue.popleft()
        if cost > best.get(coord, float("inf")):
            continue
        if coord == dst:
            break
        for nbr in mesh.neighbors(coord):
            link = (coord, nbr)
            if not state.can_use(link, producer):
                continue
            step = 0 if producer in state.users(link) else 1
            new_cost = cost + step
            if new_cost < best.get(nbr, float("inf")):
                best[nbr] = new_cost
                parent[nbr] = link
                if step == 0:
                    queue.appendleft((new_cost, nbr))
                else:
                    queue.append((new_cost, nbr))
    if dst not in parent and src != dst:
        raise RoutingError(
            f"no route for {producer!r} from {src} to {dst} "
            f"(channels={mesh.channels})"
        )
    path: List[Link] = []
    coord = dst
    while coord != src:
        link = parent[coord]
        path.append(link)
        coord = link[0]
    path.reverse()
    state.claim_path(path, producer)
    return path
