"""Spatial scheduler: place and route a DFG onto a CGRA fabric.

The paper's toolchain uses an ILP-based constraint scheduler [22]; we use a
greedy constructive placement refined by simulated annealing, followed by
congestion-aware routing and delay matching.  Optimality only shifts small
constant factors (a hop or two of pipeline latency); any valid mapping has
initiation interval 1 on the fully-pipelined fabric, which is what the
performance results depend on.

Entry point: :func:`schedule`.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ...cgra.fabric import Fabric, HwVectorPort
from ...cgra.network import Coord
from ..dfg.graph import Constant, Dfg, ValueRef
from .config import CgraConfig, EdgeKey, RoutedEdge
from .delay_match import DelayMatchError, compute_delays
from .routing import RouterState, RoutingError, route_value


class SchedulingError(RuntimeError):
    """The DFG cannot be mapped to the fabric (capacity or capability)."""


# ---------------------------------------------------------------------------
# Vector-port assignment
# ---------------------------------------------------------------------------

def map_ports(dfg: Dfg, fabric: Fabric) -> Dict[str, int]:
    """Assign each DFG port the narrowest sufficient hardware vector port.

    Widest DFG ports are assigned first so they get the scarce wide hardware
    ports; raises :class:`SchedulingError` when no port is wide enough or
    all candidates are taken.
    """
    port_map: Dict[str, int] = {}
    for direction, dfg_ports in (("in", dfg.inputs), ("out", dfg.outputs)):
        available = sorted(
            fabric.ports_in(direction), key=lambda p: (p.width, p.port_id)
        )
        taken: set = set()
        for name in sorted(dfg_ports, key=lambda n: -dfg_ports[n].width):
            width = dfg_ports[name].width
            chosen: Optional[HwVectorPort] = None
            for hw_port in available:
                if hw_port.port_id in taken or hw_port.width < width:
                    continue
                chosen = hw_port
                break
            if chosen is None:
                raise SchedulingError(
                    f"no free {direction} vector port of width >= {width} "
                    f"for DFG port {name!r} on {fabric.name!r}"
                )
            taken.add(chosen.port_id)
            port_map[name] = chosen.port_id
    return port_map


# ---------------------------------------------------------------------------
# Placement
# ---------------------------------------------------------------------------

def _value_coord(
    dfg: Dfg,
    fabric: Fabric,
    port_map: Dict[str, int],
    placement: Dict[str, Coord],
    ref: ValueRef,
) -> Optional[Coord]:
    """Grid coordinate where a value becomes available (None if unplaced)."""
    if ref.node in dfg.inputs:
        hw_port = fabric.find_port("in", port_map[ref.node])
        return hw_port.attach[ref.lane % len(hw_port.attach)]
    return placement.get(ref.node)


def _placement_cost(
    dfg: Dfg,
    fabric: Fabric,
    port_map: Dict[str, int],
    placement: Dict[str, Coord],
) -> int:
    """Total manhattan wirelength of all dataflow edges (route estimate)."""
    mesh = fabric.mesh
    cost = 0
    for inst in dfg.instructions.values():
        dst = placement.get(inst.name)
        if dst is None:
            continue
        for ref in dfg.operand_refs(inst):
            src = _value_coord(dfg, fabric, port_map, placement, ref)
            if src is not None:
                cost += mesh.manhattan(src, dst)
    for port_name, port in dfg.outputs.items():
        hw_port = fabric.find_port("out", port_map[port_name])
        for lane, ref in enumerate(port.sources):
            src = _value_coord(dfg, fabric, port_map, placement, ref)
            dst = hw_port.attach[lane % len(hw_port.attach)]
            if src is not None:
                cost += mesh.manhattan(src, dst)
    return cost


def _greedy_placement(
    dfg: Dfg,
    fabric: Fabric,
    port_map: Dict[str, int],
    rng: random.Random,
) -> Dict[str, Coord]:
    """Topological-order constructive placement minimising wirelength."""
    placement: Dict[str, Coord] = {}
    occupied: set = set()
    mesh = fabric.mesh
    consumers = dfg.consumers()

    for inst in dfg.topological_order():
        candidates = [
            pe.coord
            for pe in fabric.pes_supporting(inst.op.name)
            if pe.coord not in occupied
        ]
        if not candidates:
            raise SchedulingError(
                f"no free FU for op {inst.op.name!r} "
                f"(instruction {inst.name!r}) on fabric {fabric.name!r}"
            )
        source_coords = [
            coord
            for ref in dfg.operand_refs(inst)
            if (coord := _value_coord(dfg, fabric, port_map, placement, ref))
            is not None
        ]
        # Pull instructions that feed outputs toward the bottom edge.
        feeds_output = any(
            ref.node == inst.name
            for port in dfg.outputs.values()
            for ref in port.sources
        )

        def score(coord: Coord) -> Tuple[int, int, int, float]:
            # Prefer the least-capable FU that supports the op, so scarce
            # specialised units (sigmoid, divide) stay free for the ops
            # that actually need them.
            richness = len(fabric.pes[coord].fu.ops)
            wire = sum(mesh.manhattan(src, coord) for src in source_coords)
            pull = (mesh.rows - 1 - coord[1]) if feeds_output else 0
            # Leave room below for downstream consumers.
            downstream = len(consumers.get(inst.name, []))
            headroom = coord[1] if downstream else 0
            return (richness, wire + pull, headroom, rng.random())

        best = min(candidates, key=score)
        placement[inst.name] = best
        occupied.add(best)
    return placement


def _anneal_placement(
    dfg: Dfg,
    fabric: Fabric,
    port_map: Dict[str, int],
    placement: Dict[str, Coord],
    rng: random.Random,
    iterations: int,
) -> Dict[str, Coord]:
    """Simulated-annealing refinement by pairwise swaps and moves."""
    if not placement or iterations <= 0:
        return placement
    placement = dict(placement)
    names = list(placement)
    cost = _placement_cost(dfg, fabric, port_map, placement)
    best, best_cost = dict(placement), cost
    temperature = max(2.0, cost / 4.0)
    cooling = 0.995

    free_by_op: Dict[str, List[Coord]] = {}
    for inst in dfg.instructions.values():
        coords = [pe.coord for pe in fabric.pes_supporting(inst.op.name)]
        free_by_op[inst.name] = coords

    for _ in range(iterations):
        name = rng.choice(names)
        old = placement[name]
        target = rng.choice(free_by_op[name])
        if target == old:
            continue
        occupant = next(
            (n for n, c in placement.items() if c == target), None
        )
        if occupant is not None and not fabric.pes[old].supports(
            dfg.instructions[occupant].op.name
        ):
            continue  # swap would strand the occupant on an unsupported FU
        placement[name] = target
        if occupant is not None:
            placement[occupant] = old
        new_cost = _placement_cost(dfg, fabric, port_map, placement)
        delta = new_cost - cost
        if delta <= 0 or rng.random() < pow(2.718, -delta / temperature):
            cost = new_cost
            if cost < best_cost:
                best, best_cost = dict(placement), cost
        else:  # revert
            placement[name] = old
            if occupant is not None:
                placement[occupant] = target
        temperature = max(0.05, temperature * cooling)
    return best


# ---------------------------------------------------------------------------
# Routing + full schedule
# ---------------------------------------------------------------------------

def _route_all(
    dfg: Dfg,
    fabric: Fabric,
    port_map: Dict[str, int],
    placement: Dict[str, Coord],
) -> Dict[EdgeKey, RoutedEdge]:
    state = RouterState(fabric.mesh)
    edges: Dict[EdgeKey, RoutedEdge] = {}

    def add_edge(ref: ValueRef, consumer: str, slot: int, dst: Coord) -> None:
        src = _value_coord(dfg, fabric, port_map, placement, ref)
        assert src is not None, f"unplaced producer {ref}"
        producer = str(ref)
        key: EdgeKey = (producer, consumer, slot)
        links = route_value(state, producer, src, dst)
        edges[key] = RoutedEdge(key, src, dst, links)

    # Route in topological order for deterministic congestion behaviour.
    for inst in dfg.topological_order():
        dst = placement[inst.name]
        for slot, operand in enumerate(inst.operands):
            if isinstance(operand, Constant):
                continue
            add_edge(operand, inst.name, slot, dst)
    for port_name, port in dfg.outputs.items():
        hw_port = fabric.find_port("out", port_map[port_name])
        for lane, ref in enumerate(port.sources):
            dst = hw_port.attach[lane % len(hw_port.attach)]
            add_edge(ref, f"out:{port_name}", lane, dst)
    return edges


def schedule(
    dfg: Dfg,
    fabric: Fabric,
    seed: int = 0,
    anneal_iterations: int = 400,
    max_attempts: int = 8,
) -> CgraConfig:
    """Map ``dfg`` onto ``fabric``: place, route and delay-match.

    Deterministic for a given ``seed``.  Retries with perturbed placements
    when routing or delay matching fails; raises :class:`SchedulingError`
    after ``max_attempts``.
    """
    port_map = map_ports(dfg, fabric)
    last_error: Optional[Exception] = None
    for attempt in range(max_attempts):
        rng = random.Random(seed + attempt * 7919)
        try:
            placement = _greedy_placement(dfg, fabric, port_map, rng)
            placement = _anneal_placement(
                dfg, fabric, port_map, placement, rng, anneal_iterations
            )
            edges = _route_all(dfg, fabric, port_map, placement)
            hops = {key: edge.hops for key, edge in edges.items()}
            solution = compute_delays(dfg, hops)
            for key, delay in solution.extra_delay.items():
                edges[key].extra_delay = delay
            return CgraConfig(
                dfg=dfg,
                fabric=fabric,
                placement=placement,
                port_map=port_map,
                edges=edges,
                latency=solution.latency,
            )
        except (RoutingError, DelayMatchError) as exc:
            last_error = exc
            continue
    raise SchedulingError(
        f"could not map DFG {dfg.name!r} onto {fabric.name!r} after "
        f"{max_attempts} attempts: {last_error}"
    )
