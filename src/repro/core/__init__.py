"""The paper's primary contribution: stream-dataflow architecture.

Subpackages:

* :mod:`repro.core.dfg` — the dataflow-graph computation abstraction.
* :mod:`repro.core.isa` — stream commands, access patterns, programs.
* :mod:`repro.core.compiler` — the DFG-to-CGRA spatial scheduler.
"""
