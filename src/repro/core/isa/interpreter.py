"""Functional (untimed) golden-model interpreter for stream programs.

Real accelerator stacks pair a cycle-level simulator with a functional
reference (spike vs gem5, for RISC-V); this is ours.  It executes a
:class:`~repro.core.isa.program.StreamProgram` against a plain byte store
with *unbounded* port FIFOs and no timing — only the architecture's
ordering rules:

* commands touching the same (port, role) execute in program order;
* otherwise commands may interleave (implemented as a fixpoint over the
  program with resumable per-command progress, which realises one legal
  concurrent interleaving);
* the CGRA fires greedily whenever every DFG input port holds a full
  instance.

``tests/test_golden_model.py`` cross-validates the cycle-level simulator
against this interpreter on every workload.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Tuple

from .commands import (
    Command,
    PortRef,
    SDCleanPort,
    SDConfig,
    SDConstPort,
    SDIndPortMem,
    SDIndPortPort,
    SDMemPort,
    SDMemScratch,
    SDPortMem,
    SDPortPort,
    SDPortScratch,
    SDScratchPort,
    is_barrier,
    port_uses,
)
from .program import HostCompute, StreamProgram

if TYPE_CHECKING:  # pragma: no cover
    from ...sim.memory import BackingStore

WORD_MASK = (1 << 64) - 1


class FunctionalDeadlock(RuntimeError):
    """The program cannot make progress (a genuine program bug).

    The message names every unfinished command with the ports it is
    blocked on (``kind+id:role``, progress so far) and, when a
    configuration is loaded, which CGRA input ports are starved — enough
    to localise the bug without re-running anything.
    """


@dataclass
class FunctionalRunState:
    """Final functional state, for differential comparison against the
    cycle-level simulator (see :mod:`repro.fuzz.oracle`)."""

    scratch: bytearray
    queues: Dict[Tuple[str, int], Deque[int]]


class _State:
    """Interpreter state: port queues, scratch bytes, CGRA binding."""

    def __init__(self, program: StreamProgram, store: "BackingStore",
                 scratch_bytes: int) -> None:
        self.program = program
        self.store = store
        self.scratch = bytearray(scratch_bytes)
        self.queues: Dict[Tuple[str, int], Deque[int]] = {}
        self.compiled = None  # CompiledDfg, bound at SD_Config
        self.acc_state: List[int] = []
        self.config = None

    def queue(self, ref: PortRef) -> Deque[int]:
        return self.queues.setdefault((ref.kind, ref.port_id), deque())

    def apply_config(self, command: SDConfig) -> None:
        # Local import: CompiledDfg is purely functional, but it lives in
        # the simulator package and importing it at module scope would make
        # the core layer depend on sim at import time.
        from ...sim.cgra_exec import CompiledDfg

        self.config = self.program.config_images[command.address]
        self.compiled = CompiledDfg(self.config.dfg)
        self.acc_state = self.compiled.make_state()

    def drain_cgra(self) -> bool:
        """Fire instances while every input port holds a full instance."""
        if self.compiled is None:
            return False
        dfg = self.config.dfg
        in_ports = [
            (name, port.width,
             self.queue(PortRef("in", self.config.hw_input_port(name))))
            for name, port in dfg.inputs.items()
        ]
        out_ports = [
            (name, self.queue(PortRef("out", self.config.hw_output_port(name))))
            for name in dfg.outputs
        ]
        fired = False
        while all(len(q) >= width for _, width, q in in_ports):
            inputs = {
                name: [q.popleft() for _ in range(width)]
                for name, width, q in in_ports
            }
            results = self.compiled.run(inputs, self.acc_state)
            for name, q in out_ports:
                q.extend(results[name])
            fired = True
        return fired

    def starved_inputs(self) -> List[str]:
        """CGRA input ports lacking a full instance of data (for deadlock
        diagnostics)."""
        if self.compiled is None:
            return []
        out = []
        for name, port in self.config.dfg.inputs.items():
            hw_id = self.config.hw_input_port(name)
            queue = self.queue(PortRef("in", hw_id))
            if len(queue) < port.width:
                out.append(f"in{hw_id} ({name}): {len(queue)}/{port.width} words")
        return out

    # -- element access helpers ---------------------------------------------------

    def read_elem(self, from_scratch: bool, addr: int, size: int,
                  signed: bool) -> int:
        data = (
            bytes(self.scratch[addr : addr + size])
            if from_scratch
            else self.store.read(addr, size)
        )
        return int.from_bytes(data, "little", signed=signed) & WORD_MASK

    def write_elem(self, to_scratch: bool, addr: int, word: int,
                   size: int) -> None:
        data = (word & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
        if to_scratch:
            self.scratch[addr : addr + size] = data
        else:
            self.store.write(addr, data)


class _Executor:
    """Resumable execution of one command; ``step`` returns (progress, done)."""

    def __init__(self, state: _State, command: Command) -> None:
        self.state = state
        self.command = command
        self.position = 0  # elements completed so far

    def step(self) -> Tuple[bool, bool]:
        state, command = self.state, self.command
        if is_barrier(command) or isinstance(command, HostCompute):
            return True, True
        if isinstance(command, SDConfig):
            state.apply_config(command)
            return True, True
        if isinstance(command, (SDMemPort, SDScratchPort)):
            pattern = command.pattern
            queue = state.queue(command.dest)
            from_scratch = isinstance(command, SDScratchPort)
            for addr in pattern.element_addresses():
                queue.append(
                    state.read_elem(
                        from_scratch, addr, pattern.elem_bytes, pattern.signed
                    )
                )
            return True, True
        if isinstance(command, SDMemScratch):
            pattern = command.pattern
            for index, addr in enumerate(pattern.element_addresses()):
                data = state.store.read(addr, pattern.elem_bytes)
                offset = command.scratch_addr + index * pattern.elem_bytes
                state.scratch[offset : offset + pattern.elem_bytes] = data
            return True, True
        if isinstance(command, SDConstPort):
            state.queue(command.dest).extend(
                [command.value & WORD_MASK] * command.num_elements
            )
            return True, True

        # The remaining commands consume port data and may need the CGRA
        # to produce it: drain first, consume what is available.
        drained = state.drain_cgra()
        progressed = drained

        if isinstance(command, SDCleanPort):
            queue = state.queue(command.source)
            take = min(len(queue), command.num_elements - self.position)
            for _ in range(take):
                queue.popleft()
        elif isinstance(command, SDPortPort):
            src, dst = state.queue(command.source), state.queue(command.dest)
            take = min(len(src), command.num_elements - self.position)
            for _ in range(take):
                dst.append(src.popleft())
        elif isinstance(command, SDPortScratch):
            queue = state.queue(command.source)
            take = min(len(queue), command.num_elements - self.position)
            for k in range(take):
                addr = command.scratch_addr + (self.position + k) * command.elem_bytes
                state.write_elem(True, addr, queue.popleft(), command.elem_bytes)
        elif isinstance(command, SDPortMem):
            queue = state.queue(command.source)
            addrs = list(command.pattern.element_addresses())
            take = min(len(queue), len(addrs) - self.position)
            for k in range(take):
                state.write_elem(
                    False,
                    addrs[self.position + k],
                    queue.popleft(),
                    command.pattern.elem_bytes,
                )
        elif isinstance(command, SDIndPortPort):
            indices = state.queue(command.index_port)
            dest = state.queue(command.dest)
            take = min(len(indices), command.num_elements - self.position)
            for _ in range(take):
                addr = command.offset_addr + indices.popleft() * command.index_scale
                dest.append(
                    state.read_elem(
                        False, addr, command.elem_bytes, command.signed
                    )
                )
        elif isinstance(command, SDIndPortMem):
            indices = state.queue(command.index_port)
            values = state.queue(command.source)
            take = min(
                len(indices), len(values), command.num_elements - self.position
            )
            for _ in range(take):
                addr = command.offset_addr + indices.popleft() * command.index_scale
                state.write_elem(False, addr, values.popleft(), command.elem_bytes)
        else:
            raise TypeError(f"cannot interpret {type(command).__name__}")

        self.position += take
        progressed = progressed or take > 0
        done = self.position >= self._total()
        if done:
            state.drain_cgra()
        return progressed, done

    def _total(self) -> int:
        command = self.command
        if isinstance(command, SDPortMem):
            return command.pattern.num_elements
        return command.num_elements  # type: ignore[attr-defined]

    def describe(self) -> str:
        """Human-readable blockage report: command, ports (with role) and
        element progress."""
        command = self.command
        name = type(command).__name__
        if is_barrier(command) or isinstance(command, (SDConfig, HostCompute)):
            return name
        ports = ", ".join(f"{p}:{role}" for p, role in port_uses(command))
        return f"{name}({ports}; {self.position}/{self._total()} elements)"


def interpret_program(
    program: StreamProgram,
    store: BackingStore,
    scratch_bytes: int = 4096,
) -> FunctionalRunState:
    """Execute a stream program functionally, mutating ``store`` in place.

    Returns the final :class:`FunctionalRunState` (scratchpad image and
    residual port queues) so callers can compare end states across
    implementations.  Raises :class:`FunctionalDeadlock` if no legal
    interleaving lets the program finish (missing data, starved ports).
    """
    state = _State(program, store, scratch_bytes)
    executors = [_Executor(state, item) for item in program.items]
    done = [False] * len(executors)

    while not all(done):
        any_progress = False
        busy: set = set()  # (kind, id, role) held by an earlier unfinished cmd
        for index, executor in enumerate(executors):
            if done[index]:
                continue
            command = executor.command
            # Barriers and reconfiguration order *everything*: they retire
            # only once all earlier commands have, and nothing passes them.
            # (Treating the scratch barriers as full barriers is a legal,
            # conservative implementation of their happens-before rule.)
            if is_barrier(command) or isinstance(command, SDConfig):
                if all(done[:index]):
                    _, finished = executor.step()
                    done[index] = finished
                    any_progress = True
                break
            keys = {
                (p.kind, p.port_id, role)
                for p, role in port_uses(command)
            }
            if keys & busy:
                busy |= keys  # program order per (port, role)
                continue
            progressed, finished = executor.step()
            any_progress = any_progress or progressed or finished
            done[index] = finished
            if not finished:
                busy |= keys
        if not any_progress:
            stuck = [
                executor.describe()
                for index, executor in enumerate(executors)
                if not done[index]
            ]
            starved = state.starved_inputs()
            extra = f"; starved CGRA inputs: {starved}" if starved else ""
            raise FunctionalDeadlock(
                f"functional model stuck; unfinished commands: {stuck}{extra}"
            )
    return FunctionalRunState(state.scratch, state.queues)
