"""Stream access patterns: two-dimensional affine and indirect.

The stream half of stream-dataflow supports exactly the patterns of the
paper's Figure 5 — accesses of the form ``a[C*i + j]``: an *access size*
(bytes per contiguous access), a *stride* (bytes between access starts) and
a *number of strides*.  Setting ``stride == access_size`` gives linear
streams, ``stride > access_size`` strided, ``stride < access_size``
overlapped, and ``stride == 0`` repeating.

Address generation units (Section 4.3) turn a pattern into the minimal
sequence of 64-byte-aligned line requests; :func:`line_requests` implements
that coalescing and is shared by the memory and scratchpad stream engines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

#: memory interface width — one request covers one 64-byte line
LINE_BYTES = 64
#: the CGRA datapath word
WORD_BYTES = 8


class PatternError(ValueError):
    """Raised for degenerate access patterns."""


@dataclass(frozen=True)
class Affine2D:
    """A 2D affine access pattern (Figure 5).

    Attributes:
        start: base byte address.
        access_size: bytes per contiguous access (the inner dimension).
        stride: bytes between consecutive access starts (0 repeats).
        num_strides: number of accesses (the outer dimension).
        elem_bytes: element granularity (1, 2, 4 or 8) — each element
            occupies one 64-bit word at a vector port; narrow elements are
            zero- or sign-extended on load and truncated on store.
        signed: sign-extend narrow loads (ignored when elem_bytes == 8).
    """

    start: int
    access_size: int
    stride: int
    num_strides: int
    elem_bytes: int = WORD_BYTES
    signed: bool = False

    def __post_init__(self) -> None:
        if self.access_size <= 0:
            raise PatternError(f"access_size must be positive: {self.access_size}")
        if self.num_strides <= 0:
            raise PatternError(f"num_strides must be positive: {self.num_strides}")
        if self.stride < 0:
            raise PatternError(f"stride must be non-negative: {self.stride}")
        if self.elem_bytes not in (1, 2, 4, 8):
            raise PatternError(f"elem_bytes must be 1/2/4/8: {self.elem_bytes}")
        if self.access_size % self.elem_bytes:
            raise PatternError(
                f"access_size {self.access_size} not a multiple of "
                f"elem_bytes {self.elem_bytes}"
            )
        if self.start < 0:
            raise PatternError("start address must be non-negative")

    @classmethod
    def linear(cls, start: int, length_bytes: int, elem_bytes: int = WORD_BYTES
               ) -> "Affine2D":
        """A purely sequential stream of ``length_bytes`` from ``start``."""
        return cls(start, length_bytes, length_bytes, 1, elem_bytes)

    @property
    def total_bytes(self) -> int:
        return self.access_size * self.num_strides

    @property
    def num_elements(self) -> int:
        return self.total_bytes // self.elem_bytes

    @property
    def extent(self) -> int:
        """One past the highest byte address the pattern touches."""
        return self.start + self.stride * (self.num_strides - 1) + self.access_size

    def element_addresses(self) -> Iterator[int]:
        """Byte address of each element, in stream order."""
        per_access = self.access_size // self.elem_bytes
        for i in range(self.num_strides):
            base = self.start + i * self.stride
            for j in range(per_access):
                yield base + j * self.elem_bytes

    def classify(self) -> str:
        """Pattern family name as used in Figure 5 / Table 4."""
        if self.num_strides == 1 or self.stride == self.access_size:
            return "linear"
        if self.stride == 0:
            return "repeating"
        if self.stride < self.access_size:
            return "overlapped"
        return "strided"


@dataclass(frozen=True)
class LineRequest:
    """One 64-byte-aligned memory request carrying whole elements.

    Attributes:
        line_addr: byte address of the line (multiple of LINE_BYTES).
        element_addrs: addresses of the stream elements served, stream order.
        elem_bytes: element size.
    """

    line_addr: int
    element_addrs: Tuple[int, ...]
    elem_bytes: int

    @property
    def num_elements(self) -> int:
        return len(self.element_addrs)

    @property
    def bytes_used(self) -> int:
        return self.num_elements * self.elem_bytes


def line_requests(
    addrs: Iterator[int],
    elem_bytes: int,
    line_bytes: int = LINE_BYTES,
    max_elements: int = LINE_BYTES // 2,
) -> Iterator[LineRequest]:
    """Coalesce an in-order element-address stream into minimal line requests.

    Elements must be delivered in stream order, so a request closes as soon
    as the next element falls outside the current line (this is exactly the
    affine AGU's "minimal number of requests" behaviour: linear patterns
    produce one request per line, large strides one request per access).
    """
    current_line: int = -1
    batch: List[int] = []
    for addr in addrs:
        line = (addr // line_bytes) * line_bytes
        fits = line == current_line and len(batch) < max_elements
        if not fits and batch:
            yield LineRequest(current_line, tuple(batch), elem_bytes)
            batch = []
        current_line = line
        batch.append(addr)
    if batch:
        yield LineRequest(current_line, tuple(batch), elem_bytes)


def affine_requests(pattern: Affine2D) -> Iterator[LineRequest]:
    """The affine AGU: minimal line requests for a 2D affine pattern."""
    return line_requests(pattern.element_addresses(), pattern.elem_bytes)


def indirect_requests(
    element_addrs: List[int],
    elem_bytes: int,
    max_coalesce: int = 4,
) -> Iterator[LineRequest]:
    """The indirect AGU: coalesce up to ``max_coalesce`` *increasing*
    addresses that share a 64-byte line (Section 4.3)."""
    i = 0
    n = len(element_addrs)
    while i < n:
        addr = element_addrs[i]
        line = (addr // LINE_BYTES) * LINE_BYTES
        batch = [addr]
        j = i + 1
        while (
            j < n
            and len(batch) < max_coalesce
            and element_addrs[j] >= batch[-1]
            and (element_addrs[j] // LINE_BYTES) * LINE_BYTES == line
        ):
            batch.append(element_addrs[j])
            j += 1
        yield LineRequest(line, tuple(batch), elem_bytes)
        i = j
