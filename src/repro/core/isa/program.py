"""Stream coordination programs: the paper's intrinsics API.

A :class:`StreamProgram` is the software side of a stream-dataflow phase —
an ordered list of stream/barrier commands exactly as the control core would
generate them (compare the paper's Figure 6 classifier listing).  Programs
are written against a scheduled :class:`~repro.core.compiler.config.CgraConfig`
so that DFG port *names* can be used instead of raw hardware port numbers.

``host(cycles)`` models work the control core does between commands
(address arithmetic, loop control); the simulator charges those cycles to
command generation, which is how the paper accounts for the control core's
residual role.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from ..compiler.config import CgraConfig
from .commands import (
    Command,
    PortRef,
    SDBarrierAll,
    SDBarrierScratchRd,
    SDBarrierScratchWr,
    SDCleanPort,
    SDConfig,
    SDConstPort,
    SDIndPortMem,
    SDIndPortPort,
    SDMemPort,
    SDMemScratch,
    SDPortMem,
    SDPortPort,
    SDPortScratch,
    SDScratchPort,
    in_port,
    ind_port,
    out_port,
)
from .patterns import Affine2D, WORD_BYTES

#: synthetic memory region where configuration images are linked
CONFIG_BASE_ADDR = 0xC000_0000


@dataclass(frozen=True)
class HostCompute:
    """Control-core work between commands, in cycles."""

    cycles: int

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ValueError("host cycles must be non-negative")


ProgramItem = Union[Command, HostCompute]
PortLike = Union[str, PortRef]


class ProgramError(ValueError):
    """Raised for malformed stream programs."""


class StreamProgram:
    """Ordered stream-command program bound to a CGRA configuration."""

    def __init__(self, name: str, cgra_config: Optional[CgraConfig] = None) -> None:
        self.name = name
        self.items: List[ProgramItem] = []
        self.config_images: Dict[int, CgraConfig] = {}
        self._bound = cgra_config
        if cgra_config is not None:
            self.config(cgra_config)

    # -- port resolution ------------------------------------------------------

    def _resolve(self, port: PortLike, expected_kind: str) -> PortRef:
        if isinstance(port, PortRef):
            if port.kind != expected_kind:
                raise ProgramError(
                    f"expected a {expected_kind!r} port, got {port}"
                )
            return port
        if self._bound is None:
            raise ProgramError(
                f"port name {port!r} used but no CGRA config is bound"
            )
        dfg = self._bound.dfg
        if expected_kind == "in" and port in dfg.inputs:
            return in_port(self._bound.hw_input_port(port))
        if expected_kind == "out" and port in dfg.outputs:
            return out_port(self._bound.hw_output_port(port))
        raise ProgramError(
            f"{port!r} is not a DFG {expected_kind}put port of "
            f"{dfg.name!r} (inputs={list(dfg.inputs)}, outputs={list(dfg.outputs)})"
        )

    def _append(self, item: ProgramItem) -> None:
        self.items.append(item)

    # -- intrinsics (Table 2) ---------------------------------------------------

    def config(self, cgra_config: CgraConfig) -> None:
        """``SD_Config``: switch the fabric to a configuration image."""
        address = CONFIG_BASE_ADDR + 4096 * len(self.config_images)
        self.config_images[address] = cgra_config
        self._bound = cgra_config
        self._append(SDConfig(address, cgra_config.config_size_bytes))

    def mem_port(
        self,
        addr: int,
        stride: int,
        access_size: int,
        num_strides: int,
        port: PortLike,
        elem_bytes: int = WORD_BYTES,
        signed: bool = False,
    ) -> None:
        """``SD_Mem_Port``: memory -> input port with an affine pattern."""
        dest = port if isinstance(port, PortRef) else self._resolve(port, "in")
        pattern = Affine2D(addr, access_size, stride, num_strides, elem_bytes, signed)
        self._append(SDMemPort(pattern, dest))

    def mem_scratch(
        self,
        addr: int,
        stride: int,
        access_size: int,
        num_strides: int,
        scratch_addr: int,
        elem_bytes: int = WORD_BYTES,
    ) -> None:
        """``SD_Mem_Scratch``: memory -> scratchpad."""
        pattern = Affine2D(addr, access_size, stride, num_strides, elem_bytes)
        self._append(SDMemScratch(pattern, scratch_addr))

    def scratch_port(
        self,
        scratch_addr: int,
        stride: int,
        access_size: int,
        num_strides: int,
        port: PortLike,
        elem_bytes: int = WORD_BYTES,
        signed: bool = False,
    ) -> None:
        """``SD_Scratch_Port``: scratchpad -> input port."""
        dest = port if isinstance(port, PortRef) else self._resolve(port, "in")
        pattern = Affine2D(
            scratch_addr, access_size, stride, num_strides, elem_bytes, signed
        )
        self._append(SDScratchPort(pattern, dest))

    def mem_to_indirect(
        self,
        addr: int,
        num_elements: int,
        index_port: int,
        elem_bytes: int = WORD_BYTES,
    ) -> None:
        """``SD_Mem_Port`` targeting an indirect port: fill it with indices."""
        nbytes = num_elements * elem_bytes
        pattern = Affine2D(addr, nbytes, nbytes, 1, elem_bytes)
        self._append(SDMemPort(pattern, ind_port(index_port)))

    def const_port(self, value: int, num_elements: int, port: PortLike) -> None:
        """``SD_Const_Port``: send a constant word N times."""
        self._append(SDConstPort(value, num_elements, self._resolve(port, "in")))

    def clean_port(self, num_elements: int, port: PortLike) -> None:
        """``SD_Clean_Port``: discard N words from an output port."""
        self._append(SDCleanPort(num_elements, self._resolve(port, "out")))

    def port_port(self, src: PortLike, num_elements: int, dst: PortLike) -> None:
        """``SD_Port_Port``: recurrence stream output -> input."""
        dest = dst if isinstance(dst, PortRef) else self._resolve(dst, "in")
        self._append(SDPortPort(self._resolve(src, "out"), num_elements, dest))

    def port_scratch(
        self,
        src: PortLike,
        num_elements: int,
        scratch_addr: int,
        elem_bytes: int = WORD_BYTES,
    ) -> None:
        """``SD_Port_Scratch``: output port -> scratchpad."""
        self._append(
            SDPortScratch(
                self._resolve(src, "out"), num_elements, scratch_addr, elem_bytes
            )
        )

    def port_mem(
        self,
        src: PortLike,
        stride: int,
        access_size: int,
        num_strides: int,
        addr: int,
        elem_bytes: int = WORD_BYTES,
    ) -> None:
        """``SD_Port_Mem``: output port -> memory with an affine pattern."""
        pattern = Affine2D(addr, access_size, stride, num_strides, elem_bytes)
        self._append(SDPortMem(self._resolve(src, "out"), pattern))

    def ind_port_port(
        self,
        index_port: int,
        offset_addr: int,
        dest: PortLike,
        num_elements: int,
        elem_bytes: int = WORD_BYTES,
        index_scale: int = WORD_BYTES,
        signed: bool = False,
    ) -> None:
        """``SD_IndPort_Port``: indirect gather into an input port."""
        dest_ref = dest if isinstance(dest, PortRef) else self._resolve(dest, "in")
        self._append(
            SDIndPortPort(
                ind_port(index_port),
                offset_addr,
                dest_ref,
                num_elements,
                elem_bytes,
                index_scale,
                signed,
            )
        )

    def ind_port_mem(
        self,
        index_port: int,
        src: PortLike,
        offset_addr: int,
        num_elements: int,
        elem_bytes: int = WORD_BYTES,
        index_scale: int = WORD_BYTES,
    ) -> None:
        """``SD_IndPort_Mem``: indirect scatter from an output port."""
        self._append(
            SDIndPortMem(
                ind_port(index_port),
                self._resolve(src, "out"),
                offset_addr,
                num_elements,
                elem_bytes,
                index_scale,
            )
        )

    def barrier_scratch_rd(self) -> None:
        self._append(SDBarrierScratchRd())

    def barrier_scratch_wr(self) -> None:
        self._append(SDBarrierScratchWr())

    def barrier_all(self) -> None:
        self._append(SDBarrierAll())

    def host(self, cycles: int) -> None:
        """Model control-core work (loop/address arithmetic) in cycles."""
        self._append(HostCompute(cycles))

    # -- introspection ------------------------------------------------------------

    @property
    def commands(self) -> List[Command]:
        return [item for item in self.items if isinstance(item, Command)]

    @property
    def num_commands(self) -> int:
        return len(self.commands)

    @property
    def control_instructions(self) -> int:
        """Total control-core instructions: command encodings + host work."""
        total = 0
        for item in self.items:
            if isinstance(item, HostCompute):
                total += item.cycles
            else:
                total += item.instruction_count
        return total

    def __repr__(self) -> str:
        return f"StreamProgram({self.name!r}, {self.num_commands} commands)"
