"""Binary encoding of stream-dataflow commands.

The paper embeds stream commands into a fixed-width RISC ISA as 1-3
instructions each (Section 3.3).  This codec defines a concrete byte-level
layout — opcode byte plus little-endian fields — so programs can be stored,
hashed and round-tripped; ``Command.instruction_count`` reflects how many
32-bit instruction slots the encoded form occupies on the control core.
"""

from __future__ import annotations

import struct
from typing import List, Tuple

from .commands import (
    Command,
    PortRef,
    SDBarrierAll,
    SDBarrierScratchRd,
    SDBarrierScratchWr,
    SDCleanPort,
    SDConfig,
    SDConstPort,
    SDIndPortMem,
    SDIndPortPort,
    SDMemPort,
    SDMemScratch,
    SDPortMem,
    SDPortPort,
    SDPortScratch,
    SDScratchPort,
)
from .patterns import Affine2D
from .program import HostCompute, ProgramItem


class EncodingError(ValueError):
    """Raised on malformed byte streams or unknown opcodes."""


_PORT_KINDS = {"in": 0, "out": 1, "ind": 2}
_PORT_KIND_NAMES = {v: k for k, v in _PORT_KINDS.items()}

_PATTERN_FMT = "<QIIIBB"  # start, access_size, stride, num_strides, elem_bytes, signed


def _pack_port(port: PortRef) -> bytes:
    return struct.pack("<BB", _PORT_KINDS[port.kind], port.port_id)


def _unpack_port(data: bytes, offset: int) -> Tuple[PortRef, int]:
    kind, port_id = struct.unpack_from("<BB", data, offset)
    if kind not in _PORT_KIND_NAMES:
        raise EncodingError(f"bad port kind byte {kind}")
    return PortRef(_PORT_KIND_NAMES[kind], port_id), offset + 2


def _pack_pattern(p: Affine2D) -> bytes:
    return struct.pack(
        _PATTERN_FMT,
        p.start,
        p.access_size,
        p.stride,
        p.num_strides,
        p.elem_bytes,
        int(p.signed),
    )


def _unpack_pattern(data: bytes, offset: int) -> Tuple[Affine2D, int]:
    start, access, stride, n, elem, signed = struct.unpack_from(
        _PATTERN_FMT, data, offset
    )
    return (
        Affine2D(start, access, stride, n, elem, bool(signed)),
        offset + struct.calcsize(_PATTERN_FMT),
    )


OP_HOST = 0x00
OP_CONFIG = 0x01
OP_MEM_PORT = 0x02
OP_MEM_SCRATCH = 0x03
OP_SCRATCH_PORT = 0x04
OP_CONST_PORT = 0x05
OP_CLEAN_PORT = 0x06
OP_PORT_PORT = 0x07
OP_PORT_SCRATCH = 0x08
OP_PORT_MEM = 0x09
OP_INDPORT_PORT = 0x0A
OP_INDPORT_MEM = 0x0B
OP_BARRIER_SCRATCH_RD = 0x0C
OP_BARRIER_SCRATCH_WR = 0x0D
OP_BARRIER_ALL = 0x0E


def encode_item(item: ProgramItem) -> bytes:
    """Encode one command (or host-compute marker) to bytes."""
    if isinstance(item, HostCompute):
        return struct.pack("<BI", OP_HOST, item.cycles)
    if isinstance(item, SDConfig):
        return struct.pack("<BQI", OP_CONFIG, item.address, item.size)
    if isinstance(item, SDMemPort):
        return (
            struct.pack("<B", OP_MEM_PORT)
            + _pack_pattern(item.pattern)
            + _pack_port(item.dest)
        )
    if isinstance(item, SDMemScratch):
        return (
            struct.pack("<B", OP_MEM_SCRATCH)
            + _pack_pattern(item.pattern)
            + struct.pack("<I", item.scratch_addr)
        )
    if isinstance(item, SDScratchPort):
        return (
            struct.pack("<B", OP_SCRATCH_PORT)
            + _pack_pattern(item.pattern)
            + _pack_port(item.dest)
        )
    if isinstance(item, SDConstPort):
        return (
            struct.pack("<BQI", OP_CONST_PORT, item.value, item.num_elements)
            + _pack_port(item.dest)
        )
    if isinstance(item, SDCleanPort):
        return (
            struct.pack("<BI", OP_CLEAN_PORT, item.num_elements)
            + _pack_port(item.source)
        )
    if isinstance(item, SDPortPort):
        return (
            struct.pack("<B", OP_PORT_PORT)
            + _pack_port(item.source)
            + struct.pack("<I", item.num_elements)
            + _pack_port(item.dest)
        )
    if isinstance(item, SDPortScratch):
        return (
            struct.pack("<B", OP_PORT_SCRATCH)
            + _pack_port(item.source)
            + struct.pack("<IIB", item.num_elements, item.scratch_addr, item.elem_bytes)
        )
    if isinstance(item, SDPortMem):
        return (
            struct.pack("<B", OP_PORT_MEM)
            + _pack_port(item.source)
            + _pack_pattern(item.pattern)
        )
    if isinstance(item, SDIndPortPort):
        return (
            struct.pack("<B", OP_INDPORT_PORT)
            + _pack_port(item.index_port)
            + struct.pack("<Q", item.offset_addr)
            + _pack_port(item.dest)
            + struct.pack(
                "<IBBB",
                item.num_elements,
                item.elem_bytes,
                item.index_scale,
                int(item.signed),
            )
        )
    if isinstance(item, SDIndPortMem):
        return (
            struct.pack("<B", OP_INDPORT_MEM)
            + _pack_port(item.index_port)
            + _pack_port(item.source)
            + struct.pack(
                "<QIBB",
                item.offset_addr,
                item.num_elements,
                item.elem_bytes,
                item.index_scale,
            )
        )
    if isinstance(item, SDBarrierScratchRd):
        return struct.pack("<B", OP_BARRIER_SCRATCH_RD)
    if isinstance(item, SDBarrierScratchWr):
        return struct.pack("<B", OP_BARRIER_SCRATCH_WR)
    if isinstance(item, SDBarrierAll):
        return struct.pack("<B", OP_BARRIER_ALL)
    raise EncodingError(f"cannot encode {type(item).__name__}")


def decode_item(data: bytes, offset: int = 0) -> Tuple[ProgramItem, int]:
    """Decode one item starting at ``offset``; returns (item, next offset)."""
    if offset >= len(data):
        raise EncodingError("decode past end of buffer")
    opcode = data[offset]
    offset += 1
    if opcode == OP_HOST:
        (cycles,) = struct.unpack_from("<I", data, offset)
        return HostCompute(cycles), offset + 4
    if opcode == OP_CONFIG:
        address, size = struct.unpack_from("<QI", data, offset)
        return SDConfig(address, size), offset + 12
    if opcode == OP_MEM_PORT:
        pattern, offset = _unpack_pattern(data, offset)
        dest, offset = _unpack_port(data, offset)
        return SDMemPort(pattern, dest), offset
    if opcode == OP_MEM_SCRATCH:
        pattern, offset = _unpack_pattern(data, offset)
        (scratch_addr,) = struct.unpack_from("<I", data, offset)
        return SDMemScratch(pattern, scratch_addr), offset + 4
    if opcode == OP_SCRATCH_PORT:
        pattern, offset = _unpack_pattern(data, offset)
        dest, offset = _unpack_port(data, offset)
        return SDScratchPort(pattern, dest), offset
    if opcode == OP_CONST_PORT:
        value, num = struct.unpack_from("<QI", data, offset)
        dest, offset = _unpack_port(data, offset + 12)
        return SDConstPort(value, num, dest), offset
    if opcode == OP_CLEAN_PORT:
        (num,) = struct.unpack_from("<I", data, offset)
        source, offset = _unpack_port(data, offset + 4)
        return SDCleanPort(num, source), offset
    if opcode == OP_PORT_PORT:
        source, offset = _unpack_port(data, offset)
        (num,) = struct.unpack_from("<I", data, offset)
        dest, offset = _unpack_port(data, offset + 4)
        return SDPortPort(source, num, dest), offset
    if opcode == OP_PORT_SCRATCH:
        source, offset = _unpack_port(data, offset)
        num, scratch_addr, elem = struct.unpack_from("<IIB", data, offset)
        return SDPortScratch(source, num, scratch_addr, elem), offset + 9
    if opcode == OP_PORT_MEM:
        source, offset = _unpack_port(data, offset)
        pattern, offset = _unpack_pattern(data, offset)
        return SDPortMem(source, pattern), offset
    if opcode == OP_INDPORT_PORT:
        index_port, offset = _unpack_port(data, offset)
        (offset_addr,) = struct.unpack_from("<Q", data, offset)
        dest, offset = _unpack_port(data, offset + 8)
        num, elem, scale, signed = struct.unpack_from("<IBBB", data, offset)
        return (
            SDIndPortPort(
                index_port, offset_addr, dest, num, elem, scale, bool(signed)
            ),
            offset + 7,
        )
    if opcode == OP_INDPORT_MEM:
        index_port, offset = _unpack_port(data, offset)
        source, offset = _unpack_port(data, offset)
        offset_addr, num, elem, scale = struct.unpack_from("<QIBB", data, offset)
        return (
            SDIndPortMem(index_port, source, offset_addr, num, elem, scale),
            offset + 14,
        )
    if opcode == OP_BARRIER_SCRATCH_RD:
        return SDBarrierScratchRd(), offset
    if opcode == OP_BARRIER_SCRATCH_WR:
        return SDBarrierScratchWr(), offset
    if opcode == OP_BARRIER_ALL:
        return SDBarrierAll(), offset
    raise EncodingError(f"unknown opcode 0x{opcode:02x}")


def encode_items(items: List[ProgramItem]) -> bytes:
    """Encode a whole program body."""
    return b"".join(encode_item(item) for item in items)


def decode_items(data: bytes) -> List[ProgramItem]:
    """Decode a whole program body (inverse of :func:`encode_items`)."""
    items: List[ProgramItem] = []
    offset = 0
    while offset < len(data):
        item, offset = decode_item(data, offset)
        items.append(item)
    return items
