"""The stream-dataflow command set (Table 2 of the paper).

Commands are issued in program order by the control core, dispatched by the
stream dispatcher once their resources (vector ports, stream-engine table
entries) are free, and executed concurrently by the stream engines.  Each
command class documents its Table 2 row.

Ports are referenced through :class:`PortRef`, which namespaces the three
port kinds: CGRA input ports (``in``), CGRA output ports (``out``) and
indirect ports (``ind`` — address buffers not connected to the CGRA).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from .patterns import Affine2D, WORD_BYTES


@dataclass(frozen=True)
class PortRef:
    """A namespaced vector-port reference."""

    kind: str  # "in" | "out" | "ind"
    port_id: int

    def __post_init__(self) -> None:
        if self.kind not in ("in", "out", "ind"):
            raise ValueError(f"bad port kind {self.kind!r}")
        if self.port_id < 0:
            raise ValueError("port id must be non-negative")

    def __str__(self) -> str:
        return f"{self.kind}{self.port_id}"


def in_port(port_id: int) -> PortRef:
    return PortRef("in", port_id)


def out_port(port_id: int) -> PortRef:
    return PortRef("out", port_id)


def ind_port(port_id: int) -> PortRef:
    return PortRef("ind", port_id)


@dataclass(frozen=True)
class Command:
    """Base class: every stream-dataflow command.

    ``engine`` names the unit that executes the command: ``mse_read``,
    ``mse_write``, ``sse`` (scratchpad), ``rse`` (recurrence/const) or
    ``dispatch`` (config/barriers, handled by the dispatcher itself).
    """

    @property
    def engine(self) -> str:
        raise NotImplementedError

    @property
    def uses_ports(self) -> Tuple[PortRef, ...]:
        """Vector ports this command owns while in flight."""
        return ()

    @property
    def instruction_count(self) -> int:
        """Control-core instructions to encode/issue this command (1-3)."""
        return 2


# -- configuration ------------------------------------------------------------

@dataclass(frozen=True)
class SDConfig(Command):
    """``SD_Config``: load a CGRA configuration image from memory."""

    address: int
    size: int

    @property
    def engine(self) -> str:
        return "mse_read"

    @property
    def instruction_count(self) -> int:
        return 1


# -- memory / scratchpad reads -------------------------------------------------

@dataclass(frozen=True)
class SDMemPort(Command):
    """``SD_Mem_Port``: read memory with an affine pattern into a port."""

    pattern: Affine2D
    dest: PortRef

    def __post_init__(self) -> None:
        if self.dest.kind not in ("in", "ind"):
            raise ValueError("SD_Mem_Port destination must be an input/indirect port")

    @property
    def engine(self) -> str:
        return "mse_read"

    @property
    def uses_ports(self) -> Tuple[PortRef, ...]:
        return (self.dest,)


@dataclass(frozen=True)
class SDMemScratch(Command):
    """``SD_Mem_Scratch``: read memory with a pattern into the scratchpad."""

    pattern: Affine2D
    scratch_addr: int

    @property
    def engine(self) -> str:
        return "mse_read"

    @property
    def instruction_count(self) -> int:
        return 3


@dataclass(frozen=True)
class SDScratchPort(Command):
    """``SD_Scratch_Port``: read scratchpad with a pattern into a port."""

    pattern: Affine2D
    dest: PortRef

    def __post_init__(self) -> None:
        if self.dest.kind not in ("in", "ind"):
            raise ValueError(
                "SD_Scratch_Port destination must be an input/indirect port"
            )

    @property
    def engine(self) -> str:
        return "sse"

    @property
    def uses_ports(self) -> Tuple[PortRef, ...]:
        return (self.dest,)


# -- constants and recurrences --------------------------------------------------

@dataclass(frozen=True)
class SDConstPort(Command):
    """``SD_Const_Port``: send a constant word N times to an input port."""

    value: int
    num_elements: int
    dest: PortRef

    def __post_init__(self) -> None:
        if self.dest.kind != "in":
            raise ValueError("SD_Const_Port destination must be an input port")
        if self.num_elements <= 0:
            raise ValueError("num_elements must be positive")

    @property
    def engine(self) -> str:
        return "rse"

    @property
    def uses_ports(self) -> Tuple[PortRef, ...]:
        return (self.dest,)

    @property
    def instruction_count(self) -> int:
        return 1


@dataclass(frozen=True)
class SDCleanPort(Command):
    """``SD_Clean_Port``: discard N words from an output port."""

    num_elements: int
    source: PortRef

    def __post_init__(self) -> None:
        if self.source.kind != "out":
            raise ValueError("SD_Clean_Port source must be an output port")
        if self.num_elements <= 0:
            raise ValueError("num_elements must be positive")

    @property
    def engine(self) -> str:
        return "rse"

    @property
    def uses_ports(self) -> Tuple[PortRef, ...]:
        return (self.source,)

    @property
    def instruction_count(self) -> int:
        return 1


@dataclass(frozen=True)
class SDPortPort(Command):
    """``SD_Port_Port``: recurrence stream, output port -> input port."""

    source: PortRef
    num_elements: int
    dest: PortRef

    def __post_init__(self) -> None:
        if self.source.kind != "out" or self.dest.kind not in ("in", "ind"):
            raise ValueError("SD_Port_Port is output port -> input/indirect port")
        if self.num_elements <= 0:
            raise ValueError("num_elements must be positive")

    @property
    def engine(self) -> str:
        return "rse"

    @property
    def uses_ports(self) -> Tuple[PortRef, ...]:
        return (self.source, self.dest)


# -- writes ---------------------------------------------------------------------

@dataclass(frozen=True)
class SDPortScratch(Command):
    """``SD_Port_Scratch``: write words from an output port to scratchpad."""

    source: PortRef
    num_elements: int
    scratch_addr: int
    elem_bytes: int = WORD_BYTES

    def __post_init__(self) -> None:
        if self.source.kind != "out":
            raise ValueError("SD_Port_Scratch source must be an output port")

    @property
    def engine(self) -> str:
        return "sse"

    @property
    def uses_ports(self) -> Tuple[PortRef, ...]:
        return (self.source,)


@dataclass(frozen=True)
class SDPortMem(Command):
    """``SD_Port_Mem``: write from an output port to memory with a pattern."""

    source: PortRef
    pattern: Affine2D

    def __post_init__(self) -> None:
        if self.source.kind != "out":
            raise ValueError("SD_Port_Mem source must be an output port")

    @property
    def engine(self) -> str:
        return "mse_write"

    @property
    def uses_ports(self) -> Tuple[PortRef, ...]:
        return (self.source,)

    @property
    def instruction_count(self) -> int:
        return 3


# -- indirect access --------------------------------------------------------------

@dataclass(frozen=True)
class SDIndPortPort(Command):
    """``SD_IndPort_Port``: indirect load.

    Addresses (or offsets from ``offset_addr``) stream out of an indirect
    port; loaded values go to ``dest``.
    """

    index_port: PortRef
    offset_addr: int
    dest: PortRef
    num_elements: int
    elem_bytes: int = WORD_BYTES
    index_scale: int = WORD_BYTES  # bytes per index unit (1 => raw pointers)
    signed: bool = False  # sign-extend narrow gathered elements

    def __post_init__(self) -> None:
        if self.index_port.kind != "ind":
            raise ValueError("index port must be an indirect port")
        if self.dest.kind not in ("in", "ind"):
            raise ValueError("SD_IndPort_Port destination must be input/indirect")
        if self.num_elements <= 0:
            raise ValueError("num_elements must be positive")

    @property
    def engine(self) -> str:
        return "mse_read"

    @property
    def uses_ports(self) -> Tuple[PortRef, ...]:
        return (self.index_port, self.dest)

    @property
    def instruction_count(self) -> int:
        return 3


@dataclass(frozen=True)
class SDIndPortMem(Command):
    """``SD_IndPort_Mem``: indirect store.

    Addresses stream from the indirect port; data words stream from
    ``source`` (an output port) and are scattered to memory.
    """

    index_port: PortRef
    source: PortRef
    offset_addr: int
    num_elements: int
    elem_bytes: int = WORD_BYTES
    index_scale: int = WORD_BYTES

    def __post_init__(self) -> None:
        if self.index_port.kind != "ind":
            raise ValueError("index port must be an indirect port")
        if self.source.kind != "out":
            raise ValueError("SD_IndPort_Mem source must be an output port")
        if self.num_elements <= 0:
            raise ValueError("num_elements must be positive")

    @property
    def engine(self) -> str:
        return "mse_write"

    @property
    def uses_ports(self) -> Tuple[PortRef, ...]:
        return (self.index_port, self.source)

    @property
    def instruction_count(self) -> int:
        return 3


# -- barriers ---------------------------------------------------------------------

@dataclass(frozen=True)
class SDBarrierScratchRd(Command):
    """``SD_Barrier_Scratch_Rd``: later commands wait for scratch reads."""

    @property
    def engine(self) -> str:
        return "dispatch"

    @property
    def instruction_count(self) -> int:
        return 1


@dataclass(frozen=True)
class SDBarrierScratchWr(Command):
    """``SD_Barrier_Scratch_Wr``: later commands wait for scratch writes."""

    @property
    def engine(self) -> str:
        return "dispatch"

    @property
    def instruction_count(self) -> int:
        return 1


@dataclass(frozen=True)
class SDBarrierAll(Command):
    """``SD_Barrier_All``: wait for every outstanding command; syncs core."""

    @property
    def engine(self) -> str:
        return "dispatch"

    @property
    def instruction_count(self) -> int:
        return 1


BARRIER_TYPES = (SDBarrierScratchRd, SDBarrierScratchWr, SDBarrierAll)


def is_barrier(command: Command) -> bool:
    return isinstance(command, BARRIER_TYPES)


def port_uses(command: Command) -> Tuple[Tuple[PortRef, str], ...]:
    """Each port a command uses, tagged ``"w"`` (writes data into the port)
    or ``"r"`` (drains data from it).

    Ordering is enforced per (port, role): two writers of a port serialise,
    but a writer and a reader pipeline — that is what makes an indirect
    port's fill stream and its gather stream a working producer/consumer
    pair, and what lets ``SD_Clean`` drain an output port while the CGRA
    fills it.
    """
    if isinstance(command, (SDMemPort, SDScratchPort, SDConstPort)):
        return ((command.dest, "w"),)
    if isinstance(command, SDCleanPort):
        return ((command.source, "r"),)
    if isinstance(command, SDPortPort):
        return ((command.source, "r"), (command.dest, "w"))
    if isinstance(command, (SDPortScratch, SDPortMem)):
        return ((command.source, "r"),)
    if isinstance(command, SDIndPortPort):
        return ((command.index_port, "r"), (command.dest, "w"))
    if isinstance(command, SDIndPortMem):
        return ((command.index_port, "r"), (command.source, "r"))
    return ()
