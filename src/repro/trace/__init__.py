"""Structured event tracing and metrics for the Softbrain simulator.

The observability layer the performance work builds on: the simulator
emits typed :class:`TraceEvent` records (vocabulary in
:data:`EVENT_SCHEMAS`) into a :class:`TraceSink` — :class:`NullSink`
(default, zero overhead), :class:`JsonlSink`, :class:`ChromeTraceSink`
(Perfetto-loadable) or an in-memory :class:`ListSink` — and
:class:`MetricsRegistry` folds the stream into per-component utilization
series, stall-cause breakdowns and histograms that reconcile exactly with
``SimStats``.  See ``docs/TRACING.md`` for the format and a worked
example::

    from repro.trace import ChromeTraceSink, MetricsRegistry, TeeSink
    metrics = MetricsRegistry()
    with ChromeTraceSink("gemm.json") as chrome:
        result = run_program(program, trace=TeeSink(metrics, chrome))
    print(metrics.summary())
    assert not metrics.reconcile(result.stats)
"""

from .events import (
    EVENT_SCHEMAS,
    EventSchema,
    SHARED_UNIT,
    TraceEvent,
    format_schema_table,
    validate_event,
)
from .metrics import DEFAULT_WINDOW, Histogram, MetricsRegistry
from .sinks import (
    ChromeTraceSink,
    JsonlSink,
    ListSink,
    NULL_SINK,
    NullSink,
    RingSink,
    TeeSink,
    TraceSink,
    sink_for_path,
)

__all__ = [
    "ChromeTraceSink",
    "DEFAULT_WINDOW",
    "EVENT_SCHEMAS",
    "EventSchema",
    "Histogram",
    "JsonlSink",
    "ListSink",
    "MetricsRegistry",
    "NULL_SINK",
    "NullSink",
    "RingSink",
    "SHARED_UNIT",
    "TeeSink",
    "TraceEvent",
    "TraceSink",
    "format_schema_table",
    "sink_for_path",
    "validate_event",
]
