"""Per-component metrics derived from the trace event stream.

:class:`MetricsRegistry` is itself a :class:`repro.trace.sinks.TraceSink`,
so it can sit directly on the simulator (optionally teed with a file sink)
or be replayed over a recorded event list with :meth:`MetricsRegistry.
from_events`.  It derives exactly the quantities the paper's analysis
needs and ``SimStats`` cannot provide:

* per-engine **occupancy/utilization series** — busy cycles per
  fixed-width window, i.e. Figure-4/6-style activity over time;
* **stall-cause breakdown** — CGRA input starvation vs output
  backpressure vs barrier waits, as totals and per window;
* **port-buffer depth over time** from the periodic ``port.sample``
  events;
* **command latency / queue-wait histograms** (power-of-two buckets);
* memory and scratchpad transaction totals.

Because the counters are derived from the same emission sites that feed
``SimStats``, :meth:`MetricsRegistry.reconcile` can check the two
accountings against each other *exactly* — the invariant
``tests/test_trace.py`` and the ``trace`` CLI subcommand enforce.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Any, Dict, Iterable, List, Optional, Tuple

from .events import TraceEvent
from .sinks import TraceSink

#: default utilization-series window, cycles
DEFAULT_WINDOW = 64


class Histogram:
    """Power-of-two-bucketed histogram of non-negative integers."""

    def __init__(self) -> None:
        self.buckets: Counter = Counter()
        self.count = 0
        self.total = 0
        self.max = 0

    def add(self, value: int) -> None:
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value
        self.buckets[value.bit_length()] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "mean": self.mean,
            "max": self.max,
            #: bucket b holds values in [2**(b-1), 2**b), bucket 0 holds 0
            "buckets": {
                str(b): n for b, n in sorted(self.buckets.items())
            },
        }


class MetricsRegistry(TraceSink):
    """Fold a trace event stream into per-component metrics.

    ``unit`` restricts consumption to one Softbrain unit (shared-device
    events are always kept); ``None`` aggregates the whole device — the
    right choice for single-unit runs and whole-device summaries.
    """

    def __init__(self, window: int = DEFAULT_WINDOW,
                 unit: Optional[int] = None) -> None:
        self.window = window
        self.unit = unit
        self.last_cycle = 0
        self.events_consumed = 0

        self.engine_busy: Counter = Counter()
        #: {component: {window index: busy cycles}}
        self.busy_series: Dict[str, Counter] = defaultdict(Counter)
        self.stall_causes: Counter = Counter()
        self.stall_series: Dict[str, Counter] = defaultdict(Counter)

        self.instances_fired = 0
        self.ops_executed = 0
        self.fu_activity: Counter = Counter()

        self.commands_enqueued = 0
        self.commands_dispatched = 0
        self.commands_completed = 0
        self.config_loads = 0
        self.queue_wait = Histogram()
        self.command_latency = Histogram()
        #: completed-command cycle totals per command label
        self.command_cycles: Counter = Counter()

        #: {port name: [(cycle, occupancy, reserved)]}
        self.port_depth: Dict[str, List[Tuple[int, int, int]]] = defaultdict(list)

        self.mem = Counter()      # reads/writes/hits/misses/bytes_*
        self.scratch = Counter()  # reads/writes/bytes_*
        self.stream_actions: Counter = Counter()  # issue/drain per engine

    # -- sink interface ---------------------------------------------------------

    def emit(self, event: TraceEvent) -> None:
        if self.unit is not None and event.unit not in (self.unit, -1):
            return
        self.events_consumed += 1
        if event.cycle > self.last_cycle:
            self.last_cycle = event.cycle
        kind, data = event.kind, event.data

        if kind == "engine.busy":
            self.engine_busy[event.component] += 1
            self.busy_series[event.component][event.cycle // self.window] += 1
        elif kind == "cgra.fire":
            self.instances_fired += 1
            self.ops_executed += data["ops"]
            self.fu_activity.update(data["fu"])
            self.busy_series["cgra"][event.cycle // self.window] += 1
        elif kind == "cgra.stall":
            cause = f"cgra_{data['cause']}"
            self.stall_causes[cause] += 1
            self.stall_series[cause][event.cycle // self.window] += 1
        elif kind == "barrier.wait":
            self.stall_causes["barrier_wait"] += 1
            self.stall_series["barrier_wait"][event.cycle // self.window] += 1
        elif kind == "command.enqueue":
            self.commands_enqueued += 1
        elif kind == "command.dispatch":
            if data["engine"] != "barrier":
                self.commands_dispatched += 1
            self.queue_wait.add(data["wait_cycles"])
        elif kind == "command.complete":
            self.commands_completed += 1
            self.command_latency.add(data["latency"])
            self.command_cycles[data["command"]] += data["latency"]
        elif kind == "config.apply":
            self.config_loads += 1
        elif kind == "port.sample":
            self.port_depth[data["port"]].append(
                (event.cycle, data["occupancy"], data["reserved"])
            )
        elif kind == "mem.access":
            self.mem["writes" if data["write"] else "reads"] += 1
            self.mem["hits" if data["hit"] else "misses"] += 1
            self.mem[
                "bytes_written" if data["write"] else "bytes_read"
            ] += data["bytes"]
        elif kind == "scratch.read":
            self.scratch["reads"] += 1
            self.scratch["bytes_read"] += data["bytes"]
        elif kind == "scratch.write":
            self.scratch["writes"] += 1
            self.scratch["bytes_written"] += data["bytes"]
        elif kind in ("stream.issue", "stream.drain"):
            self.stream_actions[f"{event.component}.{kind.split('.')[1]}"] += 1

    @classmethod
    def from_events(cls, events: Iterable[TraceEvent],
                    window: int = DEFAULT_WINDOW,
                    unit: Optional[int] = None) -> "MetricsRegistry":
        """Replay a recorded event stream (e.g. a ListSink's capture)."""
        registry = cls(window=window, unit=unit)
        for event in events:
            registry.emit(event)
        return registry

    # -- derived views -----------------------------------------------------------

    def utilization(self, component: str, cycles: Optional[int] = None) -> float:
        """Busy fraction of ``component`` over the run (or ``cycles``)."""
        horizon = cycles if cycles else self.last_cycle + 1
        if not horizon:
            return 0.0
        if component == "cgra":
            return self.instances_fired / horizon
        return self.engine_busy.get(component, 0) / horizon

    def utilization_series(self, component: str) -> List[Tuple[int, float]]:
        """Per-window busy fraction: [(window start cycle, fraction)]."""
        series = self.busy_series.get(component, Counter())
        return [
            (index * self.window, busy / self.window)
            for index, busy in sorted(series.items())
        ]

    def to_dict(self) -> Dict[str, Any]:
        """Everything derived, as plain JSON-serialisable data."""
        return {
            "window": self.window,
            "last_cycle": self.last_cycle,
            "events_consumed": self.events_consumed,
            "engine_busy": dict(self.engine_busy),
            "utilization": {
                name: self.utilization(name)
                for name in sorted(set(self.engine_busy) | {"cgra"})
            },
            "stall_causes": dict(self.stall_causes),
            "instances_fired": self.instances_fired,
            "ops_executed": self.ops_executed,
            "fu_activity": dict(self.fu_activity),
            "commands": {
                "enqueued": self.commands_enqueued,
                "dispatched": self.commands_dispatched,
                "completed": self.commands_completed,
                "config_loads": self.config_loads,
                "queue_wait": self.queue_wait.to_dict(),
                "latency": self.command_latency.to_dict(),
                "cycles_by_label": dict(self.command_cycles),
            },
            "memory": dict(self.mem),
            "scratchpad": dict(self.scratch),
            "stream_actions": dict(self.stream_actions),
            "port_depth_samples": {
                port: len(samples) for port, samples in self.port_depth.items()
            },
        }

    # -- reconciliation against SimStats --------------------------------------------

    def reconcile(self, stats) -> Dict[str, Tuple[Any, Any]]:
        """Compare event-derived totals with a ``SimStats``.

        Returns ``{}`` when every shared counter matches exactly;
        otherwise ``{counter: (from_events, from_stats)}`` for each
        mismatch.  Both accountings are incremented at the same program
        points, so any non-empty result is a simulator bug.
        """
        pairs = {
            "instances_fired": (self.instances_fired, stats.instances_fired),
            "ops_executed": (self.ops_executed, stats.ops_executed),
            "commands_issued": (self.commands_dispatched, stats.commands_issued),
            "config_loads": (self.config_loads, stats.config_loads),
            "cgra_stall_no_input": (
                self.stall_causes.get("cgra_no_input", 0),
                stats.cgra_stall_no_input,
            ),
            "cgra_stall_no_output_room": (
                self.stall_causes.get("cgra_no_output_room", 0),
                stats.cgra_stall_no_output_room,
            ),
            "fu_activity": (dict(self.fu_activity), stats.fu_activity),
            "engine_busy": (dict(self.engine_busy), stats.engine_busy),
        }
        return {name: pair for name, pair in pairs.items() if pair[0] != pair[1]}

    def summary(self) -> str:
        """Human-readable per-component report for the CLI."""
        lines = [
            f"trace metrics over {self.last_cycle + 1} cycles "
            f"({self.events_consumed} events, window={self.window})",
            "  utilization:",
        ]
        for name in sorted(set(self.engine_busy) | {"cgra"}):
            lines.append(f"    {name:<10} {self.utilization(name):>7.1%}")
        if self.stall_causes:
            lines.append("  stall causes (cycles):")
            for cause, count in self.stall_causes.most_common():
                lines.append(f"    {cause:<26} {count}")
        commands = self.command_latency
        lines.append(
            f"  commands: {self.commands_enqueued} enqueued, "
            f"{self.commands_dispatched} dispatched to engines, "
            f"{self.commands_completed} completed"
        )
        lines.append(
            f"    queue wait mean {self.queue_wait.mean:.1f} "
            f"(max {self.queue_wait.max}); "
            f"latency mean {commands.mean:.1f} (max {commands.max})"
        )
        if self.mem:
            lines.append(
                f"  memory: {self.mem['reads']} reads / "
                f"{self.mem['writes']} writes, "
                f"{self.mem['hits']} hits / {self.mem['misses']} misses"
            )
        if self.scratch:
            lines.append(
                f"  scratchpad: {self.scratch['reads']} reads / "
                f"{self.scratch['writes']} writes"
            )
        if self.port_depth:
            peaks = {
                port: max(occ + res for _, occ, res in samples)
                for port, samples in sorted(self.port_depth.items())
            }
            lines.append(f"  port depth peaks (sampled): {peaks}")
        return "\n".join(lines)
