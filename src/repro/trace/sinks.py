"""Trace sinks: where :class:`repro.trace.events.TraceEvent` records go.

All simulator instrumentation is guarded by ``sink.enabled`` so that the
default :class:`NullSink` costs one attribute test per would-be event and
*no* event object is ever constructed — the invariant the
``bench_trace_overhead`` micro-benchmark enforces.  The other sinks:

* :class:`ListSink` — in-memory capture, the natural input to
  :class:`repro.trace.metrics.MetricsRegistry` post-processing and tests.
* :class:`JsonlSink` — one JSON object per line, the stable on-disk format
  (schema in ``docs/TRACING.md``); streams, so arbitrarily long runs work.
* :class:`ChromeTraceSink` — Chrome ``chrome://tracing`` / Perfetto JSON,
  for interactive timeline inspection.
* :class:`TeeSink` — fan-out, e.g. metrics + file in one run.
* :class:`RingSink` — bounded last-N buffer; feeds the trace tail of a
  :class:`repro.resilience.FailureReport` crash dump.
"""

from __future__ import annotations

import json
from collections import deque
from typing import IO, Any, Deque, Dict, List, Optional, Tuple, Union

from .events import SHARED_UNIT, TraceEvent


class TraceSink:
    """Base protocol: ``emit`` events while ``enabled``, then ``close``."""

    #: instrumentation sites skip event construction when this is False
    enabled: bool = True

    def emit(self, event: TraceEvent) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources; further ``emit`` calls are invalid."""

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class NullSink(TraceSink):
    """The disabled sink: zero overhead beyond one boolean test."""

    enabled = False

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover - never hit
        pass


#: process-wide disabled sink; ``sink is NULL_SINK`` identifies "untraced"
NULL_SINK = NullSink()


class ListSink(TraceSink):
    """Collect events in memory (``sink.events``)."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []
        self.emit = self.events.append  # type: ignore[assignment]


class RingSink(TraceSink):
    """Keep only the most recent ``capacity`` events (a flight recorder).

    Unbounded runs stay bounded-memory; on failure the retained tail is
    what :func:`repro.resilience.report.build_failure_report` embeds in
    the crash dump.
    """

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = capacity
        self._ring: Deque[TraceEvent] = deque(maxlen=capacity)
        self.emit = self._ring.append  # type: ignore[assignment]

    def tail_events(self) -> List[TraceEvent]:
        """The retained events, oldest first."""
        return list(self._ring)


class TeeSink(TraceSink):
    """Fan one event stream out to several sinks."""

    def __init__(self, *sinks: TraceSink) -> None:
        self.sinks = [s for s in sinks if s.enabled]
        self.enabled = bool(self.sinks)

    def emit(self, event: TraceEvent) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def tail_events(self) -> List[TraceEvent]:
        """Delegate to the first member sink that keeps a tail."""
        for sink in self.sinks:
            tail = getattr(sink, "tail_events", None)
            if tail is not None:
                return tail()
        return []

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


def _open(destination: Union[str, IO[str]]) -> Tuple[IO[str], bool]:
    if isinstance(destination, str):
        return open(destination, "w"), True
    return destination, False


class JsonlSink(TraceSink):
    """Stream events as JSON Lines: one flat object per event.

    Key order is fixed (``kind, cycle, unit, component, data``) so the
    files diff and grep well; see ``docs/TRACING.md`` for the schema.
    """

    def __init__(self, destination: Union[str, IO[str]]) -> None:
        self._stream, self._owns = _open(destination)

    def emit(self, event: TraceEvent) -> None:
        self._stream.write(json.dumps(event.to_json_dict()))
        self._stream.write("\n")

    def close(self) -> None:
        if self._owns:
            self._stream.close()
        else:
            self._stream.flush()


class ChromeTraceSink(TraceSink):
    """Export to the Chrome Trace Event JSON format (Perfetto-loadable).

    Mapping (1 simulated cycle = 1 µs of viewer time):

    * command dispatch→complete lifetimes become async spans (``b``/``e``)
      so overlapping commands each get their own lane;
    * ``engine.busy`` and ``cgra.fire`` become 1-cycle complete slices
      (``X``) on the per-engine / CGRA tracks;
    * stalls, barrier waits, memory/scratchpad transactions and stream
      issue/drain actions become instants (``i``);
    * ``port.sample`` becomes counter tracks (``C``) — depth over time.

    Tracks: one *process* per Softbrain unit (plus a ``device (shared)``
    process for :data:`SHARED_UNIT` components), one *thread* per
    component.  Events are buffered and written on :meth:`close`, sorted
    by ``(pid, tid, ts)`` so every track's ``ts`` sequence is monotone —
    a property ``tests/test_trace.py`` asserts.
    """

    def __init__(self, destination: Union[str, IO[str]]) -> None:
        self._stream, self._owns = _open(destination)
        self._rows: List[Dict[str, Any]] = []
        self._tids: Dict[Tuple[int, str], int] = {}
        #: (unit, command index) -> open async span name
        self._open_spans: Dict[Tuple[int, int], str] = {}
        self._closed = False

    # -- track bookkeeping ---------------------------------------------------

    @staticmethod
    def _pid(unit: int) -> int:
        return 0 if unit == SHARED_UNIT else unit + 1

    def _tid(self, unit: int, component: str) -> int:
        key = (unit, component)
        tid = self._tids.get(key)
        if tid is None:
            tid = len(self._tids) + 1
            self._tids[key] = tid
        return tid

    def _row(self, event: TraceEvent, ph: str, name: str,
             **extra: Any) -> Dict[str, Any]:
        row = {
            "name": name,
            "ph": ph,
            "ts": event.cycle,
            "pid": self._pid(event.unit),
            "tid": self._tid(event.unit, event.component),
            "cat": event.kind,
        }
        row.update(extra)
        return row

    # -- event translation ---------------------------------------------------

    def emit(self, event: TraceEvent) -> None:
        kind, data = event.kind, event.data
        if kind == "command.dispatch":
            name = f"{data['command']} #{data['index']}"
            key = (event.unit, data["index"])
            self._open_spans[key] = name
            self._rows.append(
                self._row(event, "b", name, id=data["index"], cat="command",
                          args={"engine": data["engine"],
                                "wait_cycles": data["wait_cycles"]})
            )
        elif kind == "command.complete":
            key = (event.unit, data["index"])
            name = self._open_spans.pop(key, f"{data['command']} #{data['index']}")
            self._rows.append(
                self._row(event, "e", name, id=data["index"], cat="command",
                          args={"latency": data["latency"]})
            )
        elif kind in ("engine.busy", "cgra.fire"):
            name = "busy" if kind == "engine.busy" else "fire"
            self._rows.append(self._row(event, "X", name, dur=1, args=data))
        elif kind == "port.sample":
            self._rows.append(
                self._row(event, "C", f"port {data['port']} depth",
                          args={"occupancy": data["occupancy"],
                                "reserved": data["reserved"]})
            )
        else:  # stalls, waits, transactions, issue/drain, enqueue, config
            self._rows.append(
                self._row(event, "i", kind, s="t", args=data)
            )

    # -- output -------------------------------------------------------------------

    def _metadata_rows(self) -> List[Dict[str, Any]]:
        rows: List[Dict[str, Any]] = []
        pids = {self._pid(unit) for unit, _ in self._tids}
        for pid in pids:
            label = "device (shared)" if pid == 0 else f"softbrain unit {pid - 1}"
            rows.append({"name": "process_name", "ph": "M", "pid": pid,
                         "tid": 0, "args": {"name": label}})
        for (unit, component), tid in self._tids.items():
            rows.append({"name": "thread_name", "ph": "M",
                         "pid": self._pid(unit), "tid": tid,
                         "args": {"name": component}})
        return rows

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._rows.sort(key=lambda r: (r["pid"], r["tid"], r["ts"]))
        document = {
            "traceEvents": self._metadata_rows() + self._rows,
            "displayTimeUnit": "ms",
            "otherData": {"producer": "repro.trace", "ts_unit": "cycle"},
        }
        json.dump(document, self._stream)
        if self._owns:
            self._stream.close()
        else:
            self._stream.flush()


def sink_for_path(path: str) -> TraceSink:
    """Pick a file sink from the extension: ``.jsonl`` streams JSON Lines,
    anything else (``.json``, ``.trace``, ...) writes a Chrome trace."""
    if path.endswith(".jsonl"):
        return JsonlSink(path)
    return ChromeTraceSink(path)
