"""The trace event vocabulary: one record per micro-architectural happening.

Every event is a :class:`TraceEvent` — a ``kind`` drawn from the closed
vocabulary below, the ``cycle`` it happened, the ``unit`` it happened on
(``SHARED_UNIT`` for device-level components such as the shared memory
interface of a multi-unit run), the emitting ``component`` and a ``data``
payload whose fields are fixed per kind.  :data:`EVENT_SCHEMAS` is the
machine-readable schema — ``docs/TRACING.md`` is generated from the same
information — and :func:`validate_event` checks a record against it.

The vocabulary is deliberately small and flat: every consumer (the
:class:`repro.trace.metrics.MetricsRegistry`, the Chrome-trace exporter,
ad-hoc scripts over JSONL files) dispatches on ``kind`` alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

#: ``unit`` value for components shared by the whole device (e.g. the one
#: memory interface all tiles of a multi-unit run arbitrate for).
SHARED_UNIT = -1


@dataclass
class TraceEvent:
    """One structured trace record.

    ``data`` holds the kind-specific fields listed in
    :data:`EVENT_SCHEMAS`; everything else is common to all kinds.
    """

    kind: str
    cycle: int
    unit: int
    component: str
    data: Dict[str, Any] = field(default_factory=dict)

    def to_json_dict(self) -> Dict[str, Any]:
        """Flat dict form used by the JSONL format (documented order)."""
        return {
            "kind": self.kind,
            "cycle": self.cycle,
            "unit": self.unit,
            "component": self.component,
            "data": self.data,
        }


@dataclass(frozen=True)
class EventSchema:
    """Documentation + validation record for one event kind."""

    kind: str
    emitter: str  #: which component class emits it
    description: str
    fields: Dict[str, str]  #: data field name -> meaning


def _schema(kind: str, emitter: str, description: str,
            **fields: str) -> EventSchema:
    return EventSchema(kind, emitter, description, dict(fields))


#: The complete trace vocabulary.  Adding an event kind means adding a row
#: here first — tests assert emitted events validate against this table.
EVENT_SCHEMAS: Dict[str, EventSchema] = {
    s.kind: s
    for s in [
        _schema(
            "command.enqueue",
            "Dispatcher",
            "The control core handed a stream command to the dispatcher "
            "queue.",
            index="timeline index of the command (stable per run)",
            command="command label, e.g. 'SD_MemPort'",
            queue_depth="dispatcher queue occupancy after the enqueue",
        ),
        _schema(
            "command.dispatch",
            "Dispatcher",
            "A command won the scoreboard and was issued to its stream "
            "engine (barriers: released at the queue head).",
            index="timeline index of the command",
            command="command label",
            engine="target engine name, or 'barrier' for barrier commands",
            wait_cycles="cycles spent waiting in the queue since enqueue",
        ),
        _schema(
            "command.complete",
            "SoftbrainSim",
            "A stream command finished: all elements moved and its ports "
            "released (barriers complete at dispatch).",
            index="timeline index of the command",
            command="command label",
            engine="engine that ran it, or 'barrier'",
            latency="cycles from dispatch to completion",
        ),
        _schema(
            "barrier.wait",
            "Dispatcher",
            "One cycle during which the barrier at the queue head blocked "
            "issue because its condition did not yet hold.",
            index="timeline index of the barrier command",
            command="barrier label, e.g. 'SD_BarrierAll'",
        ),
        _schema(
            "stream.issue",
            "stream engines",
            "An engine advanced one active stream by one action: a line "
            "request, an indirect gather/scatter beat, or a port-to-port "
            "move.",
            index="timeline index of the stream's command",
            command="command label",
        ),
        _schema(
            "stream.drain",
            "stream engines",
            "Arrived data left an engine's request buffer and landed in a "
            "destination vector port (in order).",
            index="timeline index of the stream's command",
            command="command label",
            port="destination port, e.g. 'in3'",
            words="64-bit words delivered",
        ),
        _schema(
            "engine.busy",
            "stream engines",
            "One cycle in which this engine performed work (reconciles "
            "1:1 with SimStats.engine_busy).",
        ),
        _schema(
            "cgra.fire",
            "CgraExecutor",
            "One computation instance entered the fabric (initiation "
            "interval 1).",
            ops="DFG instructions executed by the instance",
            fu="per-FU-type op counts for the instance",
        ),
        _schema(
            "cgra.stall",
            "CgraExecutor",
            "One cycle in which the CGRA could not fire (reconciles 1:1 "
            "with the SimStats cgra_stall_* counters).",
            cause="'no_input' (upstream data exists but an input port is "
                  "short) or 'no_output_room' (an output port lacks space)",
        ),
        _schema(
            "port.sample",
            "SoftbrainSim",
            "Periodic vector-port depth sample (every "
            "`SoftbrainParams.trace_sample_interval` stepped cycles; only "
            "ports whose depth changed from zero are sampled).",
            port="port name, e.g. 'in0', 'out1', 'indirect0'",
            occupancy="words resident in the FIFO",
            reserved="words reserved for in-flight data",
        ),
        _schema(
            "scratch.read",
            "Scratchpad",
            "One scratchpad SRAM read access.",
            addr="scratchpad byte address",
            bytes="bytes read",
        ),
        _schema(
            "scratch.write",
            "Scratchpad",
            "One scratchpad SRAM write access.",
            addr="scratchpad byte address",
            bytes="bytes written",
        ),
        _schema(
            "mem.access",
            "MemorySystem",
            "One 64-byte-line request accepted by the memory interface.",
            line_addr="line-aligned address",
            write="True for stores",
            bytes="useful bytes in the request",
            hit="True if the line was L2-resident",
            ready="cycle at which the data is available / visible",
        ),
        _schema(
            "config.apply",
            "SoftbrainSim",
            "A CGRA configuration finished loading and was installed.",
            address="configuration image address",
            dfg="name of the installed DFG",
        ),
        _schema(
            "fault.inject",
            "FaultInjector",
            "An injected fault fired (fault-injection runs only; see "
            "docs/RESILIENCE.md).",
            fault="fault class, e.g. 'mem.delay', 'cgra.bitflip'",
            target="component/port the fault hit ('' when class-global)",
            detail="class-specific description of the mutation",
        ),
    ]
}


def validate_event(event: TraceEvent) -> None:
    """Raise ``ValueError`` if ``event`` does not match its schema."""
    schema = EVENT_SCHEMAS.get(event.kind)
    if schema is None:
        raise ValueError(f"unknown event kind {event.kind!r}")
    missing = set(schema.fields) - set(event.data)
    extra = set(event.data) - set(schema.fields)
    if missing or extra:
        raise ValueError(
            f"{event.kind}: bad fields (missing={sorted(missing)}, "
            f"extra={sorted(extra)})"
        )
    if not isinstance(event.cycle, int) or event.cycle < 0:
        raise ValueError(f"{event.kind}: bad cycle {event.cycle!r}")


def format_schema_table() -> str:
    """Render the vocabulary as a text table (used by the CLI and docs)."""
    lines = []
    for kind in sorted(EVENT_SCHEMAS):
        schema = EVENT_SCHEMAS[kind]
        lines.append(f"{kind}  [{schema.emitter}]")
        lines.append(f"    {schema.description}")
        for name, meaning in schema.fields.items():
            lines.append(f"    .{name}: {meaning}")
    return "\n".join(lines)
