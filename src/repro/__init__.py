"""Stream-Dataflow Acceleration (Softbrain) — a full-stack reproduction.

Reproduces "Stream-Dataflow Acceleration" (Nowatzki et al., ISCA 2017):
the architecture abstractions (:mod:`repro.core`), the CGRA hardware model
(:mod:`repro.cgra`), the cycle-level Softbrain simulator (:mod:`repro.sim`),
the power/area accounting (:mod:`repro.power`), the comparison baselines
(:mod:`repro.baselines`), the workloads (:mod:`repro.workloads`) and the
per-table/figure experiment harnesses (:mod:`repro.experiments`).

Typical flow::

    from repro.cgra import dnn_provisioned
    from repro.core.compiler import schedule
    from repro.core.dfg import parse_dfg
    from repro.core.isa import StreamProgram
    from repro.sim import MemorySystem, run_program

    config = schedule(parse_dfg(text), dnn_provisioned())
    program = StreamProgram("kernel", config)
    # ... Table 2 intrinsics: program.mem_port(...), program.barrier_all()
    result = run_program(program, fabric=config.fabric, memory=MemorySystem())
"""

__version__ = "1.0.0"

__all__ = [
    "baselines",
    "cgra",
    "core",
    "experiments",
    "power",
    "sim",
    "workloads",
]
