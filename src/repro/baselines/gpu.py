"""GPU baseline: a Kepler-class GPGPU (GTX 750: 4 SMs, 512 CUDA cores).

Only the DNN workloads are compared against the GPU (the paper's
Figure 11).  We use a roofline-style model: compute throughput limited by
the CUDA cores at a workload-class utilisation factor, and memory
throughput limited by GDDR bandwidth.  Utilisation factors encode what the
paper observed: convolutions keep the SMs reasonably busy, classifier
layers (GEMV) are bandwidth-bound, and pooling has almost no arithmetic
intensity.  Cycles are 1 GHz-normalised like every other machine model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class GpuParams:
    """Kepler GTX 750-class machine parameters (1 GHz-normalised)."""

    cuda_cores: int = 512
    #: MACs count as two ops; cores do one fused op per cycle
    ops_per_core_per_cycle: float = 1.0
    mem_bw_bytes_per_cycle: float = 80.0  # ~80 GB/s GDDR5
    #: fixed per-kernel-launch overhead (driver + launch), cycles
    launch_overhead_cycles: float = 8000.0


#: fraction of peak compute each workload class sustains (occupancy,
#: divergence, and instruction-mix effects folded together)
CLASS_UTILIZATION: Dict[str, float] = {
    "classifier": 0.18,
    "conv": 0.35,
    "pool": 0.08,
}


@dataclass(frozen=True)
class GpuWorkload:
    """What the GPU model needs to know about a DNN layer."""

    name: str
    kind: str  # "classifier" | "conv" | "pool"
    mac_ops: int  # multiply-accumulate count (0 for pooling)
    simple_ops: int  # non-MAC arithmetic (pooling adds/max)
    memory_bytes: int  # unique traffic (weights + inputs + outputs)
    kernels: int = 1  # kernel launches


def estimate_gpu_cycles(workload: GpuWorkload, params: GpuParams = GpuParams()) -> float:
    """Roofline estimate of GPU execution time in 1 GHz cycles."""
    try:
        utilization = CLASS_UTILIZATION[workload.kind]
    except KeyError:
        raise KeyError(
            f"unknown workload kind {workload.kind!r}; "
            f"known: {sorted(CLASS_UTILIZATION)}"
        ) from None
    total_ops = 2 * workload.mac_ops + workload.simple_ops
    compute = total_ops / (
        params.cuda_cores * params.ops_per_core_per_cycle * utilization
    )
    memory = workload.memory_bytes / params.mem_bw_bytes_per_cycle
    return max(compute, memory) + params.launch_overhead_cycles * workload.kernels
