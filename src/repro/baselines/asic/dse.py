"""Design-space exploration and iso-performance Pareto selection.

Section 7.3: "for each workload we explore a large ASIC design space by
modifying hardware optimization parameters, and find the set of ASIC
designs within a certain performance threshold of Softbrain (within 10%
where possible).  Within these points, we chose a Pareto-optimal ASIC
design across power, area, and execution time, where power is given
priority over area."  :func:`select_iso_performance` implements exactly
that selection rule.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from .ddg import Ddg
from .power_area import AsicEstimate, estimate_power_area
from .schedule import AsicDesign, schedule_ddg

#: default sweep axes (Aladdin's unrolling / array-partitioning knobs)
DEFAULT_UNROLL = (1, 2, 4, 8, 16)
DEFAULT_PARTITION = (1, 2, 4, 8)


def explore_design_space(
    ddg: Ddg,
    unroll_factors: Sequence[int] = DEFAULT_UNROLL,
    partition_factors: Sequence[int] = DEFAULT_PARTITION,
    base: Optional[AsicDesign] = None,
) -> List[AsicEstimate]:
    """Schedule the DDG at every (unroll, partition) point."""
    base = base or AsicDesign()
    estimates: List[AsicEstimate] = []
    for unroll in unroll_factors:
        for partition in partition_factors:
            design = AsicDesign(
                unroll=unroll,
                partition=partition,
                base_alu=base.base_alu,
                base_mul=base.base_mul,
                base_div=base.base_div,
                base_special=base.base_special,
                mem_ports_per_partition=base.mem_ports_per_partition,
            )
            result = schedule_ddg(ddg, design)
            estimates.append(estimate_power_area(ddg, result))
    return estimates


def _pareto_front(points: Iterable[AsicEstimate]) -> List[AsicEstimate]:
    """Non-dominated points over (power, area, cycles)."""
    points = list(points)
    front = []
    for p in points:
        dominated = any(
            q.power_mw <= p.power_mw
            and q.area_mm2 <= p.area_mm2
            and q.cycles <= p.cycles
            and (
                q.power_mw < p.power_mw
                or q.area_mm2 < p.area_mm2
                or q.cycles < p.cycles
            )
            for q in points
        )
        if not dominated:
            front.append(p)
    return front


def select_iso_performance(
    estimates: Sequence[AsicEstimate],
    target_cycles: float,
    threshold: float = 0.10,
) -> AsicEstimate:
    """The paper's ASIC design-point selection rule.

    Prefer designs within ``threshold`` of the Softbrain cycle count; if no
    design lands in the band, fall back to the points closest in
    performance.  Among candidates, take the Pareto front over
    (power, area, cycles) and order by power first, then area.
    """
    if not estimates:
        raise ValueError("no design points to select from")
    low = target_cycles * (1.0 - threshold)
    high = target_cycles * (1.0 + threshold)
    candidates = [e for e in estimates if low <= e.cycles <= high]
    if not candidates:
        # Best-effort: prefer at-least-as-fast designs, else the fastest.
        fast_enough = [e for e in estimates if e.cycles <= high]
        if fast_enough:
            closest = max(e.cycles for e in fast_enough)
            candidates = [e for e in fast_enough if e.cycles == closest]
            # Keep all points at that performance plus any cheaper ones
            # within 2x of the target band for a meaningful Pareto choice.
            candidates = fast_enough
        else:
            fastest = min(e.cycles for e in estimates)
            candidates = [e for e in estimates if e.cycles == fastest]
    front = _pareto_front(candidates)
    front.sort(key=lambda e: (e.power_mw, e.area_mm2, e.cycles))
    return front[0]
