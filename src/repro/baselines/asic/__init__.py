"""Mini-Aladdin: pre-RTL fixed-function accelerator modeling.

The comparison ASICs of Section 7.3 are modeled the way Aladdin models
them: instrumented execution produces a dynamic dependence graph
(:mod:`ddg`), candidate designs are resource-constrained schedules of that
graph (:mod:`schedule`), power/area come from per-op and per-structure
constants (:mod:`power_area`), and a design-space sweep with iso-performance
Pareto selection picks the reported point (:mod:`dse`).
"""

from .ddg import Ddg, DdgNode, OP_COSTS, TraceBuilder, TracedValue
from .dse import explore_design_space, select_iso_performance
from .power_area import AsicEstimate, estimate_power_area, local_sram_kb
from .schedule import AsicDesign, ScheduleResult, schedule_ddg

__all__ = [
    "AsicDesign",
    "AsicEstimate",
    "Ddg",
    "DdgNode",
    "OP_COSTS",
    "ScheduleResult",
    "TraceBuilder",
    "TracedValue",
    "estimate_power_area",
    "explore_design_space",
    "local_sram_kb",
    "schedule_ddg",
    "select_iso_performance",
]
