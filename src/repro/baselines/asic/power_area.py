"""Power and area of a candidate ASIC design point (55 nm accounting).

Mirrors Aladdin's methodology and the paper's comparison rules:

* **Power** includes datapath dynamic energy (per-op energies from the DDG
  over the runtime), functional-unit leakage, and the local memory
  structures (scratchpads/buffers grow with partitioning and unrolling) —
  the paper explicitly includes ASIC local memories in power (Section 7.3).
* **Area** counts datapath only — the paper excludes ASIC memory structures
  from the area comparison (Figure 15's footnote), and we follow that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .ddg import Ddg
from .schedule import AsicDesign, ScheduleResult

#: per-FU area (mm²) and leakage (mW) at 55 nm (a leakage-heavy node)
FU_AREA_MM2: Dict[str, float] = {
    "alu": 0.0015,
    "mul": 0.0050,
    "div": 0.0090,
    "special": 0.0035,
    "mem": 0.0040,  # per memory port (address generation + muxing)
}
FU_LEAKAGE_MW: Dict[str, float] = {
    "alu": 0.080,
    "mul": 0.360,
    "div": 0.640,
    "special": 0.240,
    "mem": 0.160,
}

#: fixed control/clock-tree overhead plus per-unroll pipeline registers
CONTROL_LEAKAGE_MW = 8.0
CONTROL_LEAKAGE_PER_UNROLL_MW = 1.0
CONTROL_AREA_MM2 = 0.012
CONTROL_AREA_PER_UNROLL_MM2 = 0.005

#: local SRAM parameters
SRAM_LEAKAGE_MW_PER_KB = 0.70
SRAM_DYNAMIC_PJ_PER_ACCESS = 3.5
SRAM_AREA_MM2_PER_KB = 0.012
BYTES_PER_ELEMENT = 8


@dataclass
class AsicEstimate:
    """Cycles, power and area of one scheduled design point."""

    workload: str
    design: AsicDesign
    cycles: int
    power_mw: float
    area_mm2: float
    local_sram_kb: float

    @property
    def energy_mj(self) -> float:
        return self.power_mw * self.cycles / 1e9  # at 1 GHz


def local_sram_kb(ddg: Ddg, design: AsicDesign) -> float:
    """Local buffer capacity implied by the design point.

    Partitioning replicates banks (padding overhead) and deeper unrolling
    needs wider fetch buffers; this is what makes aggressively-unrolled
    Aladdin points approach programmable-design power, as the paper notes.
    """
    data_kb = sum(ddg.arrays.values()) * BYTES_PER_ELEMENT / 1024.0
    partition_overhead = 1.0 + 0.08 * (design.partition - 1)
    unroll_buffers_kb = 0.25 * design.unroll
    return data_kb * partition_overhead + unroll_buffers_kb


def estimate_power_area(ddg: Ddg, result: ScheduleResult) -> AsicEstimate:
    """Combine schedule + DDG into the final power/area estimate."""
    design = result.design
    resources = design.resources

    datapath_area = CONTROL_AREA_MM2 + CONTROL_AREA_PER_UNROLL_MM2 * design.unroll
    datapath_area += sum(
        FU_AREA_MM2[name] * count for name, count in resources.items()
    )
    leakage_mw = CONTROL_LEAKAGE_MW + CONTROL_LEAKAGE_PER_UNROLL_MW * design.unroll
    leakage_mw += sum(
        FU_LEAKAGE_MW[name] * count for name, count in resources.items()
    )

    sram_kb = local_sram_kb(ddg, design)
    leakage_mw += SRAM_LEAKAGE_MW_PER_KB * sram_kb

    # Dynamic power: datapath op energies plus SRAM access energy for every
    # load/store, averaged over the runtime at 1 GHz (pJ/ns == mW).
    histogram = ddg.op_histogram()
    mem_accesses = histogram.get("load", 0) + histogram.get("store", 0)
    dynamic_pj = ddg.total_energy_pj() + SRAM_DYNAMIC_PJ_PER_ACCESS * mem_accesses
    dynamic_mw = dynamic_pj / max(1, result.cycles)

    return AsicEstimate(
        workload=ddg.name,
        design=design,
        cycles=result.cycles,
        power_mw=leakage_mw + dynamic_mw,
        area_mm2=datapath_area,
        local_sram_kb=sram_kb,
    )
