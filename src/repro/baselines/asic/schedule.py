"""Resource-constrained scheduling of a DDG under a candidate ASIC design.

Aladdin's core step: given the dynamic dependence graph and a set of
hardware constraints (functional-unit counts from loop unrolling, memory
ports from array partitioning), compute the achievable cycle count.  We use
latency-weighted list scheduling — each op starts at the earliest cycle
where its dependences have finished and a resource slot is free — which is
the same "ideally pipelined, resource limited" assumption Aladdin makes.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List

from .ddg import Ddg


@dataclass(frozen=True)
class AsicDesign:
    """One candidate hardware design point.

    ``unroll`` scales datapath resources (Aladdin's loop-unrolling knob);
    ``partition`` scales memory ports (array-partitioning knob).
    """

    unroll: int = 1
    partition: int = 1
    base_alu: int = 2
    base_mul: int = 1
    base_div: int = 1
    base_special: int = 1
    mem_ports_per_partition: int = 2

    @property
    def resources(self) -> Dict[str, int]:
        return {
            "alu": self.base_alu * self.unroll,
            "mul": self.base_mul * self.unroll,
            "div": max(1, self.base_div * max(1, self.unroll // 2)),
            "special": self.base_special * self.unroll,
            "mem": self.mem_ports_per_partition * self.partition,
        }

    def label(self) -> str:
        return f"u{self.unroll}p{self.partition}"


@dataclass
class ScheduleResult:
    """Outcome of scheduling one DDG on one design point."""

    design: AsicDesign
    cycles: int
    ops: int
    resource_busy: Dict[str, int] = field(default_factory=dict)

    @property
    def avg_parallelism(self) -> float:
        return self.ops / self.cycles if self.cycles else 0.0


def schedule_ddg(ddg: Ddg, design: AsicDesign) -> ScheduleResult:
    """List-schedule the DDG; returns total cycles and busy counters."""
    resources = design.resources
    # usage[resource][cycle] = slots consumed that cycle
    usage: Dict[str, Dict[int, int]] = {name: defaultdict(int) for name in resources}
    finish: List[int] = [0] * ddg.num_ops
    busy: Dict[str, int] = {name: 0 for name in resources}
    last_cycle = 0

    for node in ddg.nodes:
        earliest = 0
        for dep in node.deps:
            if finish[dep] > earliest:
                earliest = finish[dep]
        resource = node.resource
        limit = resources[resource]
        slot_usage = usage[resource]
        cycle = earliest
        while slot_usage[cycle] >= limit:
            cycle += 1
        slot_usage[cycle] += 1
        busy[resource] += 1
        finish[node.node_id] = cycle + node.latency
        if finish[node.node_id] > last_cycle:
            last_cycle = finish[node.node_id]

    return ScheduleResult(design, max(last_cycle, 1), ddg.num_ops, busy)
