"""Dynamic data-dependence graphs (DDGs) — the heart of mini-Aladdin.

Aladdin (Shao et al., ISCA'14) estimates fixed-function accelerator
performance pre-RTL by executing the kernel once, recording every dynamic
operation and its data/memory dependences, then scheduling that graph under
candidate hardware constraints.  :class:`TraceBuilder` is our equivalent of
the instrumented execution: reference kernels are written against it (the
code reads like the original C loop nest) and it emits the dependence graph
as a side effect while computing real values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

#: op kind -> (latency cycles, dynamic energy pJ at 55 nm)
OP_COSTS: Dict[str, Tuple[int, float]] = {
    "load": (2, 1.20),
    "store": (2, 1.50),
    "add": (1, 0.10),
    "mul": (3, 0.80),
    "div": (18, 2.40),
    "cmp": (1, 0.05),
    "shift": (1, 0.05),
    "logic": (1, 0.03),
    "special": (2, 0.40),  # sigmoid-class lookup units
}

#: which schedulable resource class each op consumes
OP_RESOURCE: Dict[str, str] = {
    "load": "mem",
    "store": "mem",
    "add": "alu",
    "cmp": "alu",
    "shift": "alu",
    "logic": "alu",
    "mul": "mul",
    "div": "div",
    "special": "special",
}


@dataclass
class DdgNode:
    """One dynamic operation."""

    node_id: int
    kind: str
    deps: Tuple[int, ...]
    array: Optional[str] = None  # for load/store: which array it touches
    index: int = 0  # element index within the array (for partitioning)

    @property
    def latency(self) -> int:
        return OP_COSTS[self.kind][0]

    @property
    def energy_pj(self) -> float:
        return OP_COSTS[self.kind][1]

    @property
    def resource(self) -> str:
        return OP_RESOURCE[self.kind]


class Ddg:
    """A complete dynamic dependence graph plus array metadata."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.nodes: List[DdgNode] = []
        self.arrays: Dict[str, int] = {}  # array name -> element count

    def add(self, kind: str, deps: Sequence[int], array: Optional[str] = None,
            index: int = 0) -> int:
        if kind not in OP_COSTS:
            raise KeyError(f"unknown DDG op kind {kind!r}")
        node_id = len(self.nodes)
        self.nodes.append(DdgNode(node_id, kind, tuple(deps), array, index))
        return node_id

    def declare_array(self, name: str, elements: int) -> None:
        self.arrays[name] = elements

    @property
    def num_ops(self) -> int:
        return len(self.nodes)

    def op_histogram(self) -> Dict[str, int]:
        histogram: Dict[str, int] = {}
        for node in self.nodes:
            histogram[node.kind] = histogram.get(node.kind, 0) + 1
        return histogram

    def total_energy_pj(self) -> float:
        return sum(node.energy_pj for node in self.nodes)

    def critical_path(self) -> int:
        """Longest latency-weighted dependence chain (min possible cycles)."""
        finish = [0] * len(self.nodes)
        for node in self.nodes:
            start = max((finish[d] for d in node.deps), default=0)
            finish[node.node_id] = start + node.latency
        return max(finish, default=0)


class TracedValue:
    """A concrete value carrying its producer node id through the kernel."""

    __slots__ = ("value", "node")

    def __init__(self, value: int, node: int) -> None:
        self.value = value
        self.node = node


class TraceBuilder:
    """Instrumented-execution facade: compute values, record the DDG.

    Memory dependence policy: loads depend on the last store to the same
    array element; stores depend on the last access (read or write) to the
    element — i.e. exact dynamic memory disambiguation, which is what
    Aladdin's trace gives it.
    """

    def __init__(self, name: str) -> None:
        self.ddg = Ddg(name)
        self._arrays: Dict[str, List[int]] = {}
        self._last_store: Dict[Tuple[str, int], int] = {}
        self._last_access: Dict[Tuple[str, int], int] = {}

    # -- arrays ---------------------------------------------------------------

    def array(self, name: str, initial: Sequence[int]) -> None:
        """Declare an array with initial contents."""
        self._arrays[name] = list(initial)
        self.ddg.declare_array(name, len(initial))

    def array_values(self, name: str) -> List[int]:
        """Final contents (for checking the traced kernel computed correctly)."""
        return list(self._arrays[name])

    # -- traced operations ------------------------------------------------------

    def const(self, value: int) -> TracedValue:
        return TracedValue(value, -1)

    def load(self, name: str, index: int) -> TracedValue:
        deps = []
        store = self._last_store.get((name, index))
        if store is not None:
            deps.append(store)
        node = self.ddg.add("load", deps, array=name, index=index)
        self._last_access[(name, index)] = node
        return TracedValue(self._arrays[name][index], node)

    def store(self, name: str, index: int, value: TracedValue) -> None:
        deps = [value.node] if value.node >= 0 else []
        prior = self._last_access.get((name, index))
        if prior is not None:
            deps.append(prior)
        node = self.ddg.add("store", deps, array=name, index=index)
        self._arrays[name][index] = value.value
        self._last_store[(name, index)] = node
        self._last_access[(name, index)] = node

    def _binop(self, kind: str, fn, a: TracedValue, b: TracedValue) -> TracedValue:
        deps = [v.node for v in (a, b) if v.node >= 0]
        node = self.ddg.add(kind, deps)
        return TracedValue(fn(a.value, b.value), node)

    def add(self, a: TracedValue, b: TracedValue) -> TracedValue:
        return self._binop("add", lambda x, y: x + y, a, b)

    def sub(self, a: TracedValue, b: TracedValue) -> TracedValue:
        return self._binop("add", lambda x, y: x - y, a, b)

    def mul(self, a: TracedValue, b: TracedValue) -> TracedValue:
        return self._binop("mul", lambda x, y: x * y, a, b)

    def div(self, a: TracedValue, b: TracedValue) -> TracedValue:
        return self._binop(
            "div", lambda x, y: int(x / y) if y else -1, a, b
        )

    def minimum(self, a: TracedValue, b: TracedValue) -> TracedValue:
        return self._binop("cmp", min, a, b)

    def maximum(self, a: TracedValue, b: TracedValue) -> TracedValue:
        return self._binop("cmp", max, a, b)

    def compare_eq(self, a: TracedValue, b: TracedValue) -> TracedValue:
        return self._binop("cmp", lambda x, y: int(x == y), a, b)

    def select(self, p: TracedValue, a: TracedValue, b: TracedValue) -> TracedValue:
        deps = [v.node for v in (p, a, b) if v.node >= 0]
        node = self.ddg.add("logic", deps)
        return TracedValue(a.value if p.value else b.value, node)

    def shift_right(self, a: TracedValue, amount: int) -> TracedValue:
        node = self.ddg.add("shift", [a.node] if a.node >= 0 else [])
        return TracedValue(a.value >> amount, node)

    def special(self, fn, a: TracedValue) -> TracedValue:
        """A special-function unit application (e.g. sigmoid)."""
        node = self.ddg.add("special", [a.node] if a.node >= 0 else [])
        return TracedValue(fn(a.value), node)
