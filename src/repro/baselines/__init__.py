"""Comparison baselines: CPU (OOO4), GPU (Kepler), DianNao, and ASICs."""

from .cpu import CpuEstimate, CpuParams, ScalarWorkload, cpu_energy_mj, estimate_cpu_cycles
from .diannao import (
    DIANNAO_AREA_MM2,
    DIANNAO_POWER_MW,
    DianNaoParams,
    DnnLayerCost,
    diannao_energy_mj,
    estimate_diannao_cycles,
)
from .gpu import CLASS_UTILIZATION, GpuParams, GpuWorkload, estimate_gpu_cycles

__all__ = [
    "CLASS_UTILIZATION",
    "CpuEstimate",
    "CpuParams",
    "DIANNAO_AREA_MM2",
    "DIANNAO_POWER_MW",
    "DianNaoParams",
    "DnnLayerCost",
    "GpuParams",
    "GpuWorkload",
    "ScalarWorkload",
    "cpu_energy_mj",
    "diannao_energy_mj",
    "estimate_cpu_cycles",
    "estimate_diannao_cycles",
    "estimate_gpu_cycles",
]
