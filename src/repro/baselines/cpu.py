"""CPU baseline: a 4-wide out-of-order core ("OOO4", Sandy Bridge class).

The paper normalises every result to a single thread on an i7-2600K.  We
model the core analytically over a *scalar operation census* of each
workload: the bottleneck is the maximum of the issue-throughput bound, the
per-port structural bounds, the dependence (critical-path) bound and the
memory-bandwidth bound — the standard first-order OOO performance model.
All machines are expressed in cycles at a nominal 1 GHz so that speedups
are directly comparable (frequency differences are folded into the model's
effective-throughput constants, as the paper's normalisation does).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..power.tech import scale_power


@dataclass(frozen=True)
class ScalarWorkload:
    """Scalar operation census of one workload (per full execution).

    ``critical_path`` is the length in cycles of the longest unavoidable
    serial dependence chain (e.g. a reduction that the compiler cannot
    re-associate); ``memory_bytes`` is the total off-chip traffic assuming a
    cache sized like the CPU's LLC.
    """

    name: str
    int_ops: int = 0
    mul_ops: int = 0
    div_ops: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    critical_path: int = 0
    memory_bytes: int = 0
    #: fraction of branches mispredicted (irregular short loops pay here)
    mispredict_rate: float = 0.02

    @property
    def total_instructions(self) -> int:
        return (
            self.int_ops
            + self.mul_ops
            + self.div_ops
            + self.loads
            + self.stores
            + self.branches
        )


@dataclass(frozen=True)
class CpuParams:
    """OOO4 machine parameters (per cycle, 1 GHz-normalised)."""

    issue_width: float = 4.0
    ipc_efficiency: float = 0.70  # branch misses, scheduling gaps
    load_store_ports: float = 2.0
    mul_throughput: float = 1.0
    div_throughput: float = 1.0 / 20.0
    mem_bw_bytes_per_cycle: float = 12.0
    branch_penalty_cycles: float = 14.0
    #: single-core power (caches included), 55 nm-normalised, mW
    power_mw: float = scale_power(5200.0, 32.0, 55.0)
    area_mm2: float = 18.0  # one SNB core + its LLC slice at 55 nm


@dataclass
class CpuEstimate:
    """Cycle estimate with the contributing bounds, for reporting."""

    workload: str
    cycles: float
    bounds: Dict[str, float] = field(default_factory=dict)

    @property
    def limiting_factor(self) -> str:
        return max(self.bounds, key=self.bounds.get)  # type: ignore[arg-type]


def estimate_cpu_cycles(
    workload: ScalarWorkload, params: CpuParams = CpuParams()
) -> CpuEstimate:
    """First-order OOO model: cycles = max over structural/dependence bounds."""
    mispredicts = (
        workload.branches * workload.mispredict_rate * params.branch_penalty_cycles
    )
    bounds = {
        "issue": workload.total_instructions
        / (params.issue_width * params.ipc_efficiency),
        "memory_ports": (workload.loads + workload.stores)
        / params.load_store_ports,
        "multiply": workload.mul_ops / params.mul_throughput,
        "divide": workload.div_ops / params.div_throughput,
        "dependences": float(workload.critical_path),
        "bandwidth": workload.memory_bytes / params.mem_bw_bytes_per_cycle,
    }
    # Misprediction flushes serialise with whatever else bounds the run.
    cycles = max(bounds.values()) + mispredicts
    bounds["mispredicts"] = mispredicts
    return CpuEstimate(workload.name, max(cycles, 1.0), bounds)


def cpu_energy_mj(cycles: float, params: CpuParams = CpuParams()) -> float:
    """Energy in millijoules at 1 GHz."""
    return params.power_mw * cycles / 1e9
