"""DianNao baseline: the domain-specific DNN accelerator (Chen et al.).

The paper compares Softbrain against DianNao "using a simple performance
model [that] optimistically assumes perfect hardware pipelining and
scratchpad reuse; it is only bound by parallelism in the neural network
topology and by memory bandwidth" (Section 6).  That is exactly this model:

    cycles = max(MACs / NFU_throughput,  unique_bytes / memory_bandwidth)

Power and area are the published DianNao figures normalised to 55 nm, as
used in the paper's Table 3 (2.16 mm², 418.3 mW).
"""

from __future__ import annotations

from dataclasses import dataclass

#: published DianNao figures, normalised to 55 nm (paper Table 3)
DIANNAO_AREA_MM2 = 2.16
DIANNAO_POWER_MW = 418.3


@dataclass(frozen=True)
class DianNaoParams:
    """NFU-1/2/3 structural parameters (Tn = 16)."""

    #: 16x16 multipliers feeding adder trees: MACs retired per cycle
    macs_per_cycle: int = 256
    #: pooling/activation path throughput, simple ops per cycle
    simple_ops_per_cycle: int = 256
    #: memory interface bandwidth, bytes per cycle (same DRAM as Softbrain)
    mem_bw_bytes_per_cycle: float = 16.0


@dataclass(frozen=True)
class DnnLayerCost:
    """Topology-derived cost of one layer for the DianNao model."""

    name: str
    mac_ops: int
    simple_ops: int
    #: unique bytes with perfect on-chip reuse (weights + inputs + outputs)
    unique_bytes: int
    #: traffic inflation from partial-sum re-fetching between NBout tiles.
    #: The paper attributes Softbrain's pooling advantage to exactly this:
    #: DianNao re-fetches neighbouring partial sums that Softbrain's more
    #: flexible network keeps on-fabric (Section 7.1).
    refetch_factor: float = 1.0


def estimate_diannao_cycles(
    layer: DnnLayerCost, params: DianNaoParams = DianNaoParams()
) -> float:
    """The paper's optimistic DianNao performance model."""
    compute = (
        layer.mac_ops / params.macs_per_cycle
        + layer.simple_ops / params.simple_ops_per_cycle
    )
    memory = (
        layer.unique_bytes * layer.refetch_factor / params.mem_bw_bytes_per_cycle
    )
    return max(compute, memory, 1.0)


def diannao_energy_mj(cycles: float) -> float:
    """Energy at 1 GHz in millijoules (flat published power)."""
    return DIANNAO_POWER_MW * cycles / 1e9
