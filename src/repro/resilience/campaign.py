"""Fault-campaign driver: sweep fault classes x seeds, assert detection.

For every (seed, case) pair the driver generates a random legal stream
program (the fuzz layer's generator), runs it clean to get the baseline
cycle count, then re-runs it once per fault class with a single fault
aimed inside the baseline run window.  Each faulted run is classified:

``detected``
    The simulator raised a :class:`~repro.sim.errors.SimError` carrying a
    structured :class:`~repro.resilience.report.FailureReport` — the fault
    was caught *and* diagnosed.
``divergent``
    The run completed but the three-way fuzz oracle flagged the wrong
    result (e.g. a ``mem.corrupt`` flip surfacing as a memory mismatch) —
    the fault was caught by the oracle, not silently absorbed.
``benign``
    The run completed and the oracle verified the result bit-for-bit
    (e.g. a ``mem.delay`` only slowed the run down).
``not-fired``
    The planned fault never triggered (aimed past the program's end).

Anything else is a campaign **failure**: ``unstructured`` (a non-SimError
escaped — the diagnostics layer has a hole), ``undiagnosed`` (a SimError
without a crash dump), ``nondeterministic`` (the same seed did not
reproduce the same outcome/report), or ``mode-divergent`` (the outcome
changed when the ``fast_path`` parameter was flipped — impossible while
the fast path honours its contract of disabling itself under injection,
see docs/PERFORMANCE.md).  A campaign with zero failures is the
acceptance property: *no injected fault ever produces a silent wrong
answer or an undiagnosed crash*.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence

from ..sim.softbrain import SoftbrainParams
from .faults import FAULT_KINDS, FaultInjector, FaultPlan, random_spec

#: oracle divergence kinds meaning "SimError raised" (see fuzz.oracle)
DETECTED_KINDS = ("sim-error", "sim-deadlock")
#: classifications that fail a campaign
BAD_CLASSIFICATIONS = ("unstructured", "undiagnosed", "nondeterministic",
                       "mode-divergent")
#: cycle ceiling for faulted runs (delays/stalls make programs slower,
#: but a bounded limit keeps a livelocked run from hanging the campaign)
DEFAULT_MAX_CYCLES = 300_000


@dataclass
class CaseOutcome:
    """One (program, fault) run of the campaign."""

    seed: int
    case: str
    fault_kind: str
    spec: Dict[str, object]
    classification: str
    detail: str
    dump: Optional[str] = None

    @property
    def bad(self) -> bool:
        return self.classification in BAD_CLASSIFICATIONS


@dataclass
class CampaignResult:
    outcomes: List[CaseOutcome] = field(default_factory=list)

    @property
    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for outcome in self.outcomes:
            out[outcome.classification] = out.get(outcome.classification, 0) + 1
        return out

    @property
    def failures(self) -> List[CaseOutcome]:
        return [o for o in self.outcomes if o.bad]

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        counts = ", ".join(
            f"{k}={v}" for k, v in sorted(self.counts.items()))
        verdict = "PASS" if self.ok else "FAIL"
        return (f"campaign {verdict}: {len(self.outcomes)} faulted runs "
                f"({counts})")


def _classify(report, injector: FaultInjector):
    """(classification, detail, failure_report_or_None) for one run."""
    if report.ok:
        if injector.fired:
            return "benign", "oracle verified bit-identical result", None
        return "not-fired", "fault window missed the run", None
    crash = next((d for d in report.divergences if d.kind == "sim-crash"),
                 None)
    if crash is not None:
        return ("unstructured",
                f"non-SimError escaped: {crash.detail}", None)
    detected = next(
        (d for d in report.divergences if d.kind in DETECTED_KINDS), None)
    if detected is not None:
        failure_report = getattr(detected.exception, "report", None)
        if failure_report is None:
            return ("undiagnosed",
                    f"SimError without crash dump: {detected.detail}", None)
        return ("detected",
                f"{detected.kind}: {detected.detail.splitlines()[0]}",
                failure_report)
    first = report.divergences[0]
    return ("divergent",
            f"oracle flagged {first.kind}: {first.detail[:120]}", None)


def run_campaign(
    classes: Sequence[str] = FAULT_KINDS,
    seeds: Sequence[int] = (0, 1, 2),
    cases_per_seed: int = 2,
    max_cycles: int = DEFAULT_MAX_CYCLES,
    dump_dir: Optional[str] = None,
    check_determinism: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> CampaignResult:
    """Sweep ``classes`` x ``seeds`` x ``cases_per_seed`` faulted runs."""
    from ..fuzz.generators import random_plan
    from ..fuzz.oracle import run_case

    say = progress or (lambda _line: None)
    result = CampaignResult()
    params = SoftbrainParams(max_cycles=max_cycles)

    for seed in seeds:
        for case_index in range(cases_per_seed):
            name = f"fault-{seed}-{case_index}"
            plan = random_plan(random.Random(f"faultcase:{seed}:{case_index}"),
                               name=name)
            # both_modes: the clean baseline doubles as a fast-vs-slow
            # equivalence check (fourth oracle leg) for free.
            baseline = run_case(plan, both_modes=True)
            if not baseline.ok:
                # A clean-run divergence is the fuzzer's jurisdiction, not
                # a fault-detection result; skip rather than misclassify.
                say(f"{name}: baseline diverges, skipping "
                    f"({baseline.divergences[0].kind})")
                continue
            window = max(2, baseline.sim_cycles)
            for kind in classes:
                outcome = _run_one(run_case, plan, name, seed, kind, window,
                                   params, dump_dir, check_determinism)
                result.outcomes.append(outcome)
                say(f"{name} {kind}: {outcome.classification} "
                    f"({outcome.detail})")
    return result


def _spec_for(seed: int, name: str, kind: str, window: int):
    rng = random.Random(f"faultspec:{seed}:{name}:{kind}")
    return random_spec(rng, kind, window)


def _run_one(run_case, plan, name: str, seed: int, kind: str, window: int,
             params: SoftbrainParams, dump_dir: Optional[str],
             check_determinism: bool) -> CaseOutcome:
    spec = _spec_for(seed, name, kind, window)
    fault_plan = FaultPlan(f"{name}:{kind}", [spec])

    def faulted_run(run_params=params):
        injector = FaultInjector(FaultPlan.from_dict(fault_plan.to_dict()))
        return run_case(plan, faults=injector, params=run_params), injector

    report, injector = faulted_run()
    classification, detail, failure_report = _classify(report, injector)
    outcome = CaseOutcome(seed=seed, case=name, fault_kind=kind,
                          spec=spec.to_dict(),
                          classification=classification, detail=detail)

    if check_determinism:
        report2, injector2 = faulted_run()
        classification2, _detail2, failure_report2 = _classify(
            report2, injector2)
        same = classification2 == classification
        if same and failure_report is not None:
            same = failure_report2 is not None and (
                failure_report.to_json() == failure_report2.to_json())
        if not same:
            outcome.classification = "nondeterministic"
            outcome.detail = (f"rerun classified {classification2!r}, "
                              f"first run {classification!r}")
            return outcome

        # Mode insensitivity: flipping fast_path must not change the
        # outcome (the injector forces the slow path either way, so a
        # difference means the fast path engaged under faults — a bug).
        flipped = replace(params, fast_path=not params.fast_path)
        report3, injector3 = faulted_run(flipped)
        classification3, _detail3, failure_report3 = _classify(
            report3, injector3)
        same = classification3 == classification
        if same and failure_report is not None:
            same = failure_report3 is not None and (
                failure_report.to_json() == failure_report3.to_json())
        if not same:
            outcome.classification = "mode-divergent"
            outcome.detail = (
                f"fast_path={flipped.fast_path} classified "
                f"{classification3!r}, first run {classification!r}")
            return outcome

    if failure_report is not None and dump_dir:
        os.makedirs(dump_dir, exist_ok=True)
        filename = f"{name}-{kind.replace('.', '_')}.json"
        outcome.dump = failure_report.save(os.path.join(dump_dir, filename))
    return outcome
