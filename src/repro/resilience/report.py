"""Structured failure reports: the JSON crash dump of a dead simulation.

Every :class:`~repro.sim.errors.SimError` that escapes
:meth:`SoftbrainSim.run` (or the multi-unit loop) is annotated with a
:class:`FailureReport` on ``exc.report``: the failing cycle, the hang
watchdog's wait-for graph with root-cause chains, a per-component state
snapshot, the last-N trace events (when the run was traced through a sink
with a ``tail_events`` method, e.g. :class:`repro.trace.RingSink`), and
the record of injected faults.  Reports are deterministic — no wall-clock
timestamps, sorted JSON keys — so the same seed reproduces a byte-identical
dump, which the fault campaign asserts.

:class:`ResiliencePolicy` / :func:`run_resilient` implement the degradation
policy around a failing run: ``abort`` (re-raise, default), ``retry``
(re-run from the program-start checkpoint up to ``max_retries`` times) or
``continue`` (record the failure and carry on with a flagged outcome).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from .watchdog import build_wait_graph

#: schema version of the JSON dump
REPORT_VERSION = 1


@dataclass
class FailureReport:
    """One structured crash dump (see ``docs/RESILIENCE.md`` for schema)."""

    kind: str  #: SimError.kind, e.g. "deadlock", "limit"
    program: str
    cycle: int
    message: str
    chains: List[str] = field(default_factory=list)
    wait_graph: Dict[str, Any] = field(default_factory=dict)
    components: Dict[str, Any] = field(default_factory=dict)
    trace_tail: List[Dict[str, Any]] = field(default_factory=list)
    faults: List[Dict[str, Any]] = field(default_factory=list)
    version: int = REPORT_VERSION

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "kind": self.kind,
            "program": self.program,
            "cycle": self.cycle,
            "message": self.message,
            "chains": list(self.chains),
            "wait_graph": self.wait_graph,
            "components": self.components,
            "trace_tail": list(self.trace_tail),
            "faults": list(self.faults),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FailureReport":
        return cls(
            kind=data["kind"], program=data["program"],
            cycle=data["cycle"], message=data["message"],
            chains=list(data.get("chains", [])),
            wait_graph=data.get("wait_graph", {}),
            components=data.get("components", {}),
            trace_tail=list(data.get("trace_tail", [])),
            faults=list(data.get("faults", [])),
            version=data.get("version", REPORT_VERSION),
        )

    @classmethod
    def from_json(cls, text: str) -> "FailureReport":
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> str:
        with open(path, "w") as stream:
            stream.write(self.to_json())
            stream.write("\n")
        return path

    def render(self) -> str:
        """Compact human-readable form appended to the exception message."""
        lines = [f"-- failure report ({self.kind}, cycle {self.cycle}) --"]
        if self.chains:
            lines.append("root-cause chains:")
            lines.extend(f"  {chain}" for chain in self.chains)
        if self.faults:
            lines.append("injected faults fired:")
            lines.extend(
                f"  {f['kind']} @ cycle {f['fired_at']} on {f['target']}: "
                f"{f['detail']}"
                for f in self.faults
            )
        queue = self.components.get("dispatcher", {}).get("queue", [])
        if queue:
            lines.append(f"dispatcher queue ({len(queue)}): "
                         + ", ".join(queue[:6])
                         + (" ..." if len(queue) > 6 else ""))
        if self.trace_tail:
            lines.append(f"trace tail: {len(self.trace_tail)} events "
                         f"retained (see JSON dump)")
        return "\n".join(lines)


def snapshot_components(sim) -> Dict[str, Any]:
    """Deterministic per-component state snapshot of one unit."""
    engines = {}
    for name in sorted(sim.engines):
        engine = sim.engines[name]
        engines[name] = [
            {
                "command": s.trace.label,
                "index": s.trace.index,
                "elements_left": s.elements_left,
                "pending_deliveries": len(s.pending),
                "issued_all": s.issued_all,
            }
            for s in engine.streams
        ]
    ports: Dict[str, Any] = {}
    for pool in (sim.input_ports, sim.output_ports, sim.indirect_ports):
        for state in pool.values():
            if state.occupancy or state.reserved:
                name = f"{state.spec.direction}{state.spec.port_id}"
                ports[name] = {"occupancy": state.occupancy,
                               "reserved": state.reserved}
    cgra: Optional[Dict[str, Any]] = None
    if sim.cgra is not None:
        ok, why = sim.cgra.can_fire()
        cgra = {"in_flight": sim.cgra.in_flight,
                "can_fire": ok, "blocked_on": why}
    stats = sim.memory.stats
    return {
        "core": {
            "pc": sim.core.pc,
            "finished": sim.core.finished,
            "stall_cycles": sim.core.stall_cycles,
        },
        "dispatcher": {
            "queue": [f"{t.label} #{t.index}" for t in sim.dispatcher.queue],
            "busy_ports": {
                f"{kind}{pid}:{role}": count
                for (kind, pid, role), count in sorted(
                    sim.dispatcher.busy_ports.items())
            },
        },
        "engines": engines,
        "ports": dict(sorted(ports.items())),
        "cgra": cgra,
        "outstanding": dict(sim.outstanding),
        "memory": {
            "reads": stats.reads, "writes": stats.writes,
            "hits": stats.hits, "misses": stats.misses,
        },
    }


def _trace_tail(sim) -> List[Dict[str, Any]]:
    tail = getattr(sim.trace, "tail_events", None)
    if tail is None:
        return []
    return [event.to_json_dict() for event in tail()]


def build_failure_report(sim, exc) -> FailureReport:
    """Crash dump for one failing unit (called from ``SoftbrainSim._fail``)."""
    graph = build_wait_graph(sim)
    return FailureReport(
        kind=getattr(exc, "kind", "error"),
        program=sim.program.name,
        cycle=exc.cycle if exc.cycle is not None else sim.cycle,
        message=str(exc.args[0]) if exc.args else type(exc).__name__,
        chains=graph.chains(),
        wait_graph=graph.to_dict(),
        components=snapshot_components(sim),
        trace_tail=_trace_tail(sim),
        faults=list(sim.faults.fired) if sim.faults is not None else [],
    )


def build_multi_unit_report(sims, exc) -> FailureReport:
    """Aggregated crash dump across the stuck units of a multi-unit run."""
    chains: List[str] = []
    nodes: Dict[str, Any] = {}
    edges: List[Dict[str, str]] = []
    components: Dict[str, Any] = {}
    faults: List[Dict[str, Any]] = []
    tail: List[Dict[str, Any]] = []
    for sim in sims:
        prefix = f"u{sim.unit}"
        graph = build_wait_graph(sim)
        chains.extend(f"[unit {sim.unit}] {c}" for c in graph.chains())
        graph_dict = graph.to_dict()
        for nid, info in graph_dict["nodes"].items():
            nodes[f"{prefix}:{nid}"] = info
        edges.extend(
            {"src": f"{prefix}:{e['src']}", "dst": f"{prefix}:{e['dst']}",
             "reason": e["reason"]}
            for e in graph_dict["edges"]
        )
        components[f"unit{sim.unit}"] = snapshot_components(sim)
        if sim.faults is not None:
            faults.extend(dict(f, unit=sim.unit) for f in sim.faults.fired)
        if not tail:
            tail = _trace_tail(sim)  # units usually share one sink
    return FailureReport(
        kind=getattr(exc, "kind", "error"),
        program=exc.program_name or "multi-unit",
        cycle=exc.cycle if exc.cycle is not None else 0,
        message=str(exc.args[0]) if exc.args else type(exc).__name__,
        chains=chains,
        wait_graph={"nodes": nodes, "edges": edges},
        components=components,
        trace_tail=tail,
        faults=faults,
    )


# -- degradation policy ------------------------------------------------------


@dataclass
class ResiliencePolicy:
    """What to do when a run raises a :class:`SimError`.

    ``abort``: re-raise (the default, and what plain ``run_program`` does
    anyway).  ``retry``: re-run from the program-start checkpoint up to
    ``max_retries`` more times — meaningful when faults are transient
    (injected or environmental), pointless for deterministic bugs.
    ``continue``: swallow the failure and return a flagged outcome so a
    campaign can keep sweeping.  With ``dump_dir`` set, every failure's
    JSON crash dump is written there.
    """

    mode: str = "abort"  # "abort" | "retry" | "continue"
    max_retries: int = 1
    dump_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.mode not in ("abort", "retry", "continue"):
            raise ValueError(f"unknown resilience mode {self.mode!r}")


@dataclass
class ResilientOutcome:
    """Result of :func:`run_resilient`."""

    result: Any  #: the run's return value, or None if every attempt failed
    failures: List[BaseException] = field(default_factory=list)
    attempts: int = 0
    dumps: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.result is not None and not self.failures

    @property
    def flagged(self) -> bool:
        """True when a failure was tolerated (policy != abort)."""
        return bool(self.failures)


def run_resilient(run: Callable[[], Any],
                  policy: Optional[ResiliencePolicy] = None
                  ) -> ResilientOutcome:
    """Invoke ``run()`` under a degradation policy.

    ``run`` must be restartable from scratch (build a fresh sim per call);
    the program-start state *is* the checkpoint the ``retry`` mode resumes
    from.
    """
    from ..sim.errors import SimError

    policy = policy or ResiliencePolicy()
    outcome = ResilientOutcome(result=None)
    attempts = 1 + (policy.max_retries if policy.mode == "retry" else 0)
    for attempt in range(attempts):
        outcome.attempts = attempt + 1
        try:
            outcome.result = run()
            return outcome
        except SimError as exc:
            outcome.failures.append(exc)
            if policy.dump_dir and exc.report is not None:
                os.makedirs(policy.dump_dir, exist_ok=True)
                path = os.path.join(
                    policy.dump_dir,
                    f"{exc.report.program}-{exc.report.kind}"
                    f"-a{attempt}.json")
                outcome.dumps.append(exc.report.save(path))
            if policy.mode == "abort":
                raise
    return outcome
