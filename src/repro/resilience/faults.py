"""Deterministic fault injection for the Softbrain simulator.

A :class:`FaultPlan` is a JSON-serialisable list of :class:`FaultSpec`
entries — *what* goes wrong, *when*, and *where*.  A :class:`FaultInjector`
executes one plan against one simulation: the simulator's components call
thin hooks (one ``is None`` test on the zero-fault path, mirroring the
trace layer's ``sink.enabled`` guard) and the injector mutates the data,
timing or command stream exactly as planned.  Same plan + same program =>
bit-identical run, which is what lets the campaign driver assert that a
failure reproduces.

Fault classes (:data:`FAULT_KINDS`):

``mem.delay``
    Stretch one memory response by ``arg`` extra cycles (transient
    contention / row-buffer miss).  Never changes data — must be benign.
``mem.corrupt``
    Flip bit ``arg % 64`` of the first word of one memory read response
    (a DRAM bit error past ECC).
``engine.stall``
    Freeze one stream engine (``target`` names it, empty = first to tick)
    for ``arg`` cycles (clock-gating glitch / arbitration livelock).
``cgra.bitflip``
    Flip bit ``arg % 64`` of lane 0 of the first (sorted) output of one
    CGRA instance (transient FU upset).
``port.drop``
    Drop one word from a stream-engine delivery into a vector port
    (``target`` = port name like ``in3``, empty = any port).
``cmd.illegal``
    Flip bit ``arg`` of the encoded command word at program index ``at``
    before it reaches the dispatcher (corrupted command queue entry).
    For this class ``at`` is a *program counter*, not a cycle.

Every fired fault is recorded in :attr:`FaultInjector.fired` and, when the
simulation is traced, emitted as a ``fault.inject`` event.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.isa.commands import Command
from ..core.isa.program import ProgramItem
from ..sim.errors import IllegalCommandError
from ..trace import TraceEvent

#: the closed set of injectable fault classes
FAULT_KINDS: Tuple[str, ...] = (
    "mem.delay",
    "mem.corrupt",
    "engine.stall",
    "cgra.bitflip",
    "port.drop",
    "cmd.illegal",
)

WORD_MASK = (1 << 64) - 1
#: due-threshold sentinel for "no fault of this class pending"
NEVER = 1 << 62


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault.

    ``at`` is the earliest cycle the fault may fire (program index for
    ``cmd.illegal``); the injector fires it at the first opportunity at or
    after ``at`` and exactly once.  ``target`` narrows the victim (engine
    name, port name); empty means "first eligible".  ``arg`` is the
    class-specific magnitude (delay cycles, stall cycles, bit index).
    """

    kind: str
    at: int
    target: str = ""
    arg: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.at < 0:
            raise ValueError("fault cycle must be non-negative")

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "at": self.at,
                "target": self.target, "arg": self.arg}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultSpec":
        return cls(kind=data["kind"], at=int(data["at"]),
                   target=data.get("target", ""), arg=int(data.get("arg", 0)))


@dataclass
class FaultPlan:
    """A named, ordered collection of faults for one run."""

    name: str
    specs: List[FaultSpec] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name,
                "specs": [s.to_dict() for s in self.specs]}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        return cls(name=data["name"],
                   specs=[FaultSpec.from_dict(s) for s in data["specs"]])

    @classmethod
    def random(cls, seed: int, classes: Sequence[str] = FAULT_KINDS,
               max_cycle: int = 2000, count: int = 1) -> "FaultPlan":
        """A reproducible random plan (same seed => same plan)."""
        rng = random.Random(f"faultplan:{seed}")
        specs = []
        for _ in range(count):
            kind = rng.choice(list(classes))
            specs.append(random_spec(rng, kind, max_cycle))
        return cls(name=f"random-{seed}", specs=specs)


def random_spec(rng: random.Random, kind: str,
                max_cycle: int) -> FaultSpec:
    """Draw one spec of class ``kind`` from ``rng``."""
    at = rng.randrange(1, max(2, max_cycle))
    if kind == "mem.delay":
        return FaultSpec(kind, at, arg=rng.choice([7, 63, 511, 4095]))
    if kind == "mem.corrupt":
        return FaultSpec(kind, at, arg=rng.randrange(64))
    if kind == "engine.stall":
        target = rng.choice(["", "mse_read", "mse_write", "sse", "rse"])
        return FaultSpec(kind, at, target=target,
                         arg=rng.choice([16, 128, 1024]))
    if kind == "cgra.bitflip":
        return FaultSpec(kind, at, arg=rng.randrange(64))
    if kind == "port.drop":
        return FaultSpec(kind, at)
    assert kind == "cmd.illegal"
    # ``at`` is a program index; keep it small so it lands inside typical
    # programs (the injector simply never fires when it does not).
    return FaultSpec(kind, rng.randrange(0, 24), arg=rng.randrange(256))


class FaultInjector:
    """Executes one :class:`FaultPlan` against one simulation.

    Single-use: create a fresh injector per run.  All hooks are cheap when
    their pending list is empty, and the simulator skips them entirely when
    no injector is attached.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.sim = None  # attached by SoftbrainSim.__init__
        #: record of every fault that actually fired, in firing order
        self.fired: List[Dict[str, Any]] = []
        self._pending: Dict[str, List[FaultSpec]] = {k: [] for k in FAULT_KINDS}
        for spec in plan.specs:
            self._pending[spec.kind].append(spec)
        for specs in self._pending.values():
            specs.sort(key=lambda s: s.at, reverse=True)  # pop() = earliest
        #: engine name -> cycle until which an engine.stall freezes it
        self._stall_until: Dict[str, int] = {}
        self._refresh_flags()

    def _refresh_flags(self) -> None:
        # Per-class due thresholds: hook sites compare the current cycle
        # (program index for cmd.illegal) against these plain attributes
        # and skip the method call while no fault of that class is due,
        # keeping an attached-but-not-yet-due injector near zero cost.
        pending = self._pending

        def due(kind: str) -> int:
            return pending[kind][-1].at if pending[kind] else NEVER

        self.mem_delay_at = due("mem.delay")
        self.mem_corrupt_at = due("mem.corrupt")
        self.cgra_at = due("cgra.bitflip")
        self.port_drop_at = due("port.drop")
        self.cmd_at = due("cmd.illegal")
        # an active stall window must keep the engine hook firing
        self.engine_stall_at = 0 if self._stall_until else due("engine.stall")

    def attach(self, sim) -> None:
        self.sim = sim

    @property
    def all_fired(self) -> bool:
        return all(not specs for specs in self._pending.values())

    @property
    def unfired(self) -> List[FaultSpec]:
        return [s for specs in self._pending.values() for s in specs]

    def _take(self, kind: str, now: int,
              target: str = "") -> Optional[FaultSpec]:
        """Pop the earliest pending spec of ``kind`` due at ``now``.

        A spec fires at the first hook call at or after its ``at`` (the
        fast-forwarding clock may never step the exact cycle).  A spec
        with a ``target`` only fires when the hook's target matches.
        """
        specs = self._pending[kind]
        if not specs or specs[-1].at > now:
            return None
        if specs[-1].target and target and specs[-1].target != target:
            return None
        spec = specs.pop()
        self._refresh_flags()
        return spec

    def _note(self, spec: FaultSpec, cycle: int, target: str,
              detail: str) -> None:
        self.fired.append({
            "kind": spec.kind, "planned_at": spec.at, "fired_at": cycle,
            "target": target, "arg": spec.arg, "detail": detail,
        })
        sim = self.sim
        if sim is not None and sim.trace.enabled:
            sim.trace.emit(TraceEvent(
                "fault.inject", cycle, sim.unit, "faults",
                {"fault": spec.kind, "target": target, "detail": detail},
            ))

    # -- hooks (called by the simulator when an injector is attached) --------

    def mem_delay(self, cycle: int, line_addr: int, is_write: bool) -> int:
        """Extra response latency for this memory request (``mem.delay``)."""
        spec = self._take("mem.delay", cycle)
        if spec is None:
            return 0
        self._note(spec, cycle, "memory",
                   f"line 0x{line_addr:x} {'write' if is_write else 'read'} "
                   f"delayed {spec.arg} cycles")
        return spec.arg

    def corrupt_read(self, cycle: int, words: List[int]) -> List[int]:
        """Flip one bit in a memory read response (``mem.corrupt``)."""
        if not words:
            return words
        spec = self._take("mem.corrupt", cycle)
        if spec is None:
            return words
        bit = spec.arg % 64
        out = list(words)
        out[0] = (out[0] ^ (1 << bit)) & WORD_MASK
        self._note(spec, cycle, "memory", f"read word bit {bit} flipped")
        return out

    def engine_stall_until(self, name: str, cycle: int) -> int:
        """Cycle until which engine ``name`` is frozen (``engine.stall``)."""
        spec = self._take("engine.stall", cycle, target=name)
        if spec is not None:
            until = cycle + max(1, spec.arg)
            self._stall_until[name] = max(self._stall_until.get(name, 0), until)
            self._note(spec, cycle, name, f"stalled until cycle {until}")
            self.engine_stall_at = 0
        elif (self._stall_until
              and not self._pending["engine.stall"]
              and all(u <= cycle for u in self._stall_until.values())):
            # every planned stall has fired and expired: drop back to the
            # zero-cost path for the rest of the run
            self._stall_until.clear()
            self._refresh_flags()
        return self._stall_until.get(name, 0)

    def stalled_until(self, name: str) -> int:
        """Read-only view of an active stall (used by the watchdog — must
        not fire pending specs post-mortem)."""
        return self._stall_until.get(name, 0)

    def flip_cgra_output(self, cycle: int,
                         results: Dict[str, List[int]]) -> None:
        """Flip one bit of one CGRA instance's output (``cgra.bitflip``)."""
        if not results:
            return
        spec = self._take("cgra.bitflip", cycle)
        if spec is None:
            return
        name = sorted(results)[0]
        bit = spec.arg % 64
        results[name][0] = (results[name][0] ^ (1 << bit)) & WORD_MASK
        self._note(spec, cycle, "cgra",
                   f"output {name} lane 0 bit {bit} flipped")

    def drop_port_words(self, cycle: int, port_name: str,
                        words: List[int]) -> List[int]:
        """Drop one word from a port delivery (``port.drop``)."""
        spec = self._take("port.drop", cycle, target=port_name)
        if spec is None:
            return words
        index = spec.arg % len(words)
        out = words[:index] + words[index + 1:]
        self._note(spec, cycle, port_name,
                   f"dropped word {index} of {len(words)}")
        return out

    def mangle_command(self, index: int, item: ProgramItem) -> ProgramItem:
        """Flip one bit of the encoded command word at program index
        ``at`` (``cmd.illegal``); raises :class:`IllegalCommandError` when
        the result no longer decodes to a command the unit can execute."""
        specs = self._pending["cmd.illegal"]
        if not specs or specs[-1].at > index or not isinstance(item, Command):
            return item
        spec = specs.pop()
        self._refresh_flags()
        from ..core.isa.encoding import decode_item, encode_item

        data = bytearray(encode_item(item))
        bit = spec.arg % (len(data) * 8)
        data[bit // 8] ^= 1 << (bit % 8)
        cycle = self.sim.cycle if self.sim is not None else 0
        self._note(spec, cycle, "core",
                   f"command #{index} ({type(item).__name__}) encoded bit "
                   f"{bit} flipped")
        try:
            decoded, _ = decode_item(bytes(data))
        except Exception as exc:  # EncodingError, struct.error, ValueError
            raise IllegalCommandError(
                f"illegal command word at program index {index}: "
                f"{type(item).__name__} with bit {bit} flipped does not "
                f"decode ({exc})") from None
        if not isinstance(decoded, Command):
            raise IllegalCommandError(
                f"illegal command word at program index {index}: decodes "
                f"to non-command {type(decoded).__name__}")
        self._validate_decoded(index, decoded)
        return decoded

    def _validate_decoded(self, index: int, command: Command) -> None:
        """The dispatcher's decode stage: reject commands that reference
        hardware this unit does not have."""
        sim = self.sim
        if sim is None:
            return
        from ..core.isa.commands import port_uses

        pools = {"in": sim.input_ports, "out": sim.output_ports,
                 "ind": sim.indirect_ports}
        for port, _role in port_uses(command):
            if port.port_id not in pools[port.kind]:
                raise IllegalCommandError(
                    f"illegal command at program index {index}: "
                    f"{type(command).__name__} references nonexistent "
                    f"port {port}")
        if command.engine not in sim.engines and command.engine != "dispatch":
            raise IllegalCommandError(
                f"illegal command at program index {index}: unknown "
                f"engine {command.engine!r}")
