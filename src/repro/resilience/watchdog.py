"""Hang watchdog: turn a stuck simulator into a wait-for graph.

When the run loop detects no progress and no pending events (deadlock), or
trips the cycle limit, :func:`build_wait_graph` walks the simulator's
architectural state — queued commands, active streams, vector ports, the
CGRA and the control core — and records *who is waiting on whom and why*
as a :class:`WaitGraph`.  :meth:`WaitGraph.chains` then walks the graph
from the observable stuck work down to its root causes, producing lines
like::

    SD_Port_Mem #7 [dest port out3 has no data] <- port out3
        [no output from fabric] <- cgra [starved on in1] <- port in1
        [no stream writes this port]

The walker duck-types ``SoftbrainSim`` (it only reads public attributes),
so it works on any object with the same shape and never imports the sim
package — keeping ``repro.sim`` -> ``repro.resilience`` a one-way,
lazily-imported dependency.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..core.isa.commands import (
    PortRef,
    SDBarrierAll,
    SDBarrierScratchRd,
    SDBarrierScratchWr,
    SDCleanPort,
    SDConfig,
    SDConstPort,
    SDIndPortMem,
    SDIndPortPort,
    SDMemPort,
    SDMemScratch,
    SDPortMem,
    SDPortPort,
    SDPortScratch,
    SDScratchPort,
    is_barrier,
    port_uses,
)

#: cap on rendered root-cause chains (the graph itself is complete)
MAX_CHAINS = 10


class WaitGraph:
    """Nodes (stuck actors) and directed wait-for edges with reasons."""

    def __init__(self) -> None:
        #: node id -> {"label": ..., "detail": ...}
        self.nodes: Dict[str, Dict[str, str]] = {}
        #: (src, dst, reason), in insertion order (deterministic)
        self.edges: List[Tuple[str, str, str]] = []

    def add_node(self, node_id: str, label: str, detail: str = "") -> None:
        if node_id not in self.nodes:
            self.nodes[node_id] = {"label": label, "detail": detail}

    def add_edge(self, src: str, dst: str, reason: str) -> None:
        edge = (src, dst, reason)
        if edge not in self.edges:
            self.edges.append(edge)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "nodes": {nid: dict(info) for nid, info in self.nodes.items()},
            "edges": [
                {"src": s, "dst": d, "reason": r} for s, d, r in self.edges
            ],
        }

    # -- chain extraction ----------------------------------------------------

    def _first_edge(self, node_id: str) -> Optional[Tuple[str, str]]:
        for src, dst, reason in self.edges:
            if src == node_id:
                return dst, reason
        return None

    def chains(self) -> List[str]:
        """Root-cause chains: from each stuck command/stream, follow the
        first wait-for edge until a terminal node or a cycle closes."""
        has_in = {dst for _src, dst, _r in self.edges}
        starts = [
            nid for nid in self.nodes
            if (nid.startswith("cmd:") or nid.startswith("stream:"))
            and self._first_edge(nid) is not None
        ]
        # Prefer true roots (nothing waits on them); fall back to all.
        roots = [nid for nid in starts if nid not in has_in] or starts
        out: List[str] = []
        for start in roots[:MAX_CHAINS]:
            parts: List[str] = []
            seen = set()
            node: Optional[str] = start
            while node is not None and node not in seen:
                seen.add(node)
                info = self.nodes.get(node, {"label": node, "detail": ""})
                step = self._first_edge(node)
                if step is None:
                    tail = info["label"]
                    if info["detail"]:
                        tail += f" [{info['detail']}]"
                    parts.append(tail)
                    node = None
                else:
                    dst, reason = step
                    parts.append(f"{info['label']} [{reason}]")
                    node = dst
            if node is not None:  # cycle closed
                parts.append(f"{self.nodes[node]['label']} (cycle)")
            out.append(" <- ".join(parts))
        return out


#: HwVectorPort.direction -> PortRef.kind
_DIR_TO_KIND = {"in": "in", "out": "out", "indirect": "ind"}


def _port_name(kind: str, port_id: int) -> str:
    return {"in": "in", "out": "out", "ind": "indirect"}[kind] + str(port_id)


def _port_node(graph: WaitGraph, kind: str, port_id: int) -> str:
    node_id = f"port:{kind}{port_id}"
    graph.add_node(node_id, f"port {_port_name(kind, port_id)}")
    return node_id


def _stream_holders(sim, kind: str, port_id: int,
                    role: Optional[str] = None) -> List[Any]:
    """Active streams using port (kind, port_id), optionally role-filtered."""
    holders = []
    for engine in sim.engines.values():
        for stream in engine.streams:
            for port, use_role in port_uses(stream.command):
                if (port.kind, port.port_id) == (kind, port_id) and (
                    role is None or use_role == role
                ):
                    holders.append(stream)
    return holders


def _stream_node(graph: WaitGraph, stream) -> str:
    node_id = f"stream:{stream.trace.index}"
    graph.add_node(node_id, f"{stream.trace.label} #{stream.trace.index}")
    return node_id


def _cmd_node(graph: WaitGraph, trace) -> str:
    node_id = f"cmd:{trace.index}"
    graph.add_node(node_id, f"{trace.label} #{trace.index} (queued)")
    return node_id


def _stream_port_needs(command) -> List[Tuple[str, str, str]]:
    """(kind, role, why) for each port condition an active stream waits on.

    role "r": the stream needs data *in* the port; role "w": the stream
    needs *room* in the port.  ``why`` is the human reason.
    """
    needs = []
    if isinstance(command, (SDPortMem, SDPortScratch, SDCleanPort,
                            SDPortPort)):
        p = command.source
        needs.append((f"{p.kind}:{p.port_id}", "r", f"source {p} has no data"))
    if isinstance(command, (SDIndPortPort, SDIndPortMem)):
        p = command.index_port
        needs.append((f"{p.kind}:{p.port_id}", "r",
                      f"index port {p} has no addresses"))
    if isinstance(command, SDIndPortMem):
        p = command.source
        needs.append((f"{p.kind}:{p.port_id}", "r", f"source {p} has no data"))
    if isinstance(command, (SDMemPort, SDScratchPort, SDConstPort,
                            SDPortPort, SDIndPortPort)):
        p = command.dest
        needs.append((f"{p.kind}:{p.port_id}", "w", f"dest {p} is full"))
    return needs


def build_wait_graph(sim, cycle: Optional[int] = None) -> WaitGraph:
    """Build the wait-for graph of one stuck Softbrain unit."""
    graph = WaitGraph()
    if cycle is None:
        cycle = sim.cycle
    referenced_ports: set = set()

    # -- control core --------------------------------------------------------
    if not sim.core.finished and not sim.dispatcher.can_enqueue():
        graph.add_node("core", "control core",
                       f"stalled at pc {sim.core.pc}")
        if sim.dispatcher.queue:
            head = sim.dispatcher.queue[0]
            reason = ("SD_Barrier_All in queue"
                      if any(isinstance(t.command, SDBarrierAll)
                             for t in sim.dispatcher.queue)
                      else "dispatcher queue full")
            graph.add_edge("core", _cmd_node(graph, head), reason)

    # -- queued commands -----------------------------------------------------
    barrier_ahead = None
    for trace in sim.dispatcher.queue:
        command = trace.command
        node = _cmd_node(graph, trace)
        if barrier_ahead is not None:
            graph.add_edge(node, barrier_ahead, "queued behind barrier")
            continue
        if is_barrier(command):
            barrier_ahead = node
            _explain_barrier(graph, sim, node, command)
            continue
        if isinstance(command, SDConfig) and not sim.quiesced():
            _edges_to_active_work(graph, sim, node,
                                  "reconfiguration waits for quiesce")
            continue
        engine = sim.engines[command.engine] if command.engine != "dispatch" \
            else None
        if engine is not None and not engine.has_free_slot():
            eng_node = f"engine:{engine.name}"
            graph.add_node(eng_node, f"engine {engine.name}",
                           "stream table full")
            graph.add_edge(node, eng_node, f"{engine.name} table full")
            for stream in engine.streams:
                graph.add_edge(eng_node, _stream_node(graph, stream),
                               "table entry held")
            continue
        for port, role in port_uses(command):
            if sim.dispatcher.busy_ports.get((port.kind, port.port_id, role)):
                for holder in _stream_holders(sim, port.kind, port.port_id,
                                              role):
                    if holder.command is command:
                        continue
                    graph.add_edge(
                        node, _stream_node(graph, holder),
                        f"port {port} ({role}) held by earlier stream")

    # -- active streams ------------------------------------------------------
    for engine in sim.engines.values():
        stalled_by_fault = False
        if sim.faults is not None:
            stalled_by_fault = (
                sim.faults.stalled_until(engine.name) > cycle)
        for stream in engine.streams:
            node = _stream_node(graph, stream)
            if stalled_by_fault:
                eng_node = f"engine:{engine.name}"
                graph.add_node(eng_node, f"engine {engine.name}",
                               "frozen by injected engine.stall fault")
                graph.add_edge(node, eng_node, "engine frozen by fault")
                continue
            if stream.pending:
                dest = stream.pending[0][2]
                if dest is not None and stream.pending[0][0] <= cycle:
                    if dest.free_words < len(stream.pending[0][1]):
                        kind = _DIR_TO_KIND[dest.spec.direction]
                        pid = dest.spec.port_id
                        referenced_ports.add((kind, pid))
                        graph.add_edge(
                            node, _port_node(graph, kind, pid),
                            f"delivery blocked: port "
                            f"{_port_name(kind, pid)} full")
                        continue
            done = stream.issued_all and not stream.pending
            if done:
                continue
            for key, role, why in _stream_port_needs(stream.command):
                kind, pid_s = key.split(":")
                pid = int(pid_s)
                port = sim.port_state(PortRef(kind, pid))
                if role == "r" and port.occupancy == 0:
                    referenced_ports.add((kind, pid))
                    graph.add_edge(node, _port_node(graph, kind, pid), why)
                elif role == "w" and port.free_words <= 0:
                    referenced_ports.add((kind, pid))
                    graph.add_edge(node, _port_node(graph, kind, pid), why)

    # -- vector ports --------------------------------------------------------
    for kind, pid in sorted(referenced_ports):
        node = _port_node(graph, kind, pid)
        port = sim.port_state(PortRef(kind, pid))
        if port.occupancy == 0:
            _explain_empty_port(graph, sim, node, kind, pid)
        else:
            _explain_full_port(graph, sim, node, kind, pid)

    # -- CGRA ----------------------------------------------------------------
    if sim.cgra is not None:
        ok, why = sim.cgra.can_fire()
        if not ok:
            graph.add_node("cgra", "cgra",
                           f"cannot fire ({why})")
            if why == "input":
                for name, width, port in sim.cgra.inputs:
                    if port.occupancy < width:
                        kind = _DIR_TO_KIND[port.spec.direction]
                        pid = port.spec.port_id
                        pnode = _port_node(graph, kind, pid)
                        graph.add_edge("cgra", pnode,
                                       f"starved on {_port_name(kind, pid)} "
                                       f"({port.occupancy}/{width} words)")
                        if (kind, pid) not in referenced_ports:
                            _explain_empty_port(graph, sim, pnode, kind, pid)
            else:
                for name, width, port in sim.cgra.outputs:
                    if port.free_words < width:
                        kind = _DIR_TO_KIND[port.spec.direction]
                        pid = port.spec.port_id
                        pnode = _port_node(graph, kind, pid)
                        graph.add_edge("cgra", pnode,
                                       f"no room on {_port_name(kind, pid)}")
                        if (kind, pid) not in referenced_ports:
                            _explain_full_port(graph, sim, pnode, kind, pid)
    return graph


def _explain_barrier(graph: WaitGraph, sim, node: str, command) -> None:
    """Why a barrier at the queue head has not released."""
    if isinstance(command, SDBarrierScratchRd):
        kinds, label = (SDScratchPort,), "outstanding scratch read"
    elif isinstance(command, SDBarrierScratchWr):
        kinds, label = (SDPortScratch, SDMemScratch), "outstanding scratch write"
    else:
        assert isinstance(command, SDBarrierAll)
        _edges_to_active_work(graph, sim, node, "barrier waits for")
        return
    for engine in sim.engines.values():
        for stream in engine.streams:
            if isinstance(stream.command, kinds):
                graph.add_edge(node, _stream_node(graph, stream), label)


def _edges_to_active_work(graph: WaitGraph, sim, node: str,
                          reason: str) -> None:
    for engine in sim.engines.values():
        for stream in engine.streams:
            graph.add_edge(node, _stream_node(graph, stream),
                           f"{reason} {stream.trace.label}")
    if sim.cgra is not None and sim.cgra.in_flight:
        graph.add_node("cgra", "cgra",
                       f"{sim.cgra.in_flight} instance(s) in flight")
        graph.add_edge(node, "cgra", f"{reason} in-flight instances")


def _explain_empty_port(graph: WaitGraph, sim, node: str, kind: str,
                        pid: int) -> None:
    """Who should be producing into an empty port?"""
    if kind == "out":
        # Output ports are written by the CGRA.
        if sim.cgra is not None:
            graph.add_node("cgra", "cgra", "")
            graph.add_edge(node, "cgra", "no output from fabric")
        else:
            graph.nodes[node]["detail"] = "no CGRA configured"
        return
    writers = _stream_holders(sim, kind, pid, role="w")
    for writer in writers:
        graph.add_edge(node, _stream_node(graph, writer),
                       "producer stream has not delivered")
    queued = [
        t for t in sim.dispatcher.queue
        if any((p.kind, p.port_id, r) == (kind, pid, "w")
               for p, r in port_uses(t.command))
    ]
    for trace in queued:
        graph.add_edge(node, _cmd_node(graph, trace),
                       "producer command still queued")
    if not writers and not queued:
        graph.nodes[node]["detail"] = "no stream writes this port"


def _explain_full_port(graph: WaitGraph, sim, node: str, kind: str,
                       pid: int) -> None:
    """Who should be draining a full port?"""
    if kind in ("in", "ind"):
        # Input ports are drained by the CGRA (in) or gather streams (ind).
        if kind == "in" and sim.cgra is not None:
            graph.add_node("cgra", "cgra", "")
            graph.add_edge(node, "cgra", "fabric not consuming")
            return
    readers = _stream_holders(sim, kind, pid, role="r")
    for reader in readers:
        graph.add_edge(node, _stream_node(graph, reader),
                       "consumer stream has not drained")
    queued = [
        t for t in sim.dispatcher.queue
        if any((p.kind, p.port_id, r) == (kind, pid, "r")
               for p, r in port_uses(t.command))
    ]
    for trace in queued:
        graph.add_edge(node, _cmd_node(graph, trace),
                       "consumer command still queued")
    if not readers and not queued and kind != "in":
        graph.nodes[node]["detail"] = "no stream drains this port"
