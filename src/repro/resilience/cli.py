"""The ``python -m repro faults`` entry point.

Modes:

* default — run a fault campaign (:func:`repro.resilience.run_campaign`)
  over ``--classes`` x ``--seeds`` x ``--cases`` and report whether every
  injected fault was detected-and-diagnosed or oracle-verified benign;
* ``--smoke`` — the short CI configuration (3 seeds, 1 case each, with
  the determinism check on);
* ``--show dump.json`` — pretty-print a saved JSON crash dump.

Exit status is non-zero iff any fault produced an unstructured crash, an
undiagnosed SimError, or a non-reproducible outcome.
"""

from __future__ import annotations

import pathlib
import time

from .campaign import DEFAULT_MAX_CYCLES, run_campaign
from .faults import FAULT_KINDS
from .report import FailureReport


def _show(path: str) -> int:
    try:
        report = FailureReport.from_json(pathlib.Path(path).read_text())
    except OSError as exc:
        raise SystemExit(f"error: cannot read dump: {exc}")
    except (KeyError, ValueError) as exc:
        raise SystemExit(f"error: {path} is not a failure report: {exc}")
    print(f"{path}: {report.kind} in {report.program!r} "
          f"at cycle {report.cycle}")
    print(report.render())
    graph = report.wait_graph
    if graph.get("edges"):
        print(f"wait-for graph: {len(graph.get('nodes', {}))} nodes, "
              f"{len(graph['edges'])} edges")
    return 0


def _parse_classes(text: str):
    classes = tuple(c.strip() for c in text.split(",") if c.strip())
    unknown = [c for c in classes if c not in FAULT_KINDS]
    if unknown:
        raise SystemExit(
            f"error: unknown fault class(es) {unknown}; "
            f"choose from {', '.join(FAULT_KINDS)}")
    return classes


def cmd_faults(args) -> int:
    if args.show:
        return _show(args.show)

    classes = _parse_classes(args.classes) if args.classes else FAULT_KINDS
    seeds = tuple(int(s) for s in args.seeds.split(","))
    cases = args.cases
    check_determinism = args.check_determinism
    if args.smoke:
        cases = min(cases, 1)
        check_determinism = True

    started = time.time()
    result = run_campaign(
        classes=classes,
        seeds=seeds,
        cases_per_seed=cases,
        max_cycles=args.max_cycles,
        dump_dir=args.dump_dir,
        check_determinism=check_determinism,
        progress=print,
    )
    wall = time.time() - started
    print(result.summary() + f" in {wall:.1f}s")
    for outcome in result.failures:
        print(f"  FAILURE {outcome.case} {outcome.fault_kind}: "
              f"{outcome.classification} — {outcome.detail}")
    if args.dump_dir:
        dumps = [o.dump for o in result.outcomes if o.dump]
        print(f"{len(dumps)} crash dump(s) under {args.dump_dir}")
    return 0 if result.ok else 1


def add_faults_parser(sub) -> None:
    """Register the ``faults`` subcommand on an argparse subparsers."""
    parser = sub.add_parser(
        "faults",
        help="fault-injection campaign: every fault detected+diagnosed or "
             "oracle-verified benign (see docs/RESILIENCE.md)",
    )
    parser.add_argument("--classes", default=None,
                        help="comma-separated fault classes "
                             f"(default: all of {','.join(FAULT_KINDS)})")
    parser.add_argument("--seeds", default="0,1,2",
                        help="comma-separated campaign seeds")
    parser.add_argument("--cases", type=int, default=2,
                        help="random programs per seed")
    parser.add_argument("--max-cycles", type=int, default=DEFAULT_MAX_CYCLES,
                        help="cycle ceiling for faulted runs")
    parser.add_argument("--dump-dir", default=None, metavar="DIR",
                        help="write JSON crash dumps of detected faults here")
    parser.add_argument("--check-determinism", action="store_true",
                        help="re-run every faulted case and require an "
                             "identical outcome and crash dump")
    parser.add_argument("--smoke", action="store_true",
                        help="short CI configuration (1 case per seed, "
                             "determinism check on)")
    parser.add_argument("--show", metavar="DUMP_JSON",
                        help="pretty-print a saved crash dump and exit")
