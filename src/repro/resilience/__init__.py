"""Fault injection, hang watchdog and structured failure diagnostics.

Three pieces (see ``docs/RESILIENCE.md``):

* :class:`FaultPlan` / :class:`FaultInjector` — deterministic, planned
  fault injection through thin hooks in the simulator (memory delays and
  bit corruption, engine stalls, CGRA bit-flips, port drops, illegal
  command words).  Zero-fault runs pay one ``is None`` test per hook.
* :func:`build_wait_graph` — the hang watchdog: turns a deadlocked or
  limit-tripped simulator into a wait-for graph with root-cause chains.
* :class:`FailureReport` — the JSON crash dump attached to every escaping
  :class:`~repro.sim.errors.SimError`, plus :class:`ResiliencePolicy` /
  :func:`run_resilient` for abort / retry / continue degradation, and
  :func:`run_campaign` — the fault-campaign driver behind
  ``python -m repro faults``.
"""

from .campaign import (
    BAD_CLASSIFICATIONS,
    CampaignResult,
    CaseOutcome,
    run_campaign,
)
from .faults import FAULT_KINDS, FaultInjector, FaultPlan, FaultSpec
from .report import (
    FailureReport,
    ResiliencePolicy,
    ResilientOutcome,
    build_failure_report,
    build_multi_unit_report,
    run_resilient,
    snapshot_components,
)
from .watchdog import WaitGraph, build_wait_graph

__all__ = [
    "BAD_CLASSIFICATIONS",
    "CampaignResult",
    "CaseOutcome",
    "FAULT_KINDS",
    "FailureReport",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "ResiliencePolicy",
    "ResilientOutcome",
    "WaitGraph",
    "build_failure_report",
    "build_multi_unit_report",
    "build_wait_graph",
    "run_campaign",
    "run_resilient",
    "snapshot_components",
]
