"""Circuit-switched mesh network connecting the CGRA's tiles.

Topology: one switch per grid tile, bidirectional links between 4-neighbour
switches, modelled as two directed links each carrying ``channels``
independent 64-bit values per configuration.  Because the network is
circuit-switched, a channel is owned by a single DFG edge for the entire
phase — capacity is a *configuration-time* resource, not a cycle-time one.
Each switch hop costs one cycle of pipeline latency (:data:`HOP_LATENCY`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

Coord = Tuple[int, int]
Link = Tuple[Coord, Coord]

#: pipeline latency of one switch-to-switch hop, cycles
HOP_LATENCY = 1


@dataclass
class MeshNetwork:
    """Directed-link view of a ``cols`` x ``rows`` circuit-switched mesh.

    Attributes:
        cols, rows: grid dimensions (x in [0, cols), y in [0, rows)).
        channels: independent values one directed link can carry per config.
    """

    cols: int
    rows: int
    channels: int = 4

    def __post_init__(self) -> None:
        if self.cols < 1 or self.rows < 1:
            raise ValueError("mesh must be at least 1x1")
        if self.channels < 1:
            raise ValueError("links need at least one channel")

    def in_bounds(self, coord: Coord) -> bool:
        x, y = coord
        return 0 <= x < self.cols and 0 <= y < self.rows

    def coords(self) -> Iterator[Coord]:
        for y in range(self.rows):
            for x in range(self.cols):
                yield (x, y)

    def neighbors(self, coord: Coord) -> List[Coord]:
        x, y = coord
        candidates = [(x + 1, y), (x - 1, y), (x, y + 1), (x, y - 1)]
        return [c for c in candidates if self.in_bounds(c)]

    def links(self) -> Iterator[Link]:
        """Every directed switch-to-switch link."""
        for coord in self.coords():
            for nbr in self.neighbors(coord):
                yield (coord, nbr)

    @property
    def num_links(self) -> int:
        return 2 * (self.rows * (self.cols - 1) + self.cols * (self.rows - 1))

    def manhattan(self, a: Coord, b: Coord) -> int:
        return abs(a[0] - b[0]) + abs(a[1] - b[1])

    def top_edge(self) -> List[Coord]:
        """Switches where input vector ports inject (row 0)."""
        return [(x, 0) for x in range(self.cols)]

    def bottom_edge(self) -> List[Coord]:
        """Switches where output vector ports drain (last row)."""
        return [(x, self.rows - 1) for x in range(self.cols)]
