"""The complete CGRA fabric: PE grid + mesh network + hardware vector ports.

A :class:`Fabric` is the reconfigurable half of a Softbrain unit.  It is
provisioned once per chip family (FU mix, port widths) and then programmed
per-phase by loading a :class:`~repro.core.compiler.config.CgraConfig`
produced by the spatial scheduler.

Two presets mirror the paper's evaluation:

* :func:`dnn_provisioned` — the DianNao-comparison design (Section 7.1):
  4x5 FU grid with 16-bit four-way sub-word multiply/ALU units and a
  sigmoid unit.
* :func:`broadly_provisioned` — the MachSuite design (Section 7.2): FU mix
  set to the maximum needed across the eight implemented workloads (adds
  dividers for md-knn, keeps 64-bit datapaths).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .fu import fu_for_name
from .network import Coord, MeshNetwork
from .pe import PeSpec

#: maximum words a 512-bit vector port moves per cycle
MAX_PORT_WIDTH = 8


@dataclass(frozen=True)
class HwVectorPort:
    """One hardware vector port (a 512-bit FIFO at the CGRA boundary).

    Attributes:
        port_id: hardware port number (namespace is per direction).
        direction: ``"in"`` (stream engines -> CGRA), ``"out"`` (CGRA ->
            stream engines) or ``"indirect"`` (address buffer, not attached
            to the CGRA — Section 4.1).
        width: words transferable per cycle (1..8).
        depth: FIFO capacity in *instances* (entries of ``width`` words).
        attach: switch coordinates each lane connects to (empty for
            indirect ports).
    """

    port_id: int
    direction: str
    width: int
    depth: int
    attach: Tuple[Coord, ...] = ()

    def __post_init__(self) -> None:
        if not 1 <= self.width <= MAX_PORT_WIDTH:
            raise ValueError(f"port width must be 1..{MAX_PORT_WIDTH}")
        if self.direction not in ("in", "out", "indirect"):
            raise ValueError(f"bad direction {self.direction!r}")
        if self.depth < 1:
            raise ValueError("port depth must be positive")

    @property
    def capacity_words(self) -> int:
        return self.width * self.depth


class FabricError(ValueError):
    """Raised for inconsistent fabric descriptions."""


@dataclass
class Fabric:
    """A provisioned CGRA: grid, network and boundary ports."""

    name: str
    mesh: MeshNetwork
    pes: Dict[Coord, PeSpec]
    input_ports: List[HwVectorPort]
    output_ports: List[HwVectorPort]
    indirect_ports: List[HwVectorPort] = field(default_factory=list)

    def __post_init__(self) -> None:
        for coord in self.mesh.coords():
            if coord not in self.pes:
                raise FabricError(f"no PE at {coord}")
        for port in self.input_ports + self.output_ports:
            for coord in port.attach:
                if not self.mesh.in_bounds(coord):
                    raise FabricError(
                        f"port {port.port_id} attaches out of bounds at {coord}"
                    )

    # -- capability queries ---------------------------------------------------

    @property
    def num_fus(self) -> int:
        return len(self.pes)

    def fu_histogram(self) -> Dict[str, int]:
        histogram: Dict[str, int] = {}
        for pe in self.pes.values():
            histogram[pe.fu.name] = histogram.get(pe.fu.name, 0) + 1
        return histogram

    def pes_supporting(self, mnemonic: str) -> List[PeSpec]:
        return [pe for pe in self.pes.values() if pe.supports(mnemonic)]

    def ports_in(self, direction: str) -> List[HwVectorPort]:
        if direction == "in":
            return self.input_ports
        if direction == "out":
            return self.output_ports
        return self.indirect_ports

    def find_port(self, direction: str, port_id: int) -> HwVectorPort:
        for port in self.ports_in(direction):
            if port.port_id == port_id:
                return port
        raise FabricError(f"no {direction} port {port_id} in fabric {self.name!r}")

    @property
    def config_size_bytes(self) -> int:
        """Size of a full configuration image (PEs, switches, ports).

        Each PE needs opcode + operand routing + constants (8 B), each
        switch a channel map (8 B) and each port a lane map (4 B); this
        lands the DNN design near the paper's <10-cycle cached reconfig.
        """
        n_tiles = self.mesh.cols * self.mesh.rows
        n_ports = len(self.input_ports) + len(self.output_ports)
        return 8 * n_tiles + 8 * n_tiles + 4 * n_ports


def _spread_attach(
    columns: int, width: int, row: int, offset: int
) -> Tuple[Coord, ...]:
    """Spread a port's lanes across the grid edge to minimise contention."""
    return tuple(((offset + i) % columns, row) for i in range(width))


def build_fabric(
    name: str,
    cols: int,
    rows: int,
    fu_grid: List[List[str]],
    input_widths: List[int],
    output_widths: List[int],
    num_indirect: int = 2,
    port_depth: int = 16,
    channels: int = 4,
) -> Fabric:
    """Assemble a fabric from an FU-name grid and port width lists.

    ``fu_grid[y][x]`` names the FU flavour at column ``x``, row ``y``.
    Input ports attach along the top edge, output ports along the bottom,
    with lanes spread across columns.
    """
    if len(fu_grid) != rows or any(len(r) != cols for r in fu_grid):
        raise FabricError(f"fu_grid must be {rows} rows x {cols} cols")
    mesh = MeshNetwork(cols, rows, channels=channels)
    pes = {
        (x, y): PeSpec(x, y, fu_for_name(fu_grid[y][x]))
        for y in range(rows)
        for x in range(cols)
    }
    input_ports = [
        HwVectorPort(i, "in", w, port_depth, _spread_attach(cols, w, 0, i))
        for i, w in enumerate(input_widths)
    ]
    output_ports = [
        HwVectorPort(i, "out", w, port_depth, _spread_attach(cols, w, rows - 1, i))
        for i, w in enumerate(output_widths)
    ]
    indirect_ports = [
        HwVectorPort(i, "indirect", MAX_PORT_WIDTH, port_depth)
        for i in range(num_indirect)
    ]
    return Fabric(name, mesh, pes, input_ports, output_ports, indirect_ports)


def dnn_provisioned(port_depth: int = 16) -> Fabric:
    """The DianNao-comparison Softbrain tile: 5x4 grid, mul/alu/sigmoid mix."""
    fu_grid = [
        ["mul", "alu", "mul", "alu", "sigmoid"],
        ["mul", "alu", "mul", "alu", "alu"],
        ["mul", "alu", "mul", "alu", "alu"],
        ["mul", "alu", "mul", "alu", "alu"],
    ]
    return build_fabric(
        "dnn-provisioned",
        cols=5,
        rows=4,
        fu_grid=fu_grid,
        input_widths=[8, 8, 4, 4, 2, 1, 1, 1],
        output_widths=[8, 4, 4, 2, 1, 1],
        port_depth=port_depth,
    )


def broadly_provisioned(port_depth: int = 16) -> Fabric:
    """The MachSuite Softbrain tile: adds dividers, keeps 64-bit lanes."""
    fu_grid = [
        ["mul", "alu", "mul", "div", "sigmoid"],
        ["mul", "alu", "mul", "alu", "alu"],
        ["mul", "alu", "mul", "div", "alu"],
        ["mul", "alu", "mul", "alu", "alu"],
    ]
    return build_fabric(
        "broadly-provisioned",
        cols=5,
        rows=4,
        fu_grid=fu_grid,
        input_widths=[8, 4, 4, 2, 2, 2, 2, 2],
        output_widths=[8, 4, 4, 2, 1, 1],
        num_indirect=4,
        port_depth=port_depth,
    )
