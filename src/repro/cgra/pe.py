"""Processing elements: one grid tile of the CGRA.

Each PE couples a circuit-switched switch with one functional unit, a small
constant/accumulator register, and a configurable *delay FIFO* on each
operand input.  The mesh has no flow control (the paper removed it and
halved network area), so the compiler must delay-match all operand paths;
the per-input delay FIFOs are the mechanism that makes matching always
possible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from .fu import FuType, fu_for_name

#: deepest configurable operand-delay FIFO, in cycles.  Must cover the
#: worst operand skew of any supported DFG; long-latency units (divide)
#: on one path with a direct operand on the other need deep matching
#: (md-knn's Lennard-Jones datapath needs ~40 cycles).
MAX_INPUT_DELAY = 64


@dataclass(frozen=True)
class PeSpec:
    """Static description of one processing element.

    Attributes:
        x, y: grid coordinates (column, row).
        fu: the functional-unit flavour placed at this tile.
        max_input_delay: depth of the operand delay FIFOs.
    """

    x: int
    y: int
    fu: FuType
    max_input_delay: int = MAX_INPUT_DELAY

    @property
    def coord(self) -> Tuple[int, int]:
        return (self.x, self.y)

    def supports(self, mnemonic: str) -> bool:
        return self.fu.supports(mnemonic)

    def __str__(self) -> str:
        return f"PE({self.x},{self.y}:{self.fu.name})"


def make_pe(x: int, y: int, fu_name: str) -> PeSpec:
    """Convenience constructor from an FU-type name."""
    return PeSpec(x, y, fu_for_name(fu_name))
