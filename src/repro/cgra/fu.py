"""Functional-unit types composing the CGRA's processing elements.

A hardware instance is provisioned once per chip family by choosing the FU
mix (Section 5, "Hardware/Software Workflow"): e.g. the DNN-provisioned
Softbrain uses 4-way 16-bit sub-word multipliers and ALUs plus a 16-bit
sigmoid unit, while the broadly-provisioned design uses the maximum FU mix
needed across the MachSuite workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable

from ..core.dfg.instructions import get_operation

#: op classes used to define FU capabilities
ALU_OPS = frozenset(
    {
        "add", "sub", "min", "max", "abs", "neg",
        "and", "or", "xor", "shl", "shr",
        "eq", "ne", "lt", "le", "gt", "ge",
        "select", "pass", "acc", "accmin", "accmax",
        "hadd", "hmin", "hmax",
    }
)
MUL_OPS = frozenset({"mul", "madd"})
DIV_OPS = frozenset({"div", "mod"})
SIGMOID_OPS = frozenset({"sigmoid"})


@dataclass(frozen=True)
class FuType:
    """A functional-unit flavour: which ops it executes, area and power.

    Area/power figures are 55 nm-class estimates consistent with the paper's
    Table 3 totals (20 FUs ≈ 0.04 mm² and ≈24.4 mW at full DNN activity).
    """

    name: str
    ops: FrozenSet[str]
    area_mm2: float
    static_power_mw: float

    def supports(self, mnemonic: str) -> bool:
        return mnemonic in self.ops

    def __post_init__(self) -> None:
        for mnemonic in self.ops:
            get_operation(mnemonic)  # fail fast on typos


ALU = FuType("alu", ALU_OPS, area_mm2=0.0008, static_power_mw=0.25)
MULTIPLIER = FuType("mul", MUL_OPS | ALU_OPS, area_mm2=0.0030, static_power_mw=0.70)
DIVIDER = FuType(
    "div", DIV_OPS | MUL_OPS | ALU_OPS, area_mm2=0.0060, static_power_mw=1.20
)
SIGMOID_UNIT = FuType(
    "sigmoid", SIGMOID_OPS | ALU_OPS, area_mm2=0.0020, static_power_mw=0.45
)

FU_TYPES: Dict[str, FuType] = {
    fu.name: fu for fu in (ALU, MULTIPLIER, DIVIDER, SIGMOID_UNIT)
}


def fu_for_name(name: str) -> FuType:
    try:
        return FU_TYPES[name]
    except KeyError:
        raise KeyError(
            f"unknown FU type {name!r}; known: {sorted(FU_TYPES)}"
        ) from None


def capability_histogram(fu_names: Iterable[str]) -> Dict[str, int]:
    """How many FUs of a mix can run each op mnemonic."""
    histogram: Dict[str, int] = {}
    for name in fu_names:
        for op in fu_for_name(name).ops:
            histogram[op] = histogram.get(op, 0) + 1
    return histogram
