"""Coarse-grained reconfigurable architecture (CGRA) hardware model."""

from .fabric import (
    Fabric,
    FabricError,
    HwVectorPort,
    MAX_PORT_WIDTH,
    broadly_provisioned,
    build_fabric,
    dnn_provisioned,
)
from .fu import ALU, DIVIDER, FU_TYPES, FuType, MULTIPLIER, SIGMOID_UNIT, fu_for_name
from .network import HOP_LATENCY, Coord, MeshNetwork
from .pe import MAX_INPUT_DELAY, PeSpec, make_pe

__all__ = [
    "ALU",
    "Coord",
    "DIVIDER",
    "FU_TYPES",
    "Fabric",
    "FabricError",
    "FuType",
    "HOP_LATENCY",
    "HwVectorPort",
    "MAX_INPUT_DELAY",
    "MAX_PORT_WIDTH",
    "MULTIPLIER",
    "MeshNetwork",
    "PeSpec",
    "SIGMOID_UNIT",
    "broadly_provisioned",
    "build_fabric",
    "dnn_provisioned",
    "fu_for_name",
    "make_pe",
]
