"""Command-line interface: run workloads and regenerate evaluation artefacts.

Usage::

    python -m repro list                      # available workloads/experiments
    python -m repro run gemm                  # simulate + verify one workload
    python -m repro run class1p --units 8     # a DNN layer, 8-unit partition
    python -m repro table1|table3|table4      # render a table
    python -m repro fig11|fig12|fig13|fig14|fig15
    python -m repro timeline dotprod          # Figure 4(b)-style timeline
    python -m repro trace gemm --trace-out t.json   # structured trace + metrics
    python -m repro trace --schema            # the trace event vocabulary
    python -m repro fuzz --count 200 --seed 0 # differential fuzzing
    python -m repro fuzz --replay case.json   # replay a saved fuzz case
    python -m repro fuzz --smoke              # corpus replay + quick batch
    python -m repro fuzz --faults             # fuzz under injected faults
    python -m repro faults                    # fault-injection campaign
    python -m repro faults --show dump.json   # pretty-print a crash dump

``run`` and ``timeline`` also accept ``--trace-out PATH`` to record a
trace alongside their normal output (``.jsonl`` = JSON Lines, anything
else = Chrome/Perfetto JSON; see docs/TRACING.md).
"""

from __future__ import annotations

import argparse
import sys
import time


def _cmd_list(_args) -> int:
    from .workloads.dnn.layers import DNN_LAYERS
    from .workloads.machsuite import MACHSUITE

    print("DNN layers (Figure 11):")
    for layer in DNN_LAYERS:
        print(f"  {layer.name:<14} {layer.kind}")
    print("\nMachSuite kernels (Figures 12-15, Table 4):")
    for name in MACHSUITE:
        print(f"  {name}")
    print("\nexperiments: table1 table3 table4 fig11 fig12 fig13 fig14 fig15")
    return 0


def _build_workload(name: str, units: int):
    from .workloads.dnn.layers import DNN_LAYERS_BY_NAME
    from .workloads.machsuite import MACHSUITE

    if name in DNN_LAYERS_BY_NAME:
        from .workloads.dnn import build_dnn_layer

        return build_dnn_layer(name, unit_id=0, num_units=units)
    if name in MACHSUITE:
        return MACHSUITE[name][0]()
    raise SystemExit(f"unknown workload {name!r}; try 'python -m repro list'")


def _file_sink(path):
    from .trace import sink_for_path

    return sink_for_path(path)


def _cmd_run(args) -> int:
    from .power import estimate_power
    from .workloads.common import run_and_verify

    built = _build_workload(args.workload, args.units)
    sink = _file_sink(args.trace_out) if args.trace_out else None
    started = time.time()
    try:
        result = run_and_verify(built, trace=sink)
    finally:
        if sink is not None:
            sink.close()
    wall = time.time() - started
    power = estimate_power(result, built.fabric)
    print(f"{built.name}: verified OK")
    print(f"  cycles:            {result.cycles}")
    print(f"  instances fired:   {result.stats.instances_fired}")
    print(f"  CGRA ops:          {result.stats.ops_executed} "
          f"({result.stats.ops_per_cycle:.2f}/cycle)")
    print(f"  commands issued:   {result.stats.commands_issued}")
    print(f"  memory traffic:    {result.memory.stats.bytes_read} B read / "
          f"{result.memory.stats.bytes_written} B written")
    print(f"  estimated power:   {power.total_mw:.1f} mW (one unit)")
    print(f"  simulated in {wall:.2f}s wall clock")
    if args.trace_out:
        print(f"  trace written to {args.trace_out}")
    if args.power:
        print()
        print(power.table())
    return 0


def _cmd_timeline(args) -> int:
    from .sim import render_timeline
    from .workloads.common import run_and_verify

    built = _build_workload(args.workload, 1)
    sink = _file_sink(args.trace_out) if args.trace_out else None
    try:
        result = run_and_verify(built, trace=sink)
    finally:
        if sink is not None:
            sink.close()
    print(render_timeline(result.timeline, width=args.width))
    if args.trace_out:
        print(f"trace written to {args.trace_out}")
    return 0


def _cmd_trace(args) -> int:
    """Trace a workload: write a trace file, print derived metrics, and
    cross-check the event-derived totals against SimStats."""
    from .trace import MetricsRegistry, TeeSink, format_schema_table
    from .workloads.common import run_and_verify

    if args.schema:
        print(format_schema_table())
        return 0
    if not args.workload:
        raise SystemExit("workload required (or use --schema)")

    built = _build_workload(args.workload, args.units)
    metrics = MetricsRegistry(window=args.window)
    sinks = [metrics]
    if args.trace_out:
        sinks.append(_file_sink(args.trace_out))
    sink = TeeSink(*sinks)
    started = time.time()
    try:
        result = run_and_verify(built, trace=sink)
    finally:
        sink.close()
    wall = time.time() - started

    print(f"{built.name}: verified OK in {result.cycles} cycles "
          f"({wall:.2f}s wall clock)")
    print(metrics.summary())
    mismatches = metrics.reconcile(result.stats)
    if mismatches:
        print("RECONCILIATION FAILED (event totals vs SimStats):")
        for name, (from_events, from_stats) in sorted(mismatches.items()):
            print(f"  {name}: events={from_events} stats={from_stats}")
        return 1
    print("event-derived totals reconcile exactly with SimStats")
    if args.trace_out:
        kind = "JSONL" if args.trace_out.endswith(".jsonl") else "Chrome/Perfetto"
        print(f"{kind} trace written to {args.trace_out}")
    return 0


def _cmd_fuzz(args) -> int:
    from .fuzz.cli import cmd_fuzz

    return cmd_fuzz(args)


def _cmd_faults(args) -> int:
    from .resilience.cli import cmd_faults

    return cmd_faults(args)


def _cmd_table(name: str) -> int:
    from . import experiments as exp

    if name == "table1":
        print(exp.format_table1())
    elif name == "table3":
        print(exp.format_table3(exp.table3()))
    elif name == "table4":
        print(exp.format_table4(exp.table4_rows(include_extensions=True)))
    elif name == "fig11":
        print(exp.format_figure11(exp.dnn_comparison()))
    else:
        rows = exp.machsuite_comparison()
        formatter = {
            "fig12": exp.format_figure12,
            "fig13": exp.format_figure13,
            "fig14": exp.format_figure14,
            "fig15": exp.format_figure15,
        }[name]
        print(formatter(rows))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Stream-dataflow (Softbrain) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads and experiments")

    run_parser = sub.add_parser("run", help="simulate and verify a workload")
    run_parser.add_argument("workload")
    run_parser.add_argument("--units", type=int, default=1,
                            help="partition DNN layers across N units")
    run_parser.add_argument("--power", action="store_true",
                            help="print the per-component power breakdown")
    run_parser.add_argument("--trace-out", metavar="PATH",
                            help="record a structured trace "
                                 "(.jsonl = JSON Lines, else Chrome JSON)")

    timeline_parser = sub.add_parser(
        "timeline", help="render a command-lifetime timeline"
    )
    timeline_parser.add_argument("workload")
    timeline_parser.add_argument("--width", type=int, default=72)
    timeline_parser.add_argument("--trace-out", metavar="PATH",
                                 help="also record a structured trace")

    trace_parser = sub.add_parser(
        "trace",
        help="trace a workload: per-component metrics + optional trace file",
    )
    trace_parser.add_argument("workload", nargs="?")
    trace_parser.add_argument("--trace-out", metavar="PATH",
                              help="write the event stream "
                                   "(.jsonl = JSON Lines, else Chrome JSON "
                                   "loadable in Perfetto)")
    trace_parser.add_argument("--units", type=int, default=1,
                              help="partition DNN layers across N units")
    trace_parser.add_argument("--window", type=int, default=64,
                              help="utilization-series window, cycles")
    trace_parser.add_argument("--schema", action="store_true",
                              help="print the trace event vocabulary and exit")

    fuzz_parser = sub.add_parser(
        "fuzz",
        help="differential fuzzing: cycle sim vs functional interpreter "
             "vs pure DFG evaluation (see docs/FUZZING.md)",
    )
    fuzz_parser.add_argument("--count", type=int, default=None,
                             help="random cases to generate (default 100; "
                                  "12 with --smoke)")
    fuzz_parser.add_argument("--seed", type=int, default=0,
                             help="fuzz seed; same seed => same cases")
    fuzz_parser.add_argument("--time-budget", type=float, default=None,
                             metavar="SECONDS",
                             help="stop generating once elapsed")
    fuzz_parser.add_argument("--replay", metavar="CASE_JSON",
                             help="replay one saved case and exit")
    fuzz_parser.add_argument("--smoke", action="store_true",
                             help="replay the checked-in corpus plus a "
                                  "small random batch (CI job)")
    fuzz_parser.add_argument("--save-dir", default="fuzz-failures",
                             help="where shrunk repro cases are written")
    fuzz_parser.add_argument("--no-shrink", action="store_true",
                             help="save diverging cases without minimising")
    fuzz_parser.add_argument("--faults", action="store_true",
                             help="run each case under a random fault plan; "
                                  "divergence = fault escaped undiagnosed "
                                  "(see docs/RESILIENCE.md)")

    from .resilience.cli import add_faults_parser
    add_faults_parser(sub)

    for table in ("table1", "table3", "table4",
                  "fig11", "fig12", "fig13", "fig14", "fig15"):
        sub.add_parser(table, help=f"render {table}")

    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "timeline":
        return _cmd_timeline(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "fuzz":
        return _cmd_fuzz(args)
    if args.command == "faults":
        return _cmd_faults(args)
    return _cmd_table(args.command)


if __name__ == "__main__":
    sys.exit(main())
