"""DNN layer workloads (the DianNao comparison set, Section 7.1)."""


from .classifier import build_classifier, classifier_dfg, reference_classifier
from .conv import build_conv, conv_dfg, reference_conv
from .layers import (
    ClassifierLayer,
    ConvLayer,
    DNN_LAYERS,
    DNN_LAYERS_BY_NAME,
    DnnLayer,
    PoolLayer,
    gpu_workload,
    layer_cost,
)
from .pooling import build_pool, pool_dfg, reference_pool2


def build_dnn_layer(layer, unit_id: int = 0, num_units: int = 1, **kw):
    """Build a DNN layer (by Figure 11 name or layer object) for one unit."""
    if isinstance(layer, str):
        layer = DNN_LAYERS_BY_NAME[layer]
    if isinstance(layer, ClassifierLayer):
        return build_classifier(layer, unit_id, num_units, **kw)
    if isinstance(layer, ConvLayer):
        return build_conv(layer, unit_id, num_units, **kw)
    return build_pool(layer, unit_id, num_units, **kw)


__all__ = [
    "ClassifierLayer",
    "ConvLayer",
    "DNN_LAYERS",
    "DNN_LAYERS_BY_NAME",
    "DnnLayer",
    "PoolLayer",
    "build_classifier",
    "build_conv",
    "build_dnn_layer",
    "build_pool",
    "classifier_dfg",
    "conv_dfg",
    "gpu_workload",
    "layer_cost",
    "pool_dfg",
    "reference_classifier",
    "reference_conv",
    "reference_pool2",
]
