"""DNN layer configurations and their analytical cost models.

The ten layers mirror the paper's Figure 11 benchmark set (classifier,
pooling and convolutional layers from the DianNao suite), with problem
sizes scaled down so the cycle-level Python simulator runs in seconds.
Shapes (aspect ratios, reuse behaviour, arithmetic-intensity class) are
preserved; every reported result is a ratio against baselines evaluated at
the *same* scaled sizes, which a scaling test shows is size-stable.

All data is 16-bit fixed point, as in DianNao and the paper's DNN
provisioning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Union

from ...baselines.cpu import ScalarWorkload
from ...baselines.diannao import DnnLayerCost
from ...baselines.gpu import GpuWorkload

ELEM = 2  # bytes per 16-bit value


@dataclass(frozen=True)
class ClassifierLayer:
    """Fully-connected layer: Nn output neurons over Ni inputs."""

    name: str
    ni: int
    nn: int

    kind = "classifier"

    @property
    def mac_ops(self) -> int:
        return self.ni * self.nn

    @property
    def simple_ops(self) -> int:
        return self.nn  # sigmoid per output neuron

    @property
    def unique_bytes(self) -> int:
        return ELEM * (self.ni * self.nn + self.ni + self.nn)

    def cpu_census(self) -> ScalarWorkload:
        macs = self.mac_ops
        return ScalarWorkload(
            name=self.name,
            int_ops=macs + self.nn,  # adds + sigmoid address math
            mul_ops=macs,
            loads=2 * macs,
            stores=self.nn,
            branches=macs // 4,  # unrolled-by-4 inner loop
            critical_path=0,
            memory_bytes=self.unique_bytes,
        )


@dataclass(frozen=True)
class ConvLayer:
    """Convolutional layer, stride 1, 'valid' padding.

    ``out_w`` is the output row width (input rows are ``out_w + k - 1``).
    """

    name: str
    out_w: int
    out_h: int
    n_in: int
    k: int
    n_out: int

    kind = "conv"

    @property
    def in_w(self) -> int:
        return self.out_w + self.k - 1

    @property
    def in_h(self) -> int:
        return self.out_h + self.k - 1

    @property
    def mac_ops(self) -> int:
        return self.out_w * self.out_h * self.n_out * self.k * self.k * self.n_in

    @property
    def simple_ops(self) -> int:
        return self.out_w * self.out_h * self.n_out  # activation

    @property
    def unique_bytes(self) -> int:
        weights = self.n_out * self.n_in * self.k * self.k
        inputs = self.n_in * self.in_w * self.in_h
        outputs = self.n_out * self.out_w * self.out_h
        return ELEM * (weights + inputs + outputs)

    def cpu_census(self) -> ScalarWorkload:
        macs = self.mac_ops
        return ScalarWorkload(
            name=self.name,
            int_ops=macs + 2 * self.simple_ops,
            mul_ops=macs,
            loads=2 * macs,
            stores=self.simple_ops,
            branches=macs // 4,
            critical_path=0,
            memory_bytes=self.unique_bytes,
        )


@dataclass(frozen=True)
class PoolLayer:
    """Pooling layer: ``window`` x ``window`` avg or max, stride = window."""

    name: str
    in_w: int
    in_h: int
    maps: int
    window: int  # 2 or 4 (4 runs as two 2x2 passes)
    mode: str = "avg"  # "avg" | "max"

    kind = "pool"

    def __post_init__(self) -> None:
        if self.window not in (2, 4):
            raise ValueError("pool window must be 2 or 4")
        if self.mode not in ("avg", "max"):
            raise ValueError("pool mode must be avg or max")

    @property
    def out_w(self) -> int:
        return self.in_w // self.window

    @property
    def out_h(self) -> int:
        return self.in_h // self.window

    @property
    def mac_ops(self) -> int:
        return 0

    @property
    def simple_ops(self) -> int:
        # window^2 - 1 combines + 1 scale per output, per map
        per_out = self.window * self.window
        return self.maps * self.out_w * self.out_h * per_out

    @property
    def unique_bytes(self) -> int:
        return ELEM * self.maps * (
            self.in_w * self.in_h + self.out_w * self.out_h
        )

    def cpu_census(self) -> ScalarWorkload:
        ops = self.simple_ops
        return ScalarWorkload(
            name=self.name,
            int_ops=ops,
            loads=self.maps * self.in_w * self.in_h,
            stores=self.maps * self.out_w * self.out_h,
            branches=ops // 4,
            critical_path=0,
            memory_bytes=self.unique_bytes,
        )


DnnLayer = Union[ClassifierLayer, ConvLayer, PoolLayer]


#: the Figure 11 benchmark set (scaled sizes, shapes preserved)
DNN_LAYERS: List[DnnLayer] = [
    ClassifierLayer("class1p", ni=784, nn=64),
    ClassifierLayer("class3p", ni=512, nn=128),
    PoolLayer("pool1p", in_w=32, in_h=32, maps=16, window=2, mode="avg"),
    PoolLayer("pool3p", in_w=32, in_h=32, maps=32, window=2, mode="max"),
    PoolLayer("pool5p", in_w=16, in_h=16, maps=64, window=4, mode="avg"),
    ConvLayer("conv1p", out_w=16, out_h=16, n_in=4, k=3, n_out=8),
    ConvLayer("conv2p", out_w=16, out_h=16, n_in=4, k=5, n_out=4),
    ConvLayer("conv3p", out_w=8, out_h=8, n_in=8, k=5, n_out=8),
    ConvLayer("conv4p", out_w=8, out_h=8, n_in=8, k=3, n_out=16),
    ConvLayer("conv5p", out_w=4, out_h=4, n_in=16, k=3, n_out=16),
]

DNN_LAYERS_BY_NAME: Dict[str, DnnLayer] = {l.name: l for l in DNN_LAYERS}


def layer_cost(layer: DnnLayer) -> DnnLayerCost:
    """Cost inputs for the DianNao analytical model."""
    return DnnLayerCost(
        name=layer.name,
        mac_ops=layer.mac_ops,
        simple_ops=layer.simple_ops,
        unique_bytes=layer.unique_bytes,
        refetch_factor=1.5 if layer.kind == "pool" else 1.0,
    )


def gpu_workload(layer: DnnLayer) -> GpuWorkload:
    """Cost inputs for the GPU roofline model."""
    return GpuWorkload(
        name=layer.name,
        kind=layer.kind,
        mac_ops=layer.mac_ops,
        simple_ops=layer.simple_ops,
        memory_bytes=layer.unique_bytes,
        kernels=2 if layer.kind == "pool" and layer.window == 4 else 1,
    )
