"""Classifier (fully-connected) layer as a stream-dataflow program.

This is the paper's running example (Figure 6): synapses stream from
memory, input neurons are staged in the scratchpad and re-read per output
neuron with a repeating pattern, a packed 16-bit multiply/adder-tree/
accumulator datapath reduces them, and a sigmoid finishes each neuron.
The ``Port_R`` constant stream drives accumulator reset exactly as in the
paper's listing; ``SD_Clean`` discards the non-final accumulator outputs.

Data is 16-bit fixed point packed four-per-word, so each computation
instance retires 16 multiply-accumulates on the 4x16-bit sub-word datapath.
"""

from __future__ import annotations

from typing import List

from ...cgra.fabric import Fabric, dnn_provisioned
from ...core.compiler.scheduler import schedule
from ...core.dfg.builder import DfgBuilder
from ...core.dfg.graph import Dfg
from ...core.dfg.instructions import fixed_point_sigmoid
from ...core.isa.program import StreamProgram
from ...sim.memory import MemorySystem
from ..common import Allocator, BuiltWorkload, check_equal, make_rng, read_words, write_words
from .layers import ClassifierLayer

#: values per packed 64-bit word
PACK = 4
#: 16-bit MACs per computation instance (4 words x 4 lanes)
MACS_PER_INSTANCE = 16


def classifier_dfg() -> Dfg:
    """S(4) x N(4) -> 16-MAC tree -> accumulate -> sigmoid -> C(1)."""
    b = DfgBuilder("classifier")
    s = b.input("S", 4)
    n = b.input("N", 4)
    r = b.input("R", 1)
    products = [b.mul(s[j], n[j], lane_bits=16) for j in range(4)]
    partial = [b.op("hadd", p, lane_bits=16) for p in products]
    total = b.reduce_tree("add", partial)
    accum = b.accumulate(total, r[0])
    b.output("C", b.sigmoid(accum))
    return b.build()


def reference_classifier(synapse: List[List[int]], neuron_i: List[int]) -> List[int]:
    """Reference semantics (matches the 16-bit fixed-point datapath)."""
    out = []
    for row in synapse:
        total = sum(w * x for w, x in zip(row, neuron_i))
        out.append(fixed_point_sigmoid(total))
    return out


def build_classifier(
    layer: ClassifierLayer,
    unit_id: int = 0,
    num_units: int = 1,
    fabric: Fabric = None,
    seed: int = 1,
) -> BuiltWorkload:
    """Build the stream program for one Softbrain unit's share of the layer.

    Output neurons are block-partitioned across ``num_units`` units; each
    unit runs the Figure 6 program over its contiguous block of synapse
    rows.
    """
    if layer.ni % MACS_PER_INSTANCE:
        raise ValueError(f"ni must be a multiple of {MACS_PER_INSTANCE}")
    if layer.nn % num_units:
        raise ValueError("nn must divide evenly across units")
    fabric = fabric or dnn_provisioned()
    rng = make_rng(seed)

    ni, nn = layer.ni, layer.nn
    nn_unit = nn // num_units
    first = unit_id * nn_unit

    synapse = [[rng.randint(-8, 7) for _ in range(ni)] for _ in range(nn)]
    neuron_i = [rng.randint(-8, 7) for _ in range(ni)]
    expected = reference_classifier(synapse[first : first + nn_unit], neuron_i)

    memory = MemorySystem()
    alloc = Allocator()
    syn_addr = alloc.alloc(nn * ni * 2)
    neu_addr = alloc.alloc(ni * 2)
    out_addr = alloc.alloc(nn * 2)
    for n_idx, row in enumerate(synapse):
        write_words(memory, syn_addr + n_idx * ni * 2, row, elem_bytes=2)
    write_words(memory, neu_addr, neuron_i, elem_bytes=2)

    dfg = classifier_dfg()
    config = schedule(dfg, fabric)
    program = StreamProgram(f"{layer.name}-u{unit_id}", config)

    row_bytes = ni * 2
    # Stage input neurons in the scratchpad (packed words), then stream the
    # unit's synapse rows while re-reading neurons with a repeating pattern.
    program.mem_scratch(neu_addr, row_bytes, row_bytes, 1, 0)
    program.barrier_scratch_wr()
    unit_syn = syn_addr + first * row_bytes
    program.mem_port(unit_syn, row_bytes, row_bytes, nn_unit, "S")
    program.scratch_port(0, 0, row_bytes, nn_unit, "N")

    instances_per_neuron = ni // MACS_PER_INSTANCE
    for n_idx in range(nn_unit):
        program.const_port(0, instances_per_neuron - 1, "R")
        program.const_port(1, 1, "R")
        program.clean_port(instances_per_neuron - 1, "C")
        program.port_mem("C", 2, 2, 1, out_addr + 2 * (first + n_idx), elem_bytes=2)
        program.host(2)  # n loop increment + address update
    program.barrier_all()

    def verify(mem: MemorySystem) -> None:
        got = read_words(mem, out_addr + 2 * first, nn_unit, elem_bytes=2)
        check_equal(layer.name, got, expected)

    return BuiltWorkload(
        name=layer.name,
        program=program,
        fabric=fabric,
        memory=memory,
        verify=verify,
        meta={
            "layer": layer,
            "unit_id": unit_id,
            "num_units": num_units,
            "instances": nn_unit * instances_per_neuron,
            "macs": nn_unit * ni,
        },
    )
