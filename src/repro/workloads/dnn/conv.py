"""Convolutional layer as a stream-dataflow program.

Strategy (all 16-bit fixed point, packed four values per word):

* Weights for one output map are *broadcast-expanded* (each 16-bit weight
  replicated into all four lanes of a word) and staged in the scratchpad;
  a zero-stride **repeating** pattern re-streams them once per output row —
  the scratchpad-reuse idiom the architecture exists for.
* Input windows stream from memory with **overlapped** affine patterns:
  for a kernel row, the K shifted views of a packed output-row block are
  K accesses at a 2-byte stride (Figure 5's overlapped class).
* Sub-word lane accumulators (``acc @16``) run the reduction over all
  (input map, ky, kx) instances of an output row block; ``Port_R`` resets
  them, ``SD_Clean`` discards intermediate outputs, exactly as in the
  classifier example.
* Two output rows are processed per instance (two parallel row datapaths
  sharing the broadcast weight), so one instance retires
  ``4 * port_words * 2`` MACs — enough to occupy all eight multipliers.
"""

from __future__ import annotations

from typing import List

from ...cgra.fabric import Fabric, dnn_provisioned
from ...core.compiler.scheduler import schedule
from ...core.dfg.builder import DfgBuilder
from ...core.dfg.graph import Dfg
from ...core.isa.program import StreamProgram
from ...sim.memory import MemorySystem
from ..common import Allocator, BuiltWorkload, check_equal, make_rng, read_words, write_words
from .layers import ConvLayer

PACK = 4  # 16-bit values per word


def conv_dfg(port_words: int, rows: int = 2) -> Dfg:
    """``rows`` parallel row datapaths sharing one broadcast weight.

    Each row r contributes ``port_words`` packed multiply + lane-accumulate
    pairs (A<r> x B -> C<r>), so one instance retires
    ``4 * port_words * rows`` MACs — enough to keep all eight multipliers
    of the DNN-provisioned fabric busy.
    """
    b = DfgBuilder(f"conv{port_words}x{rows}")
    w = b.input("B", 1)
    r = b.input("R", 1)
    for row in range(rows):
        a = b.input(f"A{row}", port_words)
        outs = []
        for j in range(port_words):
            product = b.mul(a[j], w[0], lane_bits=16)
            outs.append(b.op("acc", product, r[0], lane_bits=16))
        b.output(f"C{row}", outs)
    return b.build()


def reference_conv(
    layer: ConvLayer, inputs: List[List[List[int]]], weights: List[List[List[List[int]]]]
) -> List[List[List[int]]]:
    """Plain convolution (valid padding, stride 1), 16-bit wrap-free data."""
    out = [
        [[0] * layer.out_w for _ in range(layer.out_h)] for _ in range(layer.n_out)
    ]
    for o in range(layer.n_out):
        for y in range(layer.out_h):
            for x in range(layer.out_w):
                total = 0
                for i in range(layer.n_in):
                    for ky in range(layer.k):
                        for kx in range(layer.k):
                            total += (
                                weights[o][i][ky][kx] * inputs[i][y + ky][x + kx]
                            )
                out[o][y][x] = total & 0xFFFF
                if out[o][y][x] >= 0x8000:
                    out[o][y][x] -= 0x10000
    return out


def broadcast_word(weight: int) -> int:
    """Replicate a 16-bit value into all four lanes of a word."""
    w = weight & 0xFFFF
    return w | (w << 16) | (w << 32) | (w << 48)


def build_conv(
    layer: ConvLayer,
    unit_id: int = 0,
    num_units: int = 1,
    fabric: Fabric = None,
    seed: int = 2,
) -> BuiltWorkload:
    """Build one unit's share of the layer ((map, row) pairs partitioned)."""
    if layer.out_w % PACK:
        raise ValueError("out_w must be a multiple of 4 (packed words)")
    fabric = fabric or dnn_provisioned()
    rng = make_rng(seed)

    port_words = min(4, layer.out_w // PACK)
    block_w = port_words * PACK  # output columns per instance (per row)
    if layer.out_w % block_w:
        raise ValueError("out_w must divide into packed blocks")
    blocks = layer.out_w // block_w
    rows_per_group = 2 if layer.out_h % 2 == 0 else 1

    inputs = [
        [
            [rng.randint(-4, 3) for _ in range(layer.in_w)]
            for _ in range(layer.in_h)
        ]
        for _ in range(layer.n_in)
    ]
    weights = [
        [
            [[rng.randint(-4, 3) for _ in range(layer.k)] for _ in range(layer.k)]
            for _ in range(layer.n_in)
        ]
        for _ in range(layer.n_out)
    ]
    expected = reference_conv(layer, inputs, weights)

    memory = MemorySystem()
    alloc = Allocator()
    row_bytes = layer.in_w * 2
    in_addr = alloc.alloc(layer.n_in * layer.in_h * row_bytes)
    out_row_bytes = layer.out_w * 2
    out_addr = alloc.alloc(layer.n_out * layer.out_h * out_row_bytes)
    kkn = layer.k * layer.k * layer.n_in  # instances per output block
    wb_addr = alloc.alloc(layer.n_out * kkn * 8)

    def input_row_addr(i: int, row: int) -> int:
        return in_addr + (i * layer.in_h + row) * row_bytes

    for i, plane in enumerate(inputs):
        for y, row in enumerate(plane):
            write_words(memory, input_row_addr(i, y), row, elem_bytes=2)
    # Host-prepared broadcast weight image: per output map, the kkn weights
    # in (i, ky, kx) stream order, one word each with the weight in all lanes.
    for o in range(layer.n_out):
        words = [
            broadcast_word(weights[o][i][ky][kx])
            for i in range(layer.n_in)
            for ky in range(layer.k)
            for kx in range(layer.k)
        ]
        write_words(memory, wb_addr + o * kkn * 8, words, elem_bytes=8)

    dfg = conv_dfg(port_words, rows_per_group)
    config = schedule(dfg, fabric)
    program = StreamProgram(f"{layer.name}-u{unit_id}", config)

    # Partition (output map, row-group) pairs in contiguous chunks.
    flat = [
        (o, y)
        for o in range(layer.n_out)
        for y in range(0, layer.out_h, rows_per_group)
    ]
    chunk = len(flat) // num_units
    lo = unit_id * chunk
    hi = len(flat) if unit_id == num_units - 1 else lo + chunk
    work = flat[lo:hi]

    # Stage ALL input planes in the scratchpad once: the overlapped window
    # views re-read every input element ~K times per output map, and the
    # scratchpad is the architecture's mechanism for exactly this reuse.
    in_bytes = layer.n_in * layer.in_h * row_bytes
    if in_bytes > 4096:
        raise ValueError("input planes exceed the 4 KB scratchpad")
    program.mem_scratch(in_addr, in_bytes, in_bytes, 1, 0)
    program.barrier_scratch_wr()

    def scratch_row_addr(i: int, row: int) -> int:
        return (i * layer.in_h + row) * row_bytes

    for o, y in work:
        for block in range(blocks):
            x0 = block * block_w
            # Short coordination streams first so the deep A-stream command
            # sequence can never starve them in the finite command queue.
            program.const_port(0, kkn - 1, "R")
            program.const_port(1, 1, "R")
            for row in range(rows_per_group):
                program.clean_port((kkn - 1) * port_words, f"C{row}")
                program.port_mem(
                    f"C{row}",
                    8,
                    block_w * 2,
                    1,
                    out_addr
                    + (o * layer.out_h + y + row) * out_row_bytes
                    + 2 * x0,
                )
            # Broadcast weights stream linearly from memory (cached in L2).
            program.mem_port(wb_addr + o * kkn * 8, kkn * 8, kkn * 8, 1, "B")
            # Input windows stream from the scratchpad: per (i, ky) an
            # overlapped pattern delivering the K shifted views (kx 0..K-1).
            for i in range(layer.n_in):
                for ky in range(layer.k):
                    for row in range(rows_per_group):
                        start = scratch_row_addr(i, y + row + ky) + 2 * x0
                        program.scratch_port(
                            start, 2, block_w * 2, layer.k, f"A{row}",
                            signed=True,
                        )
            program.host(3)  # block loop: address updates
        program.host(2)  # row-group loop
    program.barrier_all()

    def verify(mem: MemorySystem) -> None:
        for o, y in work:
            for row in range(rows_per_group):
                got = read_words(
                    mem,
                    out_addr + (o * layer.out_h + y + row) * out_row_bytes,
                    layer.out_w,
                    elem_bytes=2,
                )
                check_equal(
                    f"{layer.name}[map {o} row {y + row}]",
                    got,
                    expected[o][y + row],
                )

    return BuiltWorkload(
        name=layer.name,
        program=program,
        fabric=fabric,
        memory=memory,
        verify=verify,
        meta={
            "layer": layer,
            "unit_id": unit_id,
            "num_units": num_units,
            "instances": len(work) * blocks * kkn,
            "macs": len(work) * rows_per_group * layer.out_w * kkn,
            # Input planes are read by every unit: chip-wide they are
            # fetched from DRAM once and shared through the cache, so the
            # multi-unit harness treats them as warm for unit 0.
            "shared_regions": [(in_addr, in_bytes)],
        },
    )
