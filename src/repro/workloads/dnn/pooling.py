"""Pooling layers as stream-dataflow programs.

A 2x2 window (stride 2) pools with four strided streams — the four corner
views of each output row — and a pure combine datapath (adds + shift for
average, a max tree for max pooling).  There are no synapses, so pooling is
the bandwidth-bound, low-arithmetic-intensity class of Figure 11; Softbrain
does comparatively well here because neighbouring partial results are
reused in the fabric instead of re-fetched (the paper's pooling note).

4x4 windows run as two chained 2x2 passes through a scratch buffer in
memory, with a full barrier between the passes (the architecture's idiom
for long dependence chains).
"""

from __future__ import annotations

from typing import Callable, List

from ...cgra.fabric import Fabric, dnn_provisioned
from ...core.compiler.scheduler import schedule
from ...core.dfg.builder import DfgBuilder
from ...core.dfg.graph import Dfg
from ...core.isa.program import StreamProgram
from ...sim.memory import MemorySystem
from ..common import Allocator, BuiltWorkload, check_equal, make_rng, read_words, write_words
from .layers import PoolLayer

#: output elements computed per instance
LANES = 4


def pool_dfg(mode: str) -> Dfg:
    """A/B/C/D corner streams -> combine -> O (4 outputs per instance)."""
    b = DfgBuilder(f"pool-{mode}")
    a = b.input("A", LANES)
    bb = b.input("B", LANES)
    c = b.input("C", LANES)
    d = b.input("D", LANES)
    outs = []
    for j in range(LANES):
        if mode == "avg":
            total = b.add(b.add(a[j], bb[j]), b.add(c[j], d[j]))
            outs.append(b.op("shr", total, 2))
        else:
            outs.append(b.max(b.max(a[j], bb[j]), b.max(c[j], d[j])))
    b.output("O", outs)
    return b.build()


def reference_pool2(rows: List[List[int]], mode: str) -> List[List[int]]:
    """One 2x2 stride-2 pooling pass over a single map."""
    out_h, out_w = len(rows) // 2, len(rows[0]) // 2
    out = [[0] * out_w for _ in range(out_h)]
    for r in range(out_h):
        for col in range(out_w):
            window = (
                rows[2 * r][2 * col],
                rows[2 * r][2 * col + 1],
                rows[2 * r + 1][2 * col],
                rows[2 * r + 1][2 * col + 1],
            )
            out[r][col] = (sum(window) >> 2) if mode == "avg" else max(window)
    return out


def _emit_pool2_pass(
    program: StreamProgram,
    in_addr: Callable[[int], int],
    out_addr: Callable[[int], int],
    in_w: int,
    out_h: int,
) -> None:
    """Emit the 2x2 pooling commands for one map (per output row)."""
    out_w = in_w // 2
    for r in range(out_h):
        top = in_addr(2 * r)
        bottom = in_addr(2 * r + 1)
        program.mem_port(top, 4, 2, out_w, "A", elem_bytes=2, signed=True)
        program.mem_port(top + 2, 4, 2, out_w, "B", elem_bytes=2, signed=True)
        program.mem_port(bottom, 4, 2, out_w, "C", elem_bytes=2, signed=True)
        program.mem_port(bottom + 2, 4, 2, out_w, "D", elem_bytes=2, signed=True)
        program.port_mem("O", 2, 2, out_w, out_addr(r), elem_bytes=2)
        program.host(2)  # row loop and address updates


def build_pool(
    layer: PoolLayer,
    unit_id: int = 0,
    num_units: int = 1,
    fabric: Fabric = None,
    seed: int = 3,
) -> BuiltWorkload:
    """Build one unit's share of the layer (maps partitioned across units)."""
    if layer.maps % num_units:
        raise ValueError("maps must divide evenly across units")
    if (layer.in_w // 2) % LANES:
        raise ValueError("intermediate row width must be a multiple of 4")
    fabric = fabric or dnn_provisioned()
    rng = make_rng(seed)

    maps = [
        [
            [rng.randint(-128, 127) for _ in range(layer.in_w)]
            for _ in range(layer.in_h)
        ]
        for _ in range(layer.maps)
    ]
    expected = []
    for plane in maps:
        first = reference_pool2(plane, layer.mode)
        expected.append(
            reference_pool2(first, layer.mode) if layer.window == 4 else first
        )

    memory = MemorySystem()
    alloc = Allocator()
    row_bytes = layer.in_w * 2
    in_base = alloc.alloc(layer.maps * layer.in_h * row_bytes)
    mid_w, mid_h = layer.in_w // 2, layer.in_h // 2
    mid_base = alloc.alloc(layer.maps * mid_h * mid_w * 2)
    out_base = alloc.alloc(layer.maps * layer.out_h * layer.out_w * 2)

    for m, plane in enumerate(maps):
        for y, row in enumerate(plane):
            write_words(
                memory, in_base + (m * layer.in_h + y) * row_bytes, row, elem_bytes=2
            )

    dfg = pool_dfg(layer.mode)
    config = schedule(dfg, fabric)
    program = StreamProgram(f"{layer.name}-u{unit_id}", config)

    my_maps = list(range(layer.maps))[unit_id::num_units]
    final_base = mid_base if layer.window == 4 else out_base
    final_w, final_h = (mid_w, mid_h) if layer.window == 4 else (
        layer.out_w, layer.out_h
    )
    for m in my_maps:
        _emit_pool2_pass(
            program,
            lambda y, m=m: in_base + (m * layer.in_h + y) * row_bytes,
            lambda r, m=m: final_base + (m * final_h + r) * final_w * 2,
            layer.in_w,
            final_h,
        )
    if layer.window == 4:
        program.barrier_all()  # pass 2 reads pass 1's results from memory
        for m in my_maps:
            _emit_pool2_pass(
                program,
                lambda y, m=m: mid_base + (m * mid_h + y) * mid_w * 2,
                lambda r, m=m: out_base
                + (m * layer.out_h + r) * layer.out_w * 2,
                mid_w,
                layer.out_h,
            )
    program.barrier_all()

    def verify(mem: MemorySystem) -> None:
        for m in my_maps:
            for r in range(layer.out_h):
                got = read_words(
                    mem,
                    out_base + (m * layer.out_h + r) * layer.out_w * 2,
                    layer.out_w,
                    elem_bytes=2,
                )
                check_equal(f"{layer.name}[map {m} row {r}]", got, expected[m][r])

    passes = 2 if layer.window == 4 else 1
    return BuiltWorkload(
        name=layer.name,
        program=program,
        fabric=fabric,
        memory=memory,
        verify=verify,
        meta={
            "layer": layer,
            "unit_id": unit_id,
            "num_units": num_units,
            "passes": passes,
            "instances": sum(
                len(my_maps) * (layer.in_w >> (s + 1)) * (layer.in_h >> (s + 1)) // LANES
                for s in range(passes)
            ),
        },
    )
