"""Shared workload infrastructure: built programs, memory layout, checking.

Every workload — DNN layer or MachSuite kernel — reduces to a
:class:`BuiltWorkload`: a stream program bound to a fabric, a preloaded
memory image, and a verifier that checks the simulated results against the
reference implementation.  :func:`run_and_verify` is the one-stop entry the
tests, examples and benchmarks all use.
"""

from __future__ import annotations

import inspect
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..cgra.fabric import Fabric
from ..core.isa.patterns import LINE_BYTES
from ..core.isa.program import StreamProgram
from ..sim.memory import MemorySystem
from ..sim.softbrain import RunResult, SoftbrainParams, run_program
from ..trace import TraceSink


class Allocator:
    """Line-aligned bump allocator for laying out workload arrays."""

    def __init__(self, base: int = 0x1_0000) -> None:
        self._next = base

    def alloc(self, nbytes: int) -> int:
        addr = self._next
        self._next += (nbytes + LINE_BYTES - 1) // LINE_BYTES * LINE_BYTES
        return addr


def write_words(memory: MemorySystem, addr: int, values: Sequence[int],
                elem_bytes: int = 8) -> None:
    """Preload an array of integers (two's complement, little endian)."""
    mask = (1 << (8 * elem_bytes)) - 1
    data = b"".join((v & mask).to_bytes(elem_bytes, "little") for v in values)
    memory.preload(addr, data)


def read_words(memory: MemorySystem, addr: int, count: int,
               elem_bytes: int = 8, signed: bool = True) -> List[int]:
    """Read back an array of integers after simulation."""
    return [
        memory.store.read_word(addr + i * elem_bytes, elem_bytes, signed=signed)
        for i in range(count)
    ]


class VerificationError(AssertionError):
    """Simulated output differs from the reference implementation."""


def check_equal(name: str, got: Sequence[int], expected: Sequence[int]) -> None:
    if list(got) != list(expected):
        bad = [
            (i, g, e)
            for i, (g, e) in enumerate(zip(got, expected))
            if g != e
        ][:8]
        raise VerificationError(
            f"{name}: {len(bad)}+ mismatches, first: {bad} "
            f"(lengths {len(got)} vs {len(expected)})"
        )


@dataclass
class BuiltWorkload:
    """A ready-to-simulate workload instance."""

    name: str
    program: StreamProgram
    fabric: Fabric
    memory: MemorySystem
    verify: Callable[[MemorySystem], None]
    #: free-form workload facts (sizes, op counts) used by reports
    meta: Dict[str, object] = field(default_factory=dict)


RngLike = Union[int, random.Random, None]


def coerce_rng(rng: RngLike) -> Optional[random.Random]:
    """Normalise an injectable RNG argument: an ``int`` seeds a fresh
    :class:`random.Random`, an instance passes through, ``None`` stays
    ``None``.  Never returns the module-level generator — randomised
    verification (fuzz oracle sampling) must not perturb, or be perturbed
    by, anyone else's ``random`` state."""
    if rng is None or isinstance(rng, random.Random):
        return rng
    return make_rng(rng)


def run_and_verify(
    built: BuiltWorkload,
    params: Optional[SoftbrainParams] = None,
    trace: Optional[TraceSink] = None,
    rng: RngLike = None,
    faults=None,
) -> RunResult:
    """Simulate a built workload and check its outputs; returns the result.

    ``trace`` forwards a :class:`repro.trace.TraceSink` to the simulator
    (the caller closes it), so every experiment harness built on this
    entry point can record structured traces.

    ``rng`` (a seed or a :class:`random.Random`) is forwarded to verifiers
    that declare an ``rng`` parameter — randomised checking stays
    deterministic under an injected generator instead of mutating the
    module-level ``random`` state.

    ``faults`` forwards a :class:`repro.resilience.FaultInjector` — the
    fault campaign and ``fuzz --faults`` run workloads under injected
    faults through this same entry point.
    """
    result = run_program(
        built.program, fabric=built.fabric, memory=built.memory, params=params,
        trace=trace, faults=faults,
    )
    if _accepts_rng(built.verify):
        built.verify(built.memory, rng=coerce_rng(rng))
    else:
        built.verify(built.memory)
    return result


def _accepts_rng(verify: Callable) -> bool:
    try:
        parameters = inspect.signature(verify).parameters
    except (TypeError, ValueError):  # builtins / C callables
        return False
    return "rng" in parameters


def make_rng(seed: int) -> random.Random:
    """Deterministic per-workload RNG."""
    return random.Random(0x5D5D ^ seed)
