"""Workloads: DNN layers (DianNao set) and MachSuite kernels."""

from .characterization import (
    CharacterizationRow,
    DATAPATH,
    UNSUITABLE,
    characterize,
    stream_patterns,
)
from .common import (
    Allocator,
    BuiltWorkload,
    VerificationError,
    check_equal,
    make_rng,
    read_words,
    run_and_verify,
    write_words,
)

__all__ = [
    "Allocator",
    "BuiltWorkload",
    "CharacterizationRow",
    "DATAPATH",
    "UNSUITABLE",
    "VerificationError",
    "characterize",
    "check_equal",
    "make_rng",
    "read_words",
    "run_and_verify",
    "stream_patterns",
    "write_words",
]
