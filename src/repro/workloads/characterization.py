"""Workload characterisation — the data behind the paper's Table 4.

The stream-pattern column is *derived* from the actual stream programs (by
classifying every command's access pattern), not hand-written, so it stays
truthful as implementations evolve.  Datapath descriptions and the
unsuitable-workloads list mirror Table 4's text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from ..core.isa.commands import (
    SDConstPort,
    SDIndPortMem,
    SDIndPortPort,
    SDMemPort,
    SDMemScratch,
    SDPortMem,
    SDPortPort,
    SDScratchPort,
)
from .common import BuiltWorkload


def stream_patterns(built: BuiltWorkload) -> Set[str]:
    """Classify every stream command in a built workload's program."""
    patterns: Set[str] = set()
    for command in built.program.commands:
        if isinstance(command, (SDMemPort, SDMemScratch, SDScratchPort, SDPortMem)):
            kind = command.pattern.classify()
            if kind in ("linear",):
                patterns.add("Linear")
            elif kind == "strided":
                patterns.add("Strided")
            elif kind == "overlapped":
                patterns.add("Overlapped")
            elif kind == "repeating":
                patterns.add("Repeating")
            if isinstance(command, SDMemPort) and command.dest.kind == "ind":
                patterns.add("Indirect Loads")
        if isinstance(command, SDIndPortPort):
            patterns.add("Indirect Loads")
        if isinstance(command, SDIndPortMem):
            patterns.add("Indirect Stores")
        if isinstance(command, SDPortPort):
            patterns.add("Recurrence")
        if isinstance(command, SDConstPort):
            # Reset-constant streams drive in-fabric accumulators, the
            # architecture's recurrence mechanism for reductions.
            if any(
                inst.is_accumulator
                for inst in _bound_dfg_instructions(built)
            ):
                patterns.add("Recurrence")
    # Multi-access (non-linear) affine patterns count as "Affine".
    if patterns & {"Strided", "Overlapped", "Repeating"}:
        patterns.add("Affine")
    return patterns


def _bound_dfg_instructions(built: BuiltWorkload):
    for config in built.program.config_images.values():
        yield from config.dfg.instructions.values()


#: datapath description per MachSuite workload (Table 4's right column)
DATAPATH: Dict[str, str] = {
    "bfs": "Compare/Increment",
    "gemm": "8-Way Multiply-Accumulate",
    "md": "Large Irregular Datapath",
    "spmv-crs": "Single Multiply-Accumulate",
    "spmv-ellpack": "4-Way Multiply-Accumulate",
    "stencil": "8-Way Multiply-Accumulate",
    "stencil3d": "6-1 Reduce and Multiplier Tree",
    "viterbi": "4-Way Add-Minimize Tree",
    "fft": "Complex Butterfly (4-Mul)",  # extension workload (footnote 3)
    "nw": "Compare/Select/Max Cell",  # extension workload (footnote 3)
    "backprop": "4-Way Update + MAC Tree",  # extension workload (footnote 3)
}

#: workloads the paper found unsuitable for stream-dataflow, with reasons
UNSUITABLE: List[Tuple[str, str]] = [
    ("aes", "Byte-level data manipulation"),
    ("kmp", "Multi-level indirect pointer access"),
    ("merge-sort", "Fine-grain data-dependent loads/control"),
    ("radix-sort", "Concurrent reads/writes to same address"),
]


@dataclass
class CharacterizationRow:
    """One Table 4 row for an implemented workload."""

    name: str
    patterns: List[str]
    datapath: str


def characterize(built: BuiltWorkload) -> CharacterizationRow:
    order = [
        "Indirect Loads",
        "Indirect Stores",
        "Affine",
        "Linear",
        "Strided",
        "Overlapped",
        "Repeating",
        "Recurrence",
    ]
    found = stream_patterns(built)
    return CharacterizationRow(
        name=built.name,
        patterns=[p for p in order if p in found],
        datapath=DATAPATH.get(built.name, "Custom"),
    )
