"""MachSuite ``stencil3d``: 7-point 3D stencil (Table 4: affine patterns,
6-1 reduce and multiplier tree).

out[z][y][x] = C0*in[z][y][x] + C1*(6-neighbour sum).  Seven linear streams
feed the fabric — the centre view plus the six axis-shifted views of each
output row — and a pure feed-forward reduce/multiply tree (no accumulator)
produces two outputs per instance.
"""

from __future__ import annotations

from typing import List

from ...baselines.asic.ddg import Ddg, TraceBuilder
from ...baselines.asic.schedule import AsicDesign
from ...baselines.cpu import ScalarWorkload
from ...cgra.fabric import Fabric, broadly_provisioned
from ...core.compiler.scheduler import schedule
from ...core.dfg.builder import DfgBuilder
from ...core.dfg.graph import Dfg
from ...core.isa.program import StreamProgram
from ...sim.memory import MemorySystem
from ..common import Allocator, BuiltWorkload, check_equal, make_rng, read_words, write_words

#: grid side (cubic); interior shrinks by 2 per axis
SIDE = 12
C0 = 5
C1 = 3
LANES = 2  # outputs per instance

PORTS = ("CT", "XP", "XM", "YP", "YM", "ZP", "ZM")


def stencil3d_dfg() -> Dfg:
    """Seven width-2 views -> 6-1 reduce + multiplier tree -> O(2)."""
    b = DfgBuilder("stencil3d")
    handles = {name: b.input(name, LANES) for name in PORTS}
    outs = []
    for j in range(LANES):
        n_x = b.add(handles["XP"][j], handles["XM"][j])
        n_y = b.add(handles["YP"][j], handles["YM"][j])
        n_z = b.add(handles["ZP"][j], handles["ZM"][j])
        neighbours = b.add(b.add(n_x, n_y), n_z)
        centre = b.op("mul", handles["CT"][j], C0)
        outs.append(b.add(centre, b.op("mul", neighbours, C1)))
    b.output("O", outs)
    return b.build()


def reference_stencil3d(grid: List[int], side: int) -> List[int]:
    def at(z: int, y: int, x: int) -> int:
        return grid[(z * side + y) * side + x]

    inner = side - 2
    out = [0] * inner * inner * inner
    for z in range(1, side - 1):
        for y in range(1, side - 1):
            for x in range(1, side - 1):
                total = C1 * (
                    at(z, y, x + 1)
                    + at(z, y, x - 1)
                    + at(z, y + 1, x)
                    + at(z, y - 1, x)
                    + at(z + 1, y, x)
                    + at(z - 1, y, x)
                )
                out[((z - 1) * inner + (y - 1)) * inner + (x - 1)] = (
                    C0 * at(z, y, x) + total
                )
    return out


def build_stencil3d(
    fabric: Fabric = None, seed: int = 12, side: int = SIDE
) -> BuiltWorkload:
    inner = side - 2
    if inner % LANES:
        raise ValueError("interior width must be a multiple of 2")
    fabric = fabric or broadly_provisioned()
    rng = make_rng(seed)
    grid = [rng.randint(-100, 100) for _ in range(side**3)]
    expected = reference_stencil3d(grid, side)

    memory = MemorySystem()
    alloc = Allocator()
    grid_addr = alloc.alloc(side**3 * 8)
    out_addr = alloc.alloc(inner**3 * 8)
    write_words(memory, grid_addr, grid)

    def addr(z: int, y: int, x: int) -> int:
        return grid_addr + ((z * side + y) * side + x) * 8

    dfg = stencil3d_dfg()
    config = schedule(dfg, fabric)
    program = StreamProgram("stencil3d", config)

    row = inner * 8  # bytes streamed per interior row
    for z in range(1, side - 1):
        for y in range(1, side - 1):
            views = {
                "CT": addr(z, y, 1),
                "XP": addr(z, y, 2),
                "XM": addr(z, y, 0),
                "YP": addr(z, y + 1, 1),
                "YM": addr(z, y - 1, 1),
                "ZP": addr(z + 1, y, 1),
                "ZM": addr(z - 1, y, 1),
            }
            for name, start in views.items():
                program.mem_port(start, row, row, 1, name)
            out_row = out_addr + ((z - 1) * inner + (y - 1)) * inner * 8
            program.port_mem("O", row, row, 1, out_row)
            program.host(3)
    program.barrier_all()

    def verify(mem: MemorySystem) -> None:
        got = read_words(mem, out_addr, inner**3)
        check_equal("stencil3d", got, expected)

    return BuiltWorkload(
        name="stencil3d",
        program=program,
        fabric=fabric,
        memory=memory,
        verify=verify,
        meta={
            "side": side,
            "ops": inner**3 * 8,
            "instances": inner * inner * inner // LANES,
        },
    )


def stencil3d_ddg(side: int = SIDE, seed: int = 12) -> Ddg:
    rng = make_rng(seed)
    grid = [rng.randint(-100, 100) for _ in range(side**3)]
    inner = side - 2
    t = TraceBuilder("stencil3d")
    t.array("grid", grid)
    t.array("out", [0] * inner**3)
    c0, c1 = t.const(C0), t.const(C1)

    def idx(z: int, y: int, x: int) -> int:
        return (z * side + y) * side + x

    for z in range(1, side - 1):
        for y in range(1, side - 1):
            for x in range(1, side - 1):
                total = t.add(
                    t.add(
                        t.add(t.load("grid", idx(z, y, x + 1)),
                              t.load("grid", idx(z, y, x - 1))),
                        t.add(t.load("grid", idx(z, y + 1, x)),
                              t.load("grid", idx(z, y - 1, x))),
                    ),
                    t.add(t.load("grid", idx(z + 1, y, x)),
                          t.load("grid", idx(z - 1, y, x))),
                )
                value = t.add(
                    t.mul(c0, t.load("grid", idx(z, y, x))), t.mul(c1, total)
                )
                t.store("out", ((z - 1) * inner + (y - 1)) * inner + (x - 1), value)
    return t.ddg


def stencil3d_asic_base() -> AsicDesign:
    return AsicDesign(base_alu=4, base_mul=2)


def stencil3d_census(side: int = SIDE) -> ScalarWorkload:
    inner = side - 2
    points = inner**3
    return ScalarWorkload(
        name="stencil3d",
        int_ops=points * 6,
        mul_ops=points * 2,
        loads=points * 7,
        stores=points,
        branches=points // 2,
        memory_bytes=8 * (side**3 + points),
    )
