"""MachSuite ``spmv-crs`` and ``spmv-ellpack``: sparse matrix-vector multiply.

Table 4 characterisation:

* **spmv-crs** — indirect + linear patterns, *single* multiply-accumulate:
  each row's values stream linearly, its column indices fill an indirect
  port, and a gather stream fetches the matching vector elements.
* **spmv-ellpack** — indirect + linear + recurrence, *4-way*
  multiply-accumulate: the fixed row length lets values/columns/gathers
  run as single whole-matrix streams, with the per-row reset constants the
  only per-row commands.
"""

from __future__ import annotations

from typing import List, Tuple

from ...baselines.asic.ddg import Ddg, TraceBuilder
from ...baselines.asic.schedule import AsicDesign
from ...baselines.cpu import ScalarWorkload
from ...cgra.fabric import Fabric, broadly_provisioned
from ...core.compiler.scheduler import schedule
from ...core.dfg.builder import DfgBuilder
from ...core.dfg.graph import Dfg
from ...core.isa.program import StreamProgram
from ...sim.memory import MemorySystem
from ..common import Allocator, BuiltWorkload, check_equal, make_rng, read_words, write_words

#: matrix rows (and vector length)
N_ROWS = 96
#: ellpack fixed row length
ELL_L = 8


def crs_dfg() -> Dfg:
    """A x gathered V -> single multiply-accumulate -> C."""
    b = DfgBuilder("spmv-crs")
    a = b.input("A", 1)
    v = b.input("V", 1)
    r = b.input("R", 1)
    b.output("C", b.accumulate(b.mul(a[0], v[0]), r[0]))
    return b.build()


def ellpack_dfg() -> Dfg:
    """A(4) x gathered V(4) -> tree -> accumulate -> C."""
    b = DfgBuilder("spmv-ellpack")
    a = b.input("A", 4)
    v = b.input("V", 4)
    r = b.input("R", 1)
    products = [b.mul(a[j], v[j]) for j in range(4)]
    b.output("C", b.accumulate(b.reduce_tree("add", products), r[0]))
    return b.build()


def make_sparse(
    rng, n: int, min_nnz: int, max_nnz: int
) -> Tuple[List[List[int]], List[List[int]], List[int]]:
    """Random CRS-style matrix: per-row (values, column indices) + vector."""
    values, columns = [], []
    for _ in range(n):
        nnz = rng.randint(min_nnz, max_nnz)
        cols = sorted(rng.sample(range(n), nnz))
        values.append([rng.randint(-30, 30) for _ in range(nnz)])
        columns.append(cols)
    vector = [rng.randint(-30, 30) for _ in range(n)]
    return values, columns, vector


def reference_spmv(
    values: List[List[int]], columns: List[List[int]], vector: List[int]
) -> List[int]:
    return [
        sum(v * vector[c] for v, c in zip(row_vals, row_cols))
        for row_vals, row_cols in zip(values, columns)
    ]


def build_spmv_crs(
    fabric: Fabric = None, seed: int = 13, n: int = N_ROWS
) -> BuiltWorkload:
    fabric = fabric or broadly_provisioned()
    rng = make_rng(seed)
    values, columns, vector = make_sparse(rng, n, 2, 12)
    expected = reference_spmv(values, columns, vector)

    memory = MemorySystem()
    alloc = Allocator()
    flat_vals = [v for row in values for v in row]
    flat_cols = [c for row in columns for c in row]
    vals_addr = alloc.alloc(len(flat_vals) * 8)
    cols_addr = alloc.alloc(len(flat_cols) * 8)
    vec_addr = alloc.alloc(n * 8)
    out_addr = alloc.alloc(n * 8)
    write_words(memory, vals_addr, flat_vals)
    write_words(memory, cols_addr, flat_cols)
    write_words(memory, vec_addr, vector)

    dfg = crs_dfg()
    config = schedule(dfg, fabric)
    program = StreamProgram("spmv-crs", config)

    # Long streams ("streams should be as long as possible", Section 3.2):
    # values, column indices and the gather each run once over the whole
    # matrix; only the per-row accumulator coordination is short.
    total = len(flat_vals)
    program.mem_port(vals_addr, total * 8, total * 8, 1, "A")
    program.mem_to_indirect(cols_addr, total, 0)
    program.ind_port_port(0, vec_addr, "V", total)
    for i in range(n):
        nnz = len(values[i])
        if nnz > 1:
            program.const_port(0, nnz - 1, "R")
            program.clean_port(nnz - 1, "C")
        program.const_port(1, 1, "R")
        program.port_mem("C", 8, 8, 1, out_addr + i * 8)
        program.host(4)  # row loop: rowptr loads + address updates
    program.barrier_all()

    def verify(mem: MemorySystem) -> None:
        got = read_words(mem, out_addr, n)
        check_equal("spmv-crs", got, expected)

    return BuiltWorkload(
        name="spmv-crs",
        program=program,
        fabric=fabric,
        memory=memory,
        verify=verify,
        meta={"n": n, "nnz": len(flat_vals), "instances": len(flat_vals)},
    )


def build_spmv_ellpack(
    fabric: Fabric = None, seed: int = 14, n: int = N_ROWS, ell: int = ELL_L
) -> BuiltWorkload:
    fabric = fabric or broadly_provisioned()
    rng = make_rng(seed)
    values, columns, vector = make_sparse(rng, n, ell, ell)
    expected = reference_spmv(values, columns, vector)

    memory = MemorySystem()
    alloc = Allocator()
    flat_vals = [v for row in values for v in row]
    flat_cols = [c for row in columns for c in row]
    vals_addr = alloc.alloc(len(flat_vals) * 8)
    cols_addr = alloc.alloc(len(flat_cols) * 8)
    vec_addr = alloc.alloc(n * 8)
    out_addr = alloc.alloc(n * 8)
    write_words(memory, vals_addr, flat_vals)
    write_words(memory, cols_addr, flat_cols)
    write_words(memory, vec_addr, vector)

    dfg = ellpack_dfg()
    config = schedule(dfg, fabric)
    program = StreamProgram("spmv-ellpack", config)

    total = n * ell
    # Whole-matrix streams: values, column indices and the gather.
    program.mem_port(vals_addr, total * 8, total * 8, 1, "A")
    program.mem_to_indirect(cols_addr, total, 0)
    program.ind_port_port(0, vec_addr, "V", total)
    instances = ell // 4
    for i in range(n):
        if instances > 1:
            program.const_port(0, instances - 1, "R")
            program.clean_port(instances - 1, "C")
        program.const_port(1, 1, "R")
        program.port_mem("C", 8, 8, 1, out_addr + i * 8)
        program.host(2)
    program.barrier_all()

    def verify(mem: MemorySystem) -> None:
        got = read_words(mem, out_addr, n)
        check_equal("spmv-ellpack", got, expected)

    return BuiltWorkload(
        name="spmv-ellpack",
        program=program,
        fabric=fabric,
        memory=memory,
        verify=verify,
        meta={"n": n, "nnz": total, "instances": n * instances},
    )


def spmv_ddg(kind: str = "crs", n: int = N_ROWS, seed: int = 13) -> Ddg:
    rng = make_rng(seed)
    if kind == "crs":
        values, columns, vector = make_sparse(rng, n, 2, 12)
    else:
        rng = make_rng(14)
        values, columns, vector = make_sparse(rng, n, ELL_L, ELL_L)
    flat_vals = [v for row in values for v in row]
    flat_cols = [c for row in columns for c in row]
    t = TraceBuilder(f"spmv-{kind}")
    t.array("vals", flat_vals)
    t.array("cols", flat_cols)
    t.array("vec", vector)
    t.array("out", [0] * n)
    offset = 0
    for i in range(n):
        acc = t.const(0)
        for j in range(len(values[i])):
            col = t.load("cols", offset + j)
            acc = t.add(
                acc, t.mul(t.load("vals", offset + j), t.load("vec", col.value))
            )
        t.store("out", i, acc)
        offset += len(values[i])
    return t.ddg


def spmv_asic_base() -> AsicDesign:
    return AsicDesign(base_alu=2, base_mul=1)


def spmv_census(kind: str = "crs", n: int = N_ROWS) -> ScalarWorkload:
    nnz = n * 7 if kind == "crs" else n * ELL_L  # mean density
    return ScalarWorkload(
        name=f"spmv-{kind}",
        int_ops=nnz + n,
        mul_ops=nnz,
        loads=3 * nnz,  # value, column, gathered vector element
        stores=n,
        branches=nnz,
        memory_bytes=8 * (2 * nnz + 2 * n),
        critical_path=0,
        mispredict_rate=0.15 if kind == "crs" else 0.06,
    )
