"""MachSuite ``stencil`` (2D): 3x3 weighted stencil (Table 4: affine +
recurrence, 8-way multiply-accumulate).

Single-plane convolution structure at 64-bit: input windows stream with
overlapped affine patterns, the 3x3 filter broadcasts one weight per
instance, and eight in-fabric accumulators reduce the 9 (ky, kx) instances
per 8-wide output block.
"""

from __future__ import annotations

from typing import List

from ...baselines.asic.ddg import Ddg, TraceBuilder
from ...baselines.asic.schedule import AsicDesign
from ...baselines.cpu import ScalarWorkload
from ...cgra.fabric import Fabric, broadly_provisioned
from ...core.compiler.scheduler import schedule
from ...core.dfg.builder import DfgBuilder
from ...core.dfg.graph import Dfg
from ...core.isa.program import StreamProgram
from ...sim.memory import MemorySystem
from ..common import Allocator, BuiltWorkload, check_equal, make_rng, read_words, write_words

#: grid dimensions (input HEIGHT x WIDTH; output shrinks by 2)
WIDTH = 34
HEIGHT = 18
K = 3
WAY = 8  # outputs per instance


def stencil2d_dfg() -> Dfg:
    """A(8) x broadcast W(1) -> 8 accumulators -> C(8)."""
    b = DfgBuilder("stencil2d")
    a = b.input("A", WAY)
    w = b.input("B", 1)
    r = b.input("R", 1)
    outs = [b.accumulate(b.mul(a[j], w[0]), r[0]) for j in range(WAY)]
    b.output("C", outs)
    return b.build()


def reference_stencil2d(
    grid: List[List[int]], filt: List[List[int]]
) -> List[List[int]]:
    out_h, out_w = len(grid) - 2, len(grid[0]) - 2
    out = [[0] * out_w for _ in range(out_h)]
    for y in range(out_h):
        for x in range(out_w):
            out[y][x] = sum(
                filt[ky][kx] * grid[y + ky][x + kx]
                for ky in range(K)
                for kx in range(K)
            )
    return out


def build_stencil2d(
    fabric: Fabric = None, seed: int = 11, width: int = WIDTH, height: int = HEIGHT
) -> BuiltWorkload:
    out_w, out_h = width - 2, height - 2
    if out_w % WAY:
        raise ValueError(f"output width must be a multiple of {WAY}")
    fabric = fabric or broadly_provisioned()
    rng = make_rng(seed)
    grid = [[rng.randint(-100, 100) for _ in range(width)] for _ in range(height)]
    filt = [[rng.randint(-8, 8) for _ in range(K)] for _ in range(K)]
    expected = reference_stencil2d(grid, filt)

    memory = MemorySystem()
    alloc = Allocator()
    row_bytes = width * 8
    grid_addr = alloc.alloc(height * row_bytes)
    filt_addr = alloc.alloc(K * K * 8)
    out_addr = alloc.alloc(out_h * out_w * 8)
    for y, row in enumerate(grid):
        write_words(memory, grid_addr + y * row_bytes, row)
    write_words(
        memory, filt_addr, [filt[ky][kx] for ky in range(K) for kx in range(K)]
    )

    dfg = stencil2d_dfg()
    config = schedule(dfg, fabric)
    program = StreamProgram("stencil2d", config)

    kk = K * K
    blocks = out_w // WAY
    for y in range(out_h):
        for block in range(blocks):
            x0 = block * WAY
            program.const_port(0, kk - 1, "R")
            program.const_port(1, 1, "R")
            program.clean_port((kk - 1) * WAY, "C")
            program.port_mem("C", 64, WAY * 8, 1, out_addr + (y * out_w + x0) * 8)
            # The 9 filter weights, one word per (ky, kx) instance.
            program.mem_port(filt_addr, kk * 8, kk * 8, 1, "B")
            # Per kernel row, the K shifted window views (overlapped).
            for ky in range(K):
                start = grid_addr + (y + ky) * row_bytes + x0 * 8
                program.mem_port(start, 8, WAY * 8, K, "A")
            program.host(3)
        program.host(2)
    program.barrier_all()

    def verify(mem: MemorySystem) -> None:
        for y in range(out_h):
            got = read_words(mem, out_addr + y * out_w * 8, out_w)
            check_equal(f"stencil2d[row {y}]", got, expected[y])

    return BuiltWorkload(
        name="stencil",
        program=program,
        fabric=fabric,
        memory=memory,
        verify=verify,
        meta={
            "width": width,
            "height": height,
            "macs": out_w * out_h * kk,
            "instances": out_h * blocks * kk,
        },
    )


def stencil2d_ddg(width: int = WIDTH, height: int = HEIGHT, seed: int = 11) -> Ddg:
    rng = make_rng(seed)
    grid = [rng.randint(-100, 100) for _ in range(width * height)]
    filt = [rng.randint(-8, 8) for _ in range(K * K)]
    t = TraceBuilder("stencil")
    t.array("grid", grid)
    t.array("filt", filt)
    t.array("out", [0] * (width - 2) * (height - 2))
    out_w = width - 2
    for y in range(height - 2):
        for x in range(out_w):
            acc = t.const(0)
            for ky in range(K):
                for kx in range(K):
                    acc = t.add(
                        acc,
                        t.mul(
                            t.load("filt", ky * K + kx),
                            t.load("grid", (y + ky) * width + (x + kx)),
                        ),
                    )
            t.store("out", y * out_w + x, acc)
    return t.ddg


def stencil2d_asic_base() -> AsicDesign:
    return AsicDesign(base_alu=2, base_mul=2)


def stencil2d_census(width: int = WIDTH, height: int = HEIGHT) -> ScalarWorkload:
    macs = (width - 2) * (height - 2) * K * K
    return ScalarWorkload(
        name="stencil",
        int_ops=macs,
        mul_ops=macs,
        loads=2 * macs,
        stores=(width - 2) * (height - 2),
        branches=macs // 4,
        memory_bytes=8 * (width * height + (width - 2) * (height - 2)),
    )
