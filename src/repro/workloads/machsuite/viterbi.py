"""MachSuite ``viterbi``: dynamic-programming decoder (Table 4: recurrence +
linear patterns, 4-way add-minimize tree).

Negative-log-likelihood formulation::

    llike[t][s] = emit[t][s] + min_{s'} (llike[t-1][s'] + trans[s'][s])

Per (t, s) the previous timestep's row streams linearly against a column
of the (host-transposed) transition matrix through a 4-way add/min tree
and a min-accumulator; the inter-timestep dependence runs through memory
with a full barrier per step — the architecture's documented idiom for
dependence chains longer than the vector-port buffering.
"""

from __future__ import annotations

from typing import List

from ...baselines.asic.ddg import Ddg, TraceBuilder
from ...baselines.asic.schedule import AsicDesign
from ...baselines.cpu import ScalarWorkload
from ...cgra.fabric import Fabric, broadly_provisioned
from ...core.compiler.scheduler import schedule
from ...core.dfg.builder import DfgBuilder
from ...core.dfg.graph import Dfg
from ...core.isa.program import StreamProgram
from ...sim.memory import MemorySystem
from ..common import Allocator, BuiltWorkload, check_equal, make_rng, read_words, write_words

#: hidden states and observation steps, scaled for simulator speed
N_STATES = 16
N_STEPS = 24
WAY = 4


def viterbi_dfg() -> Dfg:
    """prev(4) + trans(4) -> min tree -> min-accumulate -> +emit -> C."""
    b = DfgBuilder("viterbi")
    prev = b.input("A", WAY)
    trans = b.input("B", WAY)
    emit = b.input("E", 1)
    r = b.input("R", 1)
    sums = [b.add(prev[j], trans[j]) for j in range(WAY)]
    best = b.reduce_tree("min", sums)
    running = b.op("accmin", best, r[0])
    b.output("C", b.add(running, emit[0]))
    return b.build()


def reference_viterbi(
    init: List[int], trans: List[List[int]], emit: List[List[int]]
) -> List[int]:
    """Returns the final timestep's llike row."""
    n = len(init)
    prev = list(init)
    for t in range(1, len(emit)):
        prev = [
            emit[t][s] + min(prev[sp] + trans[sp][s] for sp in range(n))
            for s in range(n)
        ]
    return prev


def build_viterbi(
    fabric: Fabric = None,
    seed: int = 17,
    n_states: int = N_STATES,
    n_steps: int = N_STEPS,
) -> BuiltWorkload:
    if n_states % WAY:
        raise ValueError(f"n_states must be a multiple of {WAY}")
    fabric = fabric or broadly_provisioned()
    rng = make_rng(seed)
    init = [rng.randint(0, 100) for _ in range(n_states)]
    trans = [
        [rng.randint(1, 60) for _ in range(n_states)] for _ in range(n_states)
    ]
    emit = [
        [rng.randint(0, 40) for _ in range(n_states)] for _ in range(n_steps)
    ]
    expected = reference_viterbi(init, trans, emit)

    memory = MemorySystem()
    alloc = Allocator()
    # Host preprocessing: transpose the transition matrix so a state's
    # incoming costs are a linear stream (a one-time layout transformation).
    trans_t_addr = alloc.alloc(n_states * n_states * 8)
    emit_addr = alloc.alloc(n_steps * n_states * 8)
    llike_addr = alloc.alloc(2 * n_states * 8)  # double-buffered rows
    for s in range(n_states):
        write_words(
            memory,
            trans_t_addr + s * n_states * 8,
            [trans[sp][s] for sp in range(n_states)],
        )
    for t in range(n_steps):
        write_words(memory, emit_addr + t * n_states * 8, emit[t])
    write_words(memory, llike_addr, init)

    dfg = viterbi_dfg()
    config = schedule(dfg, fabric)
    program = StreamProgram("viterbi", config)

    instances = n_states // WAY  # per (t, s)
    row_bytes = n_states * 8
    for t in range(1, n_steps):
        prev_row = llike_addr + ((t - 1) % 2) * row_bytes
        cur_row = llike_addr + (t % 2) * row_bytes
        for s in range(n_states):
            if instances > 1:
                program.const_port(0, instances - 1, "R")
                program.clean_port(instances - 1, "C")
            program.const_port(1, 1, "R")
            program.port_mem("C", 8, 8, 1, cur_row + s * 8)
            program.mem_port(prev_row, row_bytes, row_bytes, 1, "A")
            program.mem_port(
                trans_t_addr + s * row_bytes, row_bytes, row_bytes, 1, "B"
            )
            # The emission term repeats for every instance of this state.
            program.mem_port(
                emit_addr + (t * n_states + s) * 8, 0, 8, instances, "E"
            )
            program.host(3)  # state loop
        program.barrier_all()  # timestep dependence through memory
        program.host(2)

    def verify(mem: MemorySystem) -> None:
        final = llike_addr + ((n_steps - 1) % 2) * row_bytes
        got = read_words(mem, final, n_states)
        check_equal("viterbi", got, expected)

    return BuiltWorkload(
        name="viterbi",
        program=program,
        fabric=fabric,
        memory=memory,
        verify=verify,
        meta={
            "states": n_states,
            "steps": n_steps,
            "instances": (n_steps - 1) * n_states * instances,
        },
    )


def viterbi_ddg(
    n_states: int = N_STATES, n_steps: int = N_STEPS, seed: int = 17
) -> Ddg:
    rng = make_rng(seed)
    init = [rng.randint(0, 100) for _ in range(n_states)]
    trans = [rng.randint(1, 60) for _ in range(n_states * n_states)]
    emit = [rng.randint(0, 40) for _ in range(n_steps * n_states)]
    t = TraceBuilder("viterbi")
    t.array("trans", trans)
    t.array("emit", emit)
    t.array("llike", init + [0] * n_states)
    for step in range(1, n_steps):
        prev = ((step - 1) % 2) * n_states
        cur = (step % 2) * n_states
        for s in range(n_states):
            best = None
            for sp in range(n_states):
                cand = t.add(
                    t.load("llike", prev + sp), t.load("trans", sp * n_states + s)
                )
                best = cand if best is None else t.minimum(best, cand)
            t.store(
                "llike", cur + s, t.add(best, t.load("emit", step * n_states + s))
            )
    return t.ddg


def viterbi_asic_base() -> AsicDesign:
    return AsicDesign(base_alu=4, base_mul=1)


def viterbi_census(n_states: int = N_STATES, n_steps: int = N_STEPS) -> ScalarWorkload:
    work = (n_steps - 1) * n_states * n_states
    return ScalarWorkload(
        name="viterbi",
        int_ops=2 * work,
        loads=2 * work,
        stores=(n_steps - 1) * n_states,
        branches=work,
        memory_bytes=8 * (n_states * n_states + n_steps * n_states),
        critical_path=(n_steps - 1) * 8,  # timestep serialisation
    )
