"""MachSuite ``gemm``: dense matrix multiply (Table 4: affine + recurrence,
8-way multiply-accumulate datapath).

C[i][j0..j0+7] += A[i][k] * B[k][j0..j0+7]: the j-blocked formulation keeps
every stream affine — A's row is linear, B streams one 64-byte row-chunk
per k with a 2D pattern (stride = row pitch), and eight in-fabric
accumulators reduce over k with the reset-constant idiom.  This is the
natural stream-dataflow shape for GEMM: no strided column walks, one
command per operand per output block.
"""

from __future__ import annotations

from typing import List

from ...baselines.asic.ddg import Ddg, TraceBuilder
from ...baselines.asic.schedule import AsicDesign
from ...baselines.cpu import ScalarWorkload
from ...cgra.fabric import Fabric, broadly_provisioned
from ...core.compiler.scheduler import schedule
from ...core.dfg.builder import DfgBuilder
from ...core.dfg.graph import Dfg
from ...core.isa.program import StreamProgram
from ...sim.memory import MemorySystem
from ..common import Allocator, BuiltWorkload, check_equal, make_rng, read_words, write_words

#: problem size (N x N matrices), scaled for simulator speed
N = 24
WAY = 8  # output columns (and MACs) per instance


def gemm_dfg() -> Dfg:
    """B(8) x broadcast A(1) -> 8 accumulators -> C(8)."""
    b = DfgBuilder("gemm")
    a = b.input("A", 1)
    bb = b.input("B", WAY)
    r = b.input("R", 1)
    outs = []
    for j in range(WAY):
        outs.append(b.accumulate(b.mul(bb[j], a[0]), r[0]))
    b.output("C", outs)
    return b.build()


def reference_gemm(a: List[List[int]], b: List[List[int]]) -> List[List[int]]:
    n = len(a)
    return [
        [sum(a[i][k] * b[k][j] for k in range(n)) for j in range(n)]
        for i in range(n)
    ]


def build_gemm(
    fabric: Fabric = None, seed: int = 10, n: int = N
) -> BuiltWorkload:
    if n % WAY:
        raise ValueError(f"n must be a multiple of {WAY}")
    fabric = fabric or broadly_provisioned()
    rng = make_rng(seed)
    a = [[rng.randint(-50, 50) for _ in range(n)] for _ in range(n)]
    b = [[rng.randint(-50, 50) for _ in range(n)] for _ in range(n)]
    expected = reference_gemm(a, b)

    memory = MemorySystem()
    alloc = Allocator()
    a_addr = alloc.alloc(n * n * 8)
    b_addr = alloc.alloc(n * n * 8)
    c_addr = alloc.alloc(n * n * 8)
    for i in range(n):
        write_words(memory, a_addr + i * n * 8, a[i])
        write_words(memory, b_addr + i * n * 8, b[i])

    dfg = gemm_dfg()
    config = schedule(dfg, fabric)
    program = StreamProgram("gemm", config)

    blocks = n // WAY
    for i in range(n):
        for jb in range(blocks):
            j0 = jb * WAY
            program.const_port(0, n - 1, "R")
            program.const_port(1, 1, "R")
            program.clean_port((n - 1) * WAY, "C")
            program.port_mem("C", 64, 64, 1, c_addr + (i * n + j0) * 8)
            # A row (broadcast scalar per instance): linear.
            program.mem_port(a_addr + i * n * 8, n * 8, n * 8, 1, "A")
            # B row-chunks: one 64-byte access per k at the row pitch.
            program.mem_port(b_addr + j0 * 8, n * 8, WAY * 8, n, "B")
            program.host(3)  # jb loop: address updates
        program.host(2)  # i loop
    program.barrier_all()

    def verify(mem: MemorySystem) -> None:
        for i in range(n):
            got = read_words(mem, c_addr + i * n * 8, n)
            check_equal(f"gemm[row {i}]", got, expected[i])

    return BuiltWorkload(
        name="gemm",
        program=program,
        fabric=fabric,
        memory=memory,
        verify=verify,
        meta={"n": n, "macs": n * n * n, "instances": n * n * n // WAY},
    )


def gemm_ddg(n: int = N, seed: int = 10) -> Ddg:
    """Traced kernel for the mini-Aladdin ASIC model."""
    rng = make_rng(seed)
    a = [rng.randint(-50, 50) for _ in range(n * n)]
    b = [rng.randint(-50, 50) for _ in range(n * n)]
    t = TraceBuilder("gemm")
    t.array("a", a)
    t.array("b", b)
    t.array("c", [0] * n * n)
    for i in range(n):
        for j in range(n):
            acc = t.const(0)
            for k in range(n):
                acc = t.add(acc, t.mul(t.load("a", i * n + k), t.load("b", k * n + j)))
            t.store("c", i * n + j, acc)
    return t.ddg


def gemm_asic_base() -> AsicDesign:
    return AsicDesign(base_alu=2, base_mul=2)


def gemm_census(n: int = N) -> ScalarWorkload:
    macs = n * n * n
    return ScalarWorkload(
        name="gemm",
        int_ops=macs + n * n,
        mul_ops=macs,
        loads=2 * macs,
        stores=n * n,
        branches=macs // 4,
        memory_bytes=8 * (2 * n * n + n * n),
        critical_path=0,
    )
