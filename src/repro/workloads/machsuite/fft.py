"""MachSuite ``fft`` — one of the paper's "also fits" workloads (footnote 3).

Iterative radix-2 decimation-in-time FFT in fixed point (Q12 twiddles).
Each stage is one stream-dataflow phase: the even/odd butterfly operands
stream with 2D affine patterns (one command covers *all* groups of the
stage), the stage's twiddle factors repeat per group with a zero-stride
pattern, and a 12-instruction complex-butterfly datapath produces both
outputs.  Stages ping-pong between two buffers with a full barrier in
between — reading and writing the same array within a phase would be the
undefined-behaviour case the ISA's barrier rules exist to prevent.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from ...baselines.asic.ddg import Ddg, TraceBuilder
from ...baselines.asic.schedule import AsicDesign
from ...baselines.cpu import ScalarWorkload
from ...cgra.fabric import Fabric, broadly_provisioned
from ...core.compiler.scheduler import schedule
from ...core.dfg.builder import DfgBuilder
from ...core.dfg.graph import Dfg
from ...core.isa.program import StreamProgram
from ...sim.memory import MemorySystem
from ..common import Allocator, BuiltWorkload, check_equal, make_rng, read_words, write_words

#: transform size (power of two), scaled for simulator speed
N_POINTS = 64
#: twiddle fixed-point fraction bits
FRAC = 12
SCALE = 1 << FRAC


def fft_dfg() -> Dfg:
    """One complex butterfly: (a, b, w) -> (a + w*b, a - w*b), Q12."""
    b = DfgBuilder("fft-butterfly")
    ar, ai = b.input("AR", 1), b.input("AI", 1)
    br, bi = b.input("BR", 1), b.input("BI", 1)
    wr, wi = b.input("WR", 1), b.input("WI", 1)
    tr = b.op("shr", b.sub(b.mul(wr[0], br[0]), b.mul(wi[0], bi[0])), FRAC)
    ti = b.op("shr", b.add(b.mul(wr[0], bi[0]), b.mul(wi[0], br[0])), FRAC)
    b.output("O1R", b.add(ar[0], tr))
    b.output("O1I", b.add(ai[0], ti))
    b.output("O2R", b.sub(ar[0], tr))
    b.output("O2I", b.sub(ai[0], ti))
    return b.build()


def twiddles(n: int) -> Tuple[List[int], List[int]]:
    """Q12 twiddle factors w^j = exp(-2*pi*i*j/n) for j in [0, n/2)."""
    real, imag = [], []
    for j in range(n // 2):
        angle = -2.0 * math.pi * j / n
        real.append(round(math.cos(angle) * SCALE))
        imag.append(round(math.sin(angle) * SCALE))
    return real, imag


def _butterfly(ar, ai, br, bi, wr, wi):
    tr = (wr * br - wi * bi) >> FRAC
    ti = (wr * bi + wi * br) >> FRAC
    return ar + tr, ai + ti, ar - tr, ai - ti


def bit_reverse_permute(values: List[int]) -> List[int]:
    n = len(values)
    bits = n.bit_length() - 1
    out = [0] * n
    for i, v in enumerate(values):
        out[int(format(i, f"0{bits}b")[::-1], 2)] = v
    return out


def reference_fft(real: List[int], imag: List[int]) -> Tuple[List[int], List[int]]:
    """Fixed-point radix-2 DIT FFT with the exact datapath arithmetic."""
    n = len(real)
    wr_all, wi_all = twiddles(n)
    re = bit_reverse_permute(real)
    im = bit_reverse_permute(imag)
    half = 1
    while half < n:
        stride = n // (2 * half)  # twiddle index step for this stage
        next_re, next_im = list(re), list(im)
        for group_start in range(0, n, 2 * half):
            for j in range(half):
                a, b = group_start + j, group_start + j + half
                o1r, o1i, o2r, o2i = _butterfly(
                    re[a], im[a], re[b], im[b],
                    wr_all[j * stride], wi_all[j * stride],
                )
                next_re[a], next_im[a] = o1r, o1i
                next_re[b], next_im[b] = o2r, o2i
        re, im = next_re, next_im
        half *= 2
    return re, im


def build_fft(
    fabric: Fabric = None, seed: int = 18, n: int = N_POINTS
) -> BuiltWorkload:
    if n & (n - 1) or n < 4:
        raise ValueError("n must be a power of two >= 4")
    fabric = fabric or broadly_provisioned()
    rng = make_rng(seed)
    real = [rng.randint(-500, 500) for _ in range(n)]
    imag = [rng.randint(-500, 500) for _ in range(n)]
    exp_re, exp_im = reference_fft(real, imag)
    wr_all, wi_all = twiddles(n)

    memory = MemorySystem()
    alloc = Allocator()
    # Ping-pong complex buffers (separate real/imag planes).
    buf_re = [alloc.alloc(n * 8), alloc.alloc(n * 8)]
    buf_im = [alloc.alloc(n * 8), alloc.alloc(n * 8)]
    tw_re = alloc.alloc(max(1, n // 2) * 8)
    tw_im = alloc.alloc(max(1, n // 2) * 8)
    # Host performs the bit-reversal permutation while loading (a fixed
    # data layout step, like the paper's host-generated start addresses).
    write_words(memory, buf_re[0], bit_reverse_permute(real))
    write_words(memory, buf_im[0], bit_reverse_permute(imag))
    write_words(memory, tw_re, wr_all)
    write_words(memory, tw_im, wi_all)

    dfg = fft_dfg()
    config = schedule(dfg, fabric)
    program = StreamProgram("fft", config)

    half = 1
    src = 0
    while half < n:
        dst = 1 - src
        groups = n // (2 * half)
        group_bytes = 2 * half * 8
        stride_tw = groups  # twiddle index step == group count
        half_bytes = half * 8

        def plane_patterns(base: int, offset: int) -> Tuple[int, int, int, int]:
            return (base + offset, group_bytes, half_bytes, groups)

        # One command per operand covers every group of the stage.
        for port, base, offset in (
            ("AR", buf_re[src], 0),
            ("AI", buf_im[src], 0),
            ("BR", buf_re[src], half_bytes),
            ("BI", buf_im[src], half_bytes),
        ):
            start, stride, access, count = plane_patterns(base, offset)
            program.mem_port(start, stride, access, count, port)
        # Twiddles for the stage: w[0], w[s], w[2s], ... repeated per group.
        if half == 1:
            program.const_port(SCALE, groups, "WR")  # w^0 = 1 + 0i
            program.const_port(0, groups, "WI")
        else:
            # Stage twiddles w^(j*stride) for j in [0, half): a strided
            # pattern, re-issued once per group (the repeat dimension would
            # need a third affine level, which the 2D ISA doesn't have —
            # the control core regenerates the short command instead).
            for _group in range(groups):
                program.mem_port(tw_re, stride_tw * 8, 8, half, "WR")
                program.mem_port(tw_im, stride_tw * 8, 8, half, "WI")
        # Outputs: same affine shapes, into the destination buffer.
        for port, base, offset in (
            ("O1R", buf_re[dst], 0),
            ("O1I", buf_im[dst], 0),
            ("O2R", buf_re[dst], half_bytes),
            ("O2I", buf_im[dst], half_bytes),
        ):
            start, stride, access, count = plane_patterns(base, offset)
            program.port_mem(port, stride, access, count, start)
        program.host(4)  # stage loop bookkeeping
        program.barrier_all()  # ping-pong: next stage reads these writes
        src = dst
        half *= 2

    final_re, final_im = buf_re[src], buf_im[src]

    def verify(mem: MemorySystem) -> None:
        check_equal("fft real", read_words(mem, final_re, n), exp_re)
        check_equal("fft imag", read_words(mem, final_im, n), exp_im)

    return BuiltWorkload(
        name="fft",
        program=program,
        fabric=fabric,
        memory=memory,
        verify=verify,
        meta={
            "n": n,
            "stages": n.bit_length() - 1,
            "instances": (n // 2) * (n.bit_length() - 1),
        },
    )


def fft_ddg(n: int = N_POINTS, seed: int = 18) -> Ddg:
    rng = make_rng(seed)
    real = [rng.randint(-500, 500) for _ in range(n)]
    imag = [rng.randint(-500, 500) for _ in range(n)]
    wr_all, wi_all = twiddles(n)
    t = TraceBuilder("fft")
    t.array("re", bit_reverse_permute(real))
    t.array("im", bit_reverse_permute(imag))
    t.array("wr", wr_all)
    t.array("wi", wi_all)
    half = 1
    while half < n:
        stride = n // (2 * half)
        for group_start in range(0, n, 2 * half):
            for j in range(half):
                a, b = group_start + j, group_start + j + half
                ar, ai = t.load("re", a), t.load("im", a)
                br, bi = t.load("re", b), t.load("im", b)
                wr = t.load("wr", j * stride)
                wi = t.load("wi", j * stride)
                tr = t.shift_right(
                    t.sub(t.mul(wr, br), t.mul(wi, bi)), FRAC
                )
                ti = t.shift_right(
                    t.add(t.mul(wr, bi), t.mul(wi, br)), FRAC
                )
                t.store("re", a, t.add(ar, tr))
                t.store("im", a, t.add(ai, ti))
                t.store("re", b, t.sub(ar, tr))
                t.store("im", b, t.sub(ai, ti))
        half *= 2
    return t.ddg


def fft_asic_base() -> AsicDesign:
    return AsicDesign(base_alu=4, base_mul=4)


def fft_census(n: int = N_POINTS) -> ScalarWorkload:
    stages = n.bit_length() - 1
    butterflies = (n // 2) * stages
    return ScalarWorkload(
        name="fft",
        int_ops=8 * butterflies,
        mul_ops=4 * butterflies,
        loads=6 * butterflies,
        stores=4 * butterflies,
        branches=butterflies,
        memory_bytes=8 * (2 * n + n),
        critical_path=stages * 10,
    )
