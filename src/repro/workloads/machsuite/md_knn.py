"""MachSuite ``md-knn``: molecular dynamics k-nearest-neighbour forces
(Table 4: indirect loads + recurrence, large irregular datapath).

For each atom, the neighbour list gathers the K neighbour positions
(three indirect streams, one per coordinate), a 19-instruction fixed-point
Lennard-Jones datapath computes the pairwise force, and three in-fabric
accumulators reduce the force vector over the K neighbours.  This is the
largest and most irregular DFG in the suite — it uses every multiplier and
both dividers of the broadly-provisioned fabric.

Arithmetic is integer fixed point: ``force = C1/r^6 - C2/r^4`` with
truncating division, mirrored exactly by the reference model.
"""

from __future__ import annotations

from typing import List, Tuple

from ...baselines.asic.ddg import Ddg, TraceBuilder
from ...baselines.asic.schedule import AsicDesign
from ...baselines.cpu import ScalarWorkload
from ...cgra.fabric import Fabric, broadly_provisioned
from ...core.compiler.scheduler import schedule
from ...core.dfg.builder import DfgBuilder
from ...core.dfg.graph import Dfg
from ...core.isa.program import StreamProgram
from ...sim.memory import MemorySystem
from ..common import Allocator, BuiltWorkload, check_equal, make_rng, read_words, write_words

#: atom count and neighbours per atom, scaled for simulator speed
N_ATOMS = 64
K_NEIGHBOURS = 12

#: Lennard-Jones fixed-point constants
C1 = 2_000_000_000
C2 = 350_000


def _div_trunc(a: int, b: int) -> int:
    """Hardware division: truncate toward zero, divide-by-zero -> -1."""
    if b == 0:
        return -1
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def md_dfg() -> Dfg:
    """dx/dy/dz -> r2 -> C1/r^6 - C2/r^4 -> force vector accumulators."""
    b = DfgBuilder("md-knn")
    x = b.input("X", 1)  # gathered neighbour coordinates
    y = b.input("Y", 1)
    z = b.input("Z", 1)
    xi = b.input("XI", 1)  # this atom's coordinates (constant streams)
    yi = b.input("YI", 1)
    zi = b.input("ZI", 1)
    r = b.input("R", 1)
    dx = b.sub(xi[0], x[0])
    dy = b.sub(yi[0], y[0])
    dz = b.sub(zi[0], z[0])
    r2 = b.add(b.add(b.mul(dx, dx), b.mul(dy, dy)), b.mul(dz, dz))
    r4 = b.mul(r2, r2)
    r6 = b.mul(r4, r2)
    force = b.sub(b.op("div", C1, r6), b.op("div", C2, r4))
    outs = [
        b.accumulate(b.mul(force, d), r[0]) for d in (dx, dy, dz)
    ]
    b.output("F", outs)
    return b.build()


def reference_md(
    pos: List[Tuple[int, int, int]], nl: List[List[int]]
) -> List[Tuple[int, int, int]]:
    forces = []
    for i, neighbours in enumerate(nl):
        fx = fy = fz = 0
        for j in neighbours:
            dx = pos[i][0] - pos[j][0]
            dy = pos[i][1] - pos[j][1]
            dz = pos[i][2] - pos[j][2]
            r2 = dx * dx + dy * dy + dz * dz
            r4 = r2 * r2
            r6 = r4 * r2
            force = _div_trunc(C1, r6) - _div_trunc(C2, r4)
            fx += force * dx
            fy += force * dy
            fz += force * dz
        forces.append((fx, fy, fz))
    return forces


def build_md_knn(
    fabric: Fabric = None,
    seed: int = 16,
    n: int = N_ATOMS,
    k: int = K_NEIGHBOURS,
) -> BuiltWorkload:
    fabric = fabric or broadly_provisioned()
    rng = make_rng(seed)
    # Distinct positions so r2 is never zero.
    cells = rng.sample(range(20**3), n)
    pos = [(c % 20, (c // 20) % 20, c // 400) for c in cells]
    nl = [
        rng.sample([j for j in range(n) if j != i], k) for i in range(n)
    ]
    expected = reference_md(pos, nl)

    memory = MemorySystem()
    alloc = Allocator()
    x_addr = alloc.alloc(n * 8)
    y_addr = alloc.alloc(n * 8)
    z_addr = alloc.alloc(n * 8)
    nl_addr = alloc.alloc(n * k * 8)
    f_addr = alloc.alloc(n * 3 * 8)
    write_words(memory, x_addr, [p[0] for p in pos])
    write_words(memory, y_addr, [p[1] for p in pos])
    write_words(memory, z_addr, [p[2] for p in pos])
    write_words(memory, nl_addr, [j for row in nl for j in row])

    dfg = md_dfg()
    config = schedule(dfg, fabric)
    program = StreamProgram("md-knn", config)

    for i in range(n):
        program.const_port(pos[i][0], k, "XI")
        program.const_port(pos[i][1], k, "YI")
        program.const_port(pos[i][2], k, "ZI")
        program.const_port(0, k - 1, "R")
        program.const_port(1, 1, "R")
        program.clean_port((k - 1) * 3, "F")
        program.port_mem("F", 24, 24, 1, f_addr + i * 24)
        # The neighbour list fills three indirect ports, one per coordinate.
        row = nl_addr + i * k * 8
        program.mem_to_indirect(row, k, 0)
        program.ind_port_port(0, x_addr, "X", k, signed=True)
        program.mem_to_indirect(row, k, 1)
        program.ind_port_port(1, y_addr, "Y", k, signed=True)
        program.mem_to_indirect(row, k, 2)
        program.ind_port_port(2, z_addr, "Z", k, signed=True)
        program.host(3)  # atom loop
    program.barrier_all()

    def verify(mem: MemorySystem) -> None:
        for i in range(n):
            got = read_words(mem, f_addr + i * 24, 3)
            check_equal(f"md-knn[atom {i}]", got, list(expected[i]))

    return BuiltWorkload(
        name="md",
        program=program,
        fabric=fabric,
        memory=memory,
        verify=verify,
        meta={"atoms": n, "k": k, "instances": n * k},
    )


def md_ddg(n: int = N_ATOMS, k: int = K_NEIGHBOURS, seed: int = 16) -> Ddg:
    rng = make_rng(seed)
    cells = rng.sample(range(20**3), n)
    pos = [(c % 20, (c // 20) % 20, c // 400) for c in cells]
    nl = [rng.sample([j for j in range(n) if j != i], k) for i in range(n)]
    t = TraceBuilder("md")
    t.array("x", [p[0] for p in pos])
    t.array("y", [p[1] for p in pos])
    t.array("z", [p[2] for p in pos])
    t.array("nl", [j for row in nl for j in row])
    t.array("f", [0] * n * 3)
    c1, c2 = t.const(C1), t.const(C2)
    for i in range(n):
        xi, yi, zi = t.const(pos[i][0]), t.const(pos[i][1]), t.const(pos[i][2])
        fx, fy, fz = t.const(0), t.const(0), t.const(0)
        for jj in range(k):
            neighbour = t.load("nl", i * k + jj)
            dx = t.sub(xi, t.load("x", neighbour.value))
            dy = t.sub(yi, t.load("y", neighbour.value))
            dz = t.sub(zi, t.load("z", neighbour.value))
            r2 = t.add(t.add(t.mul(dx, dx), t.mul(dy, dy)), t.mul(dz, dz))
            r4 = t.mul(r2, r2)
            r6 = t.mul(r4, r2)
            force = t.sub(t.div(c1, r6), t.div(c2, r4))
            fx = t.add(fx, t.mul(force, dx))
            fy = t.add(fy, t.mul(force, dy))
            fz = t.add(fz, t.mul(force, dz))
        t.store("f", i * 3, fx)
        t.store("f", i * 3 + 1, fy)
        t.store("f", i * 3 + 2, fz)
    return t.ddg


def md_asic_base() -> AsicDesign:
    # The LJ datapath needs real multiply/divide resources even at unroll 1.
    return AsicDesign(base_alu=4, base_mul=4, base_div=2)


def md_census(n: int = N_ATOMS, k: int = K_NEIGHBOURS) -> ScalarWorkload:
    pairs = n * k
    return ScalarWorkload(
        name="md",
        int_ops=9 * pairs,
        mul_ops=8 * pairs,
        div_ops=2 * pairs,
        loads=4 * pairs,
        stores=3 * n,
        branches=pairs,
        memory_bytes=8 * (3 * n + n * k + 3 * n),
        critical_path=0,
    )
