"""MachSuite ``bfs``: breadth-first search (Table 4: indirect loads +
recurrence, compare/increment datapath).

Pull-based level-synchronous formulation: the host prepares the transposed
adjacency (incoming-edge lists, a one-time layout step), and each sweep
computes ``level[n] = min(level[n], 1 + min over in-neighbours s of
level[s])`` — per node, a gather stream fetches the in-neighbour levels
through an indirect port, a min-accumulator reduces them, and the single
store per node makes every memory location single-writer (the push/scatter
variant needs a conditional store, i.e. data-dependent control, which is
exactly the kind of code the paper assigns back to the host core).
Unvisited nodes carry a large sentinel so ``min`` is the discovery
operator; ``depth`` sweeps reach the fixpoint.
"""

from __future__ import annotations

from typing import List, Tuple

from ...baselines.asic.ddg import Ddg, TraceBuilder
from ...baselines.asic.schedule import AsicDesign
from ...baselines.cpu import ScalarWorkload
from ...cgra.fabric import Fabric, broadly_provisioned
from ...core.compiler.scheduler import schedule
from ...core.dfg.builder import DfgBuilder
from ...core.dfg.graph import Dfg
from ...core.isa.program import StreamProgram
from ...sim.memory import MemorySystem
from ..common import Allocator, BuiltWorkload, check_equal, make_rng, read_words, write_words

#: graph size (nodes / directed edges), scaled for simulator speed
N_NODES = 96
N_EDGES = 384

#: "unvisited" sentinel (large so min() is the discovery operator)
UNVISITED = 1 << 40


def bfs_dfg() -> Dfg:
    """min-accumulate gathered levels, +1, min with the node's own level."""
    b = DfgBuilder("bfs")
    s = b.input("S", 1)  # gathered level[src] for each incoming edge
    d = b.input("D", 1)  # this node's current level (repeating stream)
    r = b.input("R", 1)
    best_parent = b.op("accmin", s[0], r[0])
    b.output("NL", b.min(d[0], b.add(best_parent, 1)))
    return b.build()


def make_graph(rng, n: int, e: int) -> List[Tuple[int, int]]:
    """Random reachable digraph: a random tree plus extra edges."""
    edges = []
    for v in range(1, n):
        edges.append((rng.randrange(v), v))
    while len(edges) < e:
        a, bb = rng.randrange(n), rng.randrange(n)
        if a != bb:
            edges.append((a, bb))
    rng.shuffle(edges)
    return edges


def reference_bfs(edges: List[Tuple[int, int]], n: int, root: int) -> List[int]:
    """BFS levels over the directed edge list (-1 for unreachable)."""
    level = [-1] * n
    level[root] = 0
    frontier = [root]
    current = 0
    while frontier:
        next_frontier = []
        for a, bb in edges:
            if level[a] == current and level[bb] == -1:
                level[bb] = current + 1
                next_frontier.append(bb)
        frontier = next_frontier
        current += 1
    return level


def in_edge_lists(edges: List[Tuple[int, int]], n: int) -> List[List[int]]:
    incoming: List[List[int]] = [[] for _ in range(n)]
    for a, bb in edges:
        incoming[bb].append(a)
    return incoming


def build_bfs(
    fabric: Fabric = None, seed: int = 15, n: int = N_NODES, e: int = N_EDGES
) -> BuiltWorkload:
    fabric = fabric or broadly_provisioned()
    rng = make_rng(seed)
    edges = make_graph(rng, n, e)
    root = 0
    expected = reference_bfs(edges, n, root)
    depth = max(l for l in expected if l >= 0)
    incoming = in_edge_lists(edges, n)

    memory = MemorySystem()
    alloc = Allocator()
    flat_in = [s for row in incoming for s in row]
    in_ptr = [0]
    for row in incoming:
        in_ptr.append(in_ptr[-1] + len(row))
    # Static index arrays (host-prepared once): the flattened in-neighbour
    # list, and each node's own id repeated per in-edge so the node's
    # current level can be gathered edge-aligned by one long stream.
    dup_node = [node for node, row in enumerate(incoming) for _ in row]
    in_addr = alloc.alloc(max(1, len(flat_in)) * 8)
    dup_addr = alloc.alloc(max(1, len(dup_node)) * 8)
    lvl_addr = alloc.alloc(n * 8)
    write_words(memory, in_addr, flat_in)
    write_words(memory, dup_addr, dup_node)
    write_words(memory, lvl_addr, [0] + [UNVISITED] * (n - 1))

    dfg = bfs_dfg()
    config = schedule(dfg, fabric)
    program = StreamProgram("bfs", config)

    ne = len(flat_in)
    for _sweep in range(depth):
        # Long whole-frontier streams; only the per-node accumulator
        # coordination and the single-word stores are short commands.
        program.mem_to_indirect(in_addr, ne, 0)
        program.ind_port_port(0, lvl_addr, "S", ne)
        program.mem_to_indirect(dup_addr, ne, 1)
        program.ind_port_port(1, lvl_addr, "D", ne)
        for node in range(n):
            indeg = len(incoming[node])
            if indeg == 0:
                continue
            if indeg > 1:
                program.const_port(0, indeg - 1, "R")
                program.clean_port(indeg - 1, "NL")
            program.const_port(1, 1, "R")
            program.port_mem("NL", 8, 8, 1, lvl_addr + node * 8)
            program.host(4)  # node loop: in_ptr loads + address updates
        program.barrier_all()  # next sweep must see all level stores
        program.host(2)

    def verify(mem: MemorySystem) -> None:
        got = read_words(mem, lvl_addr, n, signed=False)
        encoded = [l if l >= 0 else UNVISITED for l in expected]
        check_equal("bfs levels", got, encoded)

    return BuiltWorkload(
        name="bfs",
        program=program,
        fabric=fabric,
        memory=memory,
        verify=verify,
        meta={
            "nodes": n,
            "edges": len(edges),
            "depth": depth,
            "instances": len(flat_in) * depth,
        },
    )


def bfs_ddg(n: int = N_NODES, e: int = N_EDGES, seed: int = 15) -> Ddg:
    rng = make_rng(seed)
    edges = make_graph(rng, n, e)
    expected = reference_bfs(edges, n, 0)
    depth = max(l for l in expected if l >= 0)
    incoming = in_edge_lists(edges, n)
    flat_in = [s for row in incoming for s in row]
    t = TraceBuilder("bfs")
    t.array("in_src", flat_in)
    t.array("level", [0] + [UNVISITED] * (n - 1))
    one = t.const(1)
    for _sweep in range(depth):
        offset = 0
        for node in range(n):
            indeg = len(incoming[node])
            if indeg == 0:
                continue
            best = None
            for j in range(indeg):
                src = t.load("in_src", offset + j)
                lvl = t.load("level", src.value)
                best = lvl if best is None else t.minimum(best, lvl)
            candidate = t.add(best, one)
            t.store("level", node, t.minimum(t.load("level", node), candidate))
            offset += indeg
    return t.ddg


def bfs_asic_base() -> AsicDesign:
    return AsicDesign(base_alu=4, base_mul=1, mem_ports_per_partition=2)


def bfs_census(n: int = N_NODES, e: int = N_EDGES) -> ScalarWorkload:
    depth = 6  # typical for these graph parameters
    work = e * depth
    return ScalarWorkload(
        name="bfs",
        int_ops=2 * work,
        loads=3 * work,
        stores=n * depth,
        branches=2 * work,
        memory_bytes=8 * (e + n),
        critical_path=depth * 12,  # level serialisation
        mispredict_rate=0.12,  # data-dependent discovery branches
    )
