"""MachSuite ``backprop`` (one MLP layer update) — extension workload.

The backward pass the paper's footnote 3 lists as fitting the paradigm.
For a fully-connected layer with activations ``act`` and output-error
``delta``, the weight update is an outer product::

    W[i][j] -= (act[i] * delta[j]) >> SHIFT      (fixed-point learning rate)

Streamed as: per input neuron i, the delta row streams linearly (4-wide),
``act[i]`` broadcasts from a constant stream, the current weight row
streams in, and the updated row streams out to a ping-pong buffer (reading
and writing the same rows within one phase is the ISA's undefined case).
Also computes the back-propagated error ``err[i] = sum_j W[i][j]*delta[j]``
with the accumulate/reset idiom, making this a two-output-port datapath.
"""

from __future__ import annotations

from typing import List, Tuple

from ...baselines.asic.ddg import Ddg, TraceBuilder
from ...baselines.asic.schedule import AsicDesign
from ...baselines.cpu import ScalarWorkload
from ...cgra.fabric import Fabric, broadly_provisioned
from ...core.compiler.scheduler import schedule
from ...core.dfg.builder import DfgBuilder
from ...core.dfg.graph import Dfg
from ...core.isa.program import StreamProgram
from ...sim.memory import MemorySystem
from ..common import Allocator, BuiltWorkload, check_equal, make_rng, read_words, write_words

#: layer shape (inputs x outputs), scaled for simulator speed
N_IN = 24
N_OUT = 16
#: fixed-point learning-rate shift (lr = 2^-SHIFT)
SHIFT = 4
#: outputs per instance — 4-way fills the 20-FU fabric exactly
#: (4 x (2 mul + shr + sub) + 3-add tree + accumulator = 20 instructions)
WAY = 4


def backprop_dfg() -> Dfg:
    """W(4) x D(4) x broadcast act(1) -> updated weights + error sum."""
    b = DfgBuilder("backprop")
    w = b.input("W", WAY)
    d = b.input("D", WAY)
    act = b.input("A", 1)
    r = b.input("R", 1)
    new_w = []
    contribs = []
    for j in range(WAY):
        gradient = b.op("shr", b.mul(act[0], d[j]), SHIFT)
        new_w.append(b.sub(w[j], gradient))
        contribs.append(b.mul(w[j], d[j]))
    b.output("NW", new_w)
    b.output("E", b.accumulate(b.reduce_tree("add", contribs), r[0]))
    return b.build()


def reference_backprop(
    weights: List[List[int]], act: List[int], delta: List[int]
) -> Tuple[List[List[int]], List[int]]:
    """(updated weights, back-propagated error), exact datapath arithmetic."""
    new_weights = [
        [w - ((a * d) >> SHIFT) for w, d in zip(row, delta)]
        for row, a in zip(weights, act)
    ]
    err = [sum(w * d for w, d in zip(row, delta)) for row in weights]
    return new_weights, err


def build_backprop(
    fabric: Fabric = None,
    seed: int = 20,
    n_in: int = N_IN,
    n_out: int = N_OUT,
) -> BuiltWorkload:
    if n_out % WAY:
        raise ValueError(f"n_out must be a multiple of {WAY}")
    fabric = fabric or broadly_provisioned()
    rng = make_rng(seed)
    weights = [
        [rng.randint(-100, 100) for _ in range(n_out)] for _ in range(n_in)
    ]
    act = [rng.randint(0, 60) for _ in range(n_in)]
    delta = [rng.randint(-40, 40) for _ in range(n_out)]
    exp_weights, exp_err = reference_backprop(weights, act, delta)

    memory = MemorySystem()
    alloc = Allocator()
    row_bytes = n_out * 8
    w_addr = alloc.alloc(n_in * row_bytes)
    w_new_addr = alloc.alloc(n_in * row_bytes)  # ping-pong destination
    d_addr = alloc.alloc(n_out * 8)
    e_addr = alloc.alloc(n_in * 8)
    for i, row in enumerate(weights):
        write_words(memory, w_addr + i * row_bytes, row)
    write_words(memory, d_addr, delta)

    dfg = backprop_dfg()
    config = schedule(dfg, fabric)
    program = StreamProgram("backprop", config)

    blocks = n_out // WAY
    for i in range(n_in):
        program.const_port(act[i], blocks, "A")
        if blocks > 1:
            program.const_port(0, blocks - 1, "R")
            program.clean_port(blocks - 1, "E")
        program.const_port(1, 1, "R")
        program.port_mem("E", 8, 8, 1, e_addr + i * 8)
        program.mem_port(w_addr + i * row_bytes, row_bytes, row_bytes, 1, "W")
        program.mem_port(d_addr, n_out * 8, n_out * 8, 1, "D")
        program.port_mem("NW", row_bytes, row_bytes, 1, w_new_addr + i * row_bytes)
        program.host(3)  # neuron loop
    program.barrier_all()

    def verify(mem: MemorySystem) -> None:
        for i in range(n_in):
            got = read_words(mem, w_new_addr + i * row_bytes, n_out)
            check_equal(f"backprop weights[{i}]", got, exp_weights[i])
        got_err = read_words(mem, e_addr, n_in)
        check_equal("backprop error", got_err, exp_err)

    return BuiltWorkload(
        name="backprop",
        program=program,
        fabric=fabric,
        memory=memory,
        verify=verify,
        meta={
            "n_in": n_in,
            "n_out": n_out,
            "instances": n_in * blocks,
            "macs": 2 * n_in * n_out,
        },
    )


def backprop_ddg(n_in: int = N_IN, n_out: int = N_OUT, seed: int = 20) -> Ddg:
    rng = make_rng(seed)
    weights = [rng.randint(-100, 100) for _ in range(n_in * n_out)]
    act = [rng.randint(0, 60) for _ in range(n_in)]
    delta = [rng.randint(-40, 40) for _ in range(n_out)]
    t = TraceBuilder("backprop")
    t.array("w", weights)
    t.array("act", act)
    t.array("delta", delta)
    t.array("err", [0] * n_in)
    for i in range(n_in):
        a = t.load("act", i)
        total = t.const(0)
        for j in range(n_out):
            w = t.load("w", i * n_out + j)
            d = t.load("delta", j)
            total = t.add(total, t.mul(w, d))
            gradient = t.shift_right(t.mul(a, d), SHIFT)
            t.store("w", i * n_out + j, t.sub(w, gradient))
        t.store("err", i, total)
    return t.ddg


def backprop_asic_base() -> AsicDesign:
    return AsicDesign(base_alu=2, base_mul=2)


def backprop_census(n_in: int = N_IN, n_out: int = N_OUT) -> ScalarWorkload:
    pairs = n_in * n_out
    return ScalarWorkload(
        name="backprop",
        int_ops=3 * pairs,
        mul_ops=2 * pairs,
        loads=3 * pairs,
        stores=pairs + n_in,
        branches=pairs // 4,
        memory_bytes=8 * (pairs + n_in + n_out),
    )
