"""MachSuite ``nw`` (Needleman-Wunsch) — extension workload (footnote 3).

Sequence alignment by wavefront dynamic programming.  Each anti-diagonal of
the score matrix is one stream-dataflow phase: the three predecessor views
(diagonal, up, left) stream with *strided* affine patterns (an anti-
diagonal of a row-major matrix is a constant-stride walk), the sequence
characters stream linearly (the second sequence from a host-reversed copy,
since stream strides are non-negative), and a 7-instruction
compare/select/max datapath computes the cells.  A full barrier separates
anti-diagonals — the architecture's idiom for wavefront dependences.
"""

from __future__ import annotations

from typing import List

from ...baselines.asic.ddg import Ddg, TraceBuilder
from ...baselines.asic.schedule import AsicDesign
from ...baselines.cpu import ScalarWorkload
from ...cgra.fabric import Fabric, broadly_provisioned
from ...core.compiler.scheduler import schedule
from ...core.dfg.builder import DfgBuilder
from ...core.dfg.graph import Dfg
from ...core.isa.program import StreamProgram
from ...sim.memory import MemorySystem
from ..common import Allocator, BuiltWorkload, check_equal, make_rng, read_words, write_words

#: sequence lengths, scaled for simulator speed
SEQ_LEN = 24

MATCH = 2
MISMATCH = -1
GAP = -2


def nw_dfg() -> Dfg:
    """max(diag + score(a, b), up - gap, left - gap)."""
    b = DfgBuilder("nw-cell")
    a_char = b.input("A", 1)
    b_char = b.input("B", 1)
    diag = b.input("D", 1)
    up = b.input("U", 1)
    left = b.input("L", 1)
    score = b.select(b.op("eq", a_char[0], b_char[0]), MATCH, MISMATCH)
    via_diag = b.add(diag[0], score)
    via_up = b.add(up[0], GAP)
    via_left = b.add(left[0], GAP)
    b.output("O", b.max(via_diag, b.max(via_up, via_left)))
    return b.build()


def reference_nw(a: List[int], b: List[int]) -> List[List[int]]:
    """The full (len(a)+1) x (len(b)+1) score matrix."""
    rows, cols = len(a) + 1, len(b) + 1
    score = [[0] * cols for _ in range(rows)]
    for i in range(rows):
        score[i][0] = i * GAP
    for j in range(cols):
        score[0][j] = j * GAP
    for i in range(1, rows):
        for j in range(1, cols):
            match = MATCH if a[i - 1] == b[j - 1] else MISMATCH
            score[i][j] = max(
                score[i - 1][j - 1] + match,
                score[i - 1][j] + GAP,
                score[i][j - 1] + GAP,
            )
    return score


def build_nw(
    fabric: Fabric = None, seed: int = 19, length: int = SEQ_LEN
) -> BuiltWorkload:
    fabric = fabric or broadly_provisioned()
    rng = make_rng(seed)
    a = [rng.randint(0, 3) for _ in range(length)]  # DNA alphabet
    b = [rng.randint(0, 3) for _ in range(length)]
    expected = reference_nw(a, b)

    rows, cols = length + 1, length + 1
    memory = MemorySystem()
    alloc = Allocator()
    row_bytes = cols * 8
    mat_addr = alloc.alloc(rows * row_bytes)
    a_addr = alloc.alloc(length * 8)
    b_rev_addr = alloc.alloc(length * 8)  # host-reversed second sequence
    write_words(memory, a_addr, a)
    write_words(memory, b_rev_addr, list(reversed(b)))
    # Boundary conditions preloaded by the host.
    for i in range(rows):
        write_words(memory, mat_addr + i * row_bytes, [i * GAP])
    write_words(memory, mat_addr, [j * GAP for j in range(cols)])

    def cell(i: int, j: int) -> int:
        return mat_addr + i * row_bytes + j * 8

    dfg = nw_dfg()
    config = schedule(dfg, fabric)
    program = StreamProgram("nw", config)

    # Anti-diagonal stride in bytes: moving (i+1, j-1) in a row-major
    # matrix advances by one row minus one column.
    diag_stride = row_bytes - 8
    for d in range(2, rows + cols - 1):
        i_lo = max(1, d - (cols - 1))
        i_hi = min(rows - 1, d - 1)
        count = i_hi - i_lo + 1
        if count <= 0:
            continue
        j_hi = d - i_lo  # column of the first (lowest-i) cell
        program.mem_port(cell(i_lo - 1, j_hi - 1), diag_stride, 8, count, "D")
        program.mem_port(cell(i_lo - 1, j_hi), diag_stride, 8, count, "U")
        program.mem_port(cell(i_lo, j_hi - 1), diag_stride, 8, count, "L")
        program.mem_port(a_addr + (i_lo - 1) * 8, 8, 8, count, "A")
        # b[j-1] for j = j_hi down to j_lo: a forward walk of reversed(b).
        program.mem_port(
            b_rev_addr + (length - j_hi) * 8, 8, 8, count, "B"
        )
        program.port_mem("O", diag_stride, 8, count, cell(i_lo, j_hi))
        program.host(5)  # diagonal loop: bounds + address arithmetic
        program.barrier_all()  # wavefront dependence

    def verify(mem: MemorySystem) -> None:
        for i in range(rows):
            got = read_words(mem, mat_addr + i * row_bytes, cols)
            check_equal(f"nw[row {i}]", got, expected[i])

    return BuiltWorkload(
        name="nw",
        program=program,
        fabric=fabric,
        memory=memory,
        verify=verify,
        meta={
            "length": length,
            "cells": length * length,
            "instances": length * length,
            "final_score": expected[-1][-1],
        },
    )


def nw_ddg(length: int = SEQ_LEN, seed: int = 19) -> Ddg:
    rng = make_rng(seed)
    a = [rng.randint(0, 3) for _ in range(length)]
    b = [rng.randint(0, 3) for _ in range(length)]
    rows, cols = length + 1, length + 1
    t = TraceBuilder("nw")
    t.array("a", a)
    t.array("b", b)
    init = [0] * (rows * cols)
    for i in range(rows):
        init[i * cols] = i * GAP
    for j in range(cols):
        init[j] = j * GAP
    t.array("score", init)
    match_v, mismatch_v = t.const(MATCH), t.const(MISMATCH)
    gap_v = t.const(GAP)
    for i in range(1, rows):
        for j in range(1, cols):
            same = t.compare_eq(t.load("a", i - 1), t.load("b", j - 1))
            score = t.select(same, match_v, mismatch_v)
            via_diag = t.add(t.load("score", (i - 1) * cols + j - 1), score)
            via_up = t.add(t.load("score", (i - 1) * cols + j), gap_v)
            via_left = t.add(t.load("score", i * cols + j - 1), gap_v)
            t.store("score", i * cols + j, t.maximum(via_diag, t.maximum(via_up, via_left)))
    return t.ddg


def nw_asic_base() -> AsicDesign:
    return AsicDesign(base_alu=4, base_mul=1)


def nw_census(length: int = SEQ_LEN) -> ScalarWorkload:
    cells = length * length
    return ScalarWorkload(
        name="nw",
        int_ops=6 * cells,
        loads=5 * cells,
        stores=cells,
        branches=2 * cells,
        memory_bytes=8 * (length + 1) * (length + 1),
        critical_path=(2 * length - 1) * 4,  # wavefront serialisation
        mispredict_rate=0.08,
    )
