"""MachSuite workloads as stream-dataflow programs (Section 7.2)."""

from typing import Dict

from .backprop import (
    backprop_asic_base,
    backprop_census,
    backprop_ddg,
    build_backprop,
)
from .bfs import bfs_asic_base, bfs_census, bfs_ddg, build_bfs
from .fft import build_fft, fft_asic_base, fft_census, fft_ddg
from .gemm import build_gemm, gemm_asic_base, gemm_census, gemm_ddg
from .md_knn import build_md_knn, md_asic_base, md_census, md_ddg
from .nw import build_nw, nw_asic_base, nw_census, nw_ddg
from .spmv import (
    build_spmv_crs,
    build_spmv_ellpack,
    spmv_asic_base,
    spmv_census,
    spmv_ddg,
)
from .stencil2d import (
    build_stencil2d,
    stencil2d_asic_base,
    stencil2d_census,
    stencil2d_ddg,
)
from .stencil3d import (
    build_stencil3d,
    stencil3d_asic_base,
    stencil3d_census,
    stencil3d_ddg,
)
from .viterbi import (
    build_viterbi,
    viterbi_asic_base,
    viterbi_census,
    viterbi_ddg,
)

#: canonical name -> (softbrain builder, ddg builder, cpu census, asic base)
MACHSUITE: Dict[str, tuple] = {
    "bfs": (build_bfs, bfs_ddg, bfs_census, bfs_asic_base),
    "spmv-crs": (
        build_spmv_crs,
        lambda: spmv_ddg("crs"),
        lambda: spmv_census("crs"),
        spmv_asic_base,
    ),
    "spmv-ellpack": (
        build_spmv_ellpack,
        lambda: spmv_ddg("ellpack"),
        lambda: spmv_census("ellpack"),
        spmv_asic_base,
    ),
    "stencil": (
        build_stencil2d,
        stencil2d_ddg,
        stencil2d_census,
        stencil2d_asic_base,
    ),
    "stencil3d": (
        build_stencil3d,
        stencil3d_ddg,
        stencil3d_census,
        stencil3d_asic_base,
    ),
    "gemm": (build_gemm, gemm_ddg, gemm_census, gemm_asic_base),
    "md": (build_md_knn, md_ddg, md_census, md_asic_base),
    "viterbi": (build_viterbi, viterbi_ddg, viterbi_census, viterbi_asic_base),
    # Extensions beyond the paper's evaluated eight: three of the four
    # workloads footnote 3 identifies as fitting the paradigm.
    "fft": (build_fft, fft_ddg, fft_census, fft_asic_base),
    "nw": (build_nw, nw_ddg, nw_census, nw_asic_base),
    "backprop": (build_backprop, backprop_ddg, backprop_census,
                 backprop_asic_base),
}

__all__ = [
    "MACHSUITE",
    "build_backprop",
    "build_bfs",
    "build_fft",
    "build_gemm",
    "build_md_knn",
    "build_nw",
    "build_spmv_crs",
    "build_spmv_ellpack",
    "build_stencil2d",
    "build_stencil3d",
    "build_viterbi",
]
